"""Table I: allreduce throughput over the torus (doubles), New vs Current.

Paper claims: "we observe performance benefits across the different
messages but the algorithm is mostly useful for large messages. ... the
algorithm provides about 33% improvement for 512K doubles."
"""

from conftest import publish

from repro.bench.experiments import table1_allreduce


def test_table1_allreduce(benchmark):
    result = benchmark.pedantic(table1_allreduce, rounds=1, iterations=1)
    publish(result)
    new = result.series_by_label("New (MB/s)").values
    cur = result.series_by_label("Current (MB/s)").values
    ratios = [n / c for n, c in zip(new, cur)]
    # New wins at every count...
    for r in ratios:
        assert r > 1.0
    # ...benefits concentrate at large messages (monotone-ish growth)...
    assert ratios[-1] > ratios[0]
    # ...landing in the paper's ~33 % class at 512K doubles.
    assert 1.2 <= result.metrics["improvement_at_512K"] <= 1.6
