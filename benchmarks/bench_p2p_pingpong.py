"""Point-to-point ping-pong: the eager/rendezvous protocol crossover.

Not a figure of the paper, but the substrate its collectives stand on (the
DCMF eager and rendezvous paths).  The benchmark sweeps message sizes and
asserts the crossover: eager wins short messages (no handshake),
rendezvous wins long ones (no staging copy).
"""

from conftest import publish

from repro.bench.experiments import ExperimentResult
from repro.bench.report import Series
from repro.hardware import Machine, Mode
from repro.mpi.p2p import run_pingpong
from repro.util.units import KIB, MIB

SIZES = [64, 1 * KIB, 4 * KIB, 16 * KIB, 128 * KIB, 1 * MIB]


def run_p2p_crossover() -> ExperimentResult:
    series = [Series("eager (us)"), Series("rendezvous (us)")]
    for size in SIZES:
        for s, protocol in zip(series, ("eager", "rendezvous")):
            machine = Machine(torus_dims=(4, 4, 1), mode=Mode.QUAD)
            s.add(run_pingpong(machine, size, protocol=protocol).latency_us)
    eager, rndv = series[0].values, series[1].values
    crossover = next(
        (SIZES[i] for i in range(len(SIZES)) if rndv[i] < eager[i]),
        None,
    )
    return ExperimentResult(
        "p2p_pingpong",
        "Message size (bytes)",
        SIZES,
        series,
        metrics={
            "eager_latency_64B": eager[0],
            "crossover_bytes": float(crossover or -1),
            "rndv_gain_at_1M": eager[-1] / rndv[-1],
        },
    )


def test_p2p_protocol_crossover(benchmark):
    result = benchmark.pedantic(run_p2p_crossover, rounds=1, iterations=1)
    publish(result)
    eager = result.series_by_label("eager (us)").values
    rndv = result.series_by_label("rendezvous (us)").values
    # Eager wins the short end; rendezvous the long end.
    assert eager[0] < rndv[0]
    assert rndv[-1] < eager[-1]
    # There is exactly one crossover (latency curves are monotone in size).
    flips = sum(
        1 for i in range(len(SIZES) - 1)
        if (eager[i] < rndv[i]) != (eager[i + 1] < rndv[i + 1])
    )
    assert flips == 1
