"""Record the per-rank, per-iteration time reference for regression tests.

Runs a battery of small (2x2x2) scenarios covering every collective kind
and the main algorithm families, captures the raw per-rank elapsed-time
matrices out of the Fig-5 harness, and writes them (bit-exact floats) to
``benchmarks/results/perrank_reference.json``.

``tests/test_perrank_reference.py`` replays the battery on every test run
and asserts exact float equality — on the default incremental solver and
on the ``REPRO_SIM_SLOWPATH=1`` reference solver — so any change to the
simulator's arithmetic, event ordering, or the harness's steady-state
machinery is caught at the last-bit level.

Before writing, this script re-runs the whole battery once per fair-share
solver (slowpath reference, incremental, vectorized) and diffs the raw
per-rank matrices: the three solvers must agree on every float bit, or
nothing is written.

Regenerate (only when an intentional model change invalidates the data)::

    PYTHONPATH=src python benchmarks/record_perrank.py
"""

import json
import pathlib
import sys

import repro.bench.harness as harness
from repro.hardware.machine import Machine, Mode

#: solver label -> FlowNetwork.configure pins (explicit args are sticky
#: across the harness's per-run refresh_config)
SOLVER_KNOBS = {
    "slowpath": {"incremental": False, "vectorized": False},
    "incremental": {"incremental": True, "vectorized": False},
    "vectorized": {"incremental": True, "vectorized": True},
}

REFERENCE_PATH = (
    pathlib.Path(__file__).parent / "results" / "perrank_reference.json"
)

#: (kind, algorithm, x, mode, iters) — x is bytes (or count for reduces)
SCENARIOS = [
    ("bcast", "tree-shaddr", 65536, "QUAD", 3),
    ("bcast", "tree-shmem", 4096, "QUAD", 1),
    ("bcast", "tree-dma-fifo", 16384, "QUAD", 1),
    ("bcast", "tree-dma-direct-put", 16384, "QUAD", 1),
    ("bcast", "tree-smp", 16384, "SMP", 1),
    ("bcast", "torus-shaddr", 65536, "QUAD", 3),
    ("bcast", "torus-fifo", 32768, "QUAD", 1),
    ("bcast", "torus-direct-put", 32768, "QUAD", 1),
    ("bcast", "torus-direct-put-smp", 32768, "SMP", 1),
    ("allreduce", "allreduce-torus-shaddr", 2048, "QUAD", 2),
    ("allreduce", "allreduce-torus-current", 2048, "QUAD", 1),
    ("allreduce", "allreduce-tree", 1024, "QUAD", 1),
    ("allgather", "allgather-ring-shaddr", 4096, "QUAD", 1),
    ("alltoall", "alltoall-shift-shaddr", 1024, "QUAD", 1),
    ("gather", "gather-ring-shaddr", 4096, "QUAD", 1),
    ("scatter", "scatter-ring-shaddr", 4096, "QUAD", 1),
    ("reduce", "reduce-torus-shaddr", 2048, "QUAD", 1),
    ("barrier", "barrier-gi", 0, "QUAD", 3),
    ("barrier", "barrier-torus", 0, "QUAD", 1),
]


def simulate_battery(solver=None):
    """Run every scenario; returns ``{scenario_id: record}``.

    ``solver`` pins one of :data:`SOLVER_KNOBS` on every machine before
    its run (None: whatever the environment selects — the configuration
    the committed reference was recorded under).
    """
    runners = {
        "bcast": harness.run_bcast,
        "allreduce": harness.run_allreduce,
        "allgather": harness.run_allgather,
        "alltoall": harness.run_alltoall,
        "gather": harness.run_gather,
        "scatter": harness.run_scatter,
        "reduce": harness.run_reduce,
        "barrier": harness.run_barrier,
    }
    captured = []
    original = harness._measure

    def capture(*args, **kwargs):
        times = original(*args, **kwargs)
        captured.append(times)
        return times

    harness._measure = capture
    try:
        out = {}
        for kind, algorithm, x, mode, iters in SCENARIOS:
            scenario_id = f"{kind}:{algorithm}:{x}:{mode}:{iters}"
            captured.clear()
            machine = Machine(torus_dims=(2, 2, 2), mode=Mode[mode])
            if solver is not None:
                machine.flownet.configure(**SOLVER_KNOBS[solver])
            if kind == "barrier":
                result = runners[kind](machine, algorithm, iters=iters)
            else:
                result = runners[kind](machine, algorithm, x, iters=iters)
            out[scenario_id] = {
                "times": captured[0],
                "elapsed_us": result.elapsed_us,
                "iterations_us": result.iterations_us,
            }
    finally:
        harness._measure = original
    return out


def diff_solver_batteries(reference, other):
    """Scenario ids whose raw per-rank matrices differ in any float bit."""
    return sorted(
        scenario_id
        for scenario_id, record in reference.items()
        if other[scenario_id]["times"] != record["times"]
    )


def main():
    records = simulate_battery()
    # Solver equivalence gate: the reference must not depend on which
    # fair-share kernel produced it.  Any bit-level disagreement between
    # the three solvers is a solver bug, not a model change — refuse to
    # record until it is fixed.
    for solver in sorted(SOLVER_KNOBS):
        diffs = diff_solver_batteries(records, simulate_battery(solver))
        if diffs:
            print(f"solver {solver!r} diverges from the default run on "
                  f"{len(diffs)} scenario(s):", file=sys.stderr)
            for scenario_id in diffs:
                print(f"  {scenario_id}", file=sys.stderr)
            return 1
        print(f"solver {solver:12s} bit-identical across "
              f"{len(records)} scenarios")
    REFERENCE_PATH.parent.mkdir(exist_ok=True)
    with open(REFERENCE_PATH, "w") as handle:
        json.dump({"dims": [2, 2, 2], "scenarios": records}, handle, indent=1)
        handle.write("\n")
    for scenario_id, record in records.items():
        print(f"{scenario_id:55s} elapsed={record['elapsed_us']:.3f}us")
    print(f"wrote {REFERENCE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
