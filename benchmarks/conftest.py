"""Shared helpers for the figure/table regeneration benchmarks.

Each benchmark regenerates one figure or table of the paper's evaluation
section: it runs the experiment once under pytest-benchmark (so wall-clock
cost is tracked), prints the series in the paper's layout, writes the table
to ``benchmarks/results/``, and asserts the paper's *shape* claims (who
wins, by roughly what factor).  Absolute MB/s values are simulator outputs,
not testbed measurements — see EXPERIMENTS.md.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(result, extra_lines=()):
    """Print and persist one regenerated figure/table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [f"== {result.name} ==", result.table()]
    for key, value in result.metrics.items():
        lines.append(f"{key}: {value:.3f}")
    lines.extend(extra_lines)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")
    return result
