"""Runtime-trace smoke: one sweep, one Chrome trace, serve -> farm chain.

The end-to-end drill behind CI's ``runtime-trace`` job (and a handy
local sanity check) for the runtime observability plane
(docs/observability.md, "Runtime observability").  The script:

1. starts a farm server, two pull-workers, and a ``repro serve --farm``
   prediction server routing sweep batches through the farm;
2. drives one ``repro query --op sweep`` of fresh points through it,
   asserting every point computed in the batch tier;
3. exports the finished spans with ``repro trace --runtime`` and
   asserts the Chrome trace loads, sits under the runtime pid, and
   chains ``serve.sweep`` -> ``serve.sweep.batch`` -> ``farm.chunk.*``
   within one trace id, with every farm chunk attributed to one of the
   two worker ids;
4. scrapes ``repro farm status --metrics`` and asserts the farm's
   Prometheus counters match its status stats.

Run it from the repo root::

    python benchmarks/runtime_trace_smoke.py [--port 8821] [--keep-dir]

Exit status 0 means every assertion held.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.farm import rpc  # noqa: E402
from repro.serve.client import query_server  # noqa: E402
from repro.telemetry.runtime import (  # noqa: E402
    RUNTIME_TRACE_PID,
    parse_prometheus,
)

SWEEP_POINTS = [
    {"family": "bcast", "algorithm": "tree-shaddr", "x": 24576, "iters": 2},
    {"family": "bcast", "algorithm": "tree-shaddr", "x": 49152, "iters": 2},
    {"family": "bcast", "algorithm": "torus-shaddr", "x": 24576, "iters": 2},
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _spawn(args, **kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, **kwargs
    )


def _run(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO_ROOT, check=True, **kwargs
    )


def _wait_for_serve(address, deadline_s=30.0):
    start = time.monotonic()
    while True:
        try:
            return query_server(address, {"op": "ping"}, timeout=5.0)
        except (ConnectionError, OSError):
            if time.monotonic() - start > deadline_s:
                raise
            time.sleep(0.2)


def _wait_for_farm(address, deadline_s=30.0):
    start = time.monotonic()
    while True:
        try:
            return rpc(address, "status")
        except (ConnectionError, OSError):
            if time.monotonic() - start > deadline_s:
                raise
            time.sleep(0.2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8821,
                        help="serve port (the farm binds port+1)")
    parser.add_argument("--keep-dir", action="store_true",
                        help="leave the scratch directory behind")
    args = parser.parse_args(argv)
    serve_address = f"127.0.0.1:{args.port}"
    farm_address = f"127.0.0.1:{args.port + 1}"
    scratch = tempfile.mkdtemp(prefix="runtime_trace_smoke_")
    journal = os.path.join(scratch, "journal.jsonl")
    trace_out = os.path.join(scratch, "runtime_trace.json")
    procs = []

    try:
        print("[1/4] farm server + 2 workers + repro serve --farm ...")
        procs.append(_spawn(["farm", "serve", "--host", "127.0.0.1",
                             "--port", str(args.port + 1),
                             "--journal", journal, "--chunk", "1",
                             "--quiet"]))
        _wait_for_farm(farm_address)
        for worker_id in ("smoke-w1", "smoke-w2"):
            procs.append(_spawn(["farm", "work", farm_address,
                                 "--id", worker_id, "--stay", "--quiet"]))
        procs.append(_spawn(["serve", "--host", "127.0.0.1",
                             "--port", str(args.port),
                             "--farm", farm_address]))
        _wait_for_serve(serve_address)

        print("[2/4] one sweep query fans through the farm ...")
        points_file = os.path.join(scratch, "points.json")
        with open(points_file, "w") as handle:
            json.dump(SWEEP_POINTS, handle)
        result = _run(["query", serve_address, "--op", "sweep",
                       "--points", points_file], stdout=subprocess.PIPE)
        sweep = json.loads(result.stdout)
        tiers = [point["tier"] for point in sweep["points"]]
        assert tiers == ["batch"] * len(SWEEP_POINTS), tiers

        print("[3/4] repro trace --runtime: serve -> batch -> farm "
              "chunk chain ...")
        _run(["trace", "--runtime", serve_address, "--out", trace_out],
             stdout=subprocess.DEVNULL)
        with open(trace_out) as handle:
            document = json.load(handle)
        assert document["otherData"]["kind"] == "runtime-spans", (
            document.get("otherData")
        )
        spans = [event for event in document["traceEvents"]
                 if event.get("ph") == "X"]
        assert spans and all(
            event["pid"] == RUNTIME_TRACE_PID for event in spans
        ), "runtime spans must sit under their own pid"
        by_id = {event["args"]["span_id"]: event for event in spans}

        sweeps = [e for e in spans if e["name"] == "serve.sweep"]
        batches = [e for e in spans if e["name"] == "serve.sweep.batch"]
        chunks = [e for e in spans if e["name"].startswith("farm.chunk.")]
        assert sweeps, "no serve.sweep span exported"
        assert batches, "no serve.sweep.batch span exported"
        assert len(chunks) >= len(SWEEP_POINTS), (
            f"expected >= {len(SWEEP_POINTS)} farm chunk spans, got "
            f"{len(chunks)}"
        )
        # Every farm chunk chains: chunk -> batch -> sweep, one trace id
        # end to end, attributed to one of the two worker processes.
        workers_seen = set()
        for chunk in chunks:
            batch = by_id.get(chunk["args"]["parent_id"])
            assert batch is not None and batch["name"] == (
                "serve.sweep.batch"
            ), f"chunk span {chunk['args']} has no batch parent"
            sweep_span = by_id.get(batch["args"]["parent_id"])
            assert sweep_span is not None and sweep_span["name"] == (
                "serve.sweep"
            ), f"batch span {batch['args']} has no sweep parent"
            assert (chunk["args"]["trace_id"] == batch["args"]["trace_id"]
                    == sweep_span["args"]["trace_id"]), "trace id broke"
            assert chunk["args"]["worker"] in ("smoke-w1", "smoke-w2"), (
                chunk["args"]
            )
            workers_seen.add(chunk["args"]["worker"])
        span_ids = [event["args"]["span_id"] for event in spans]
        assert len(span_ids) == len(set(span_ids)), "span ids collided"

        print("[4/4] farm status --metrics matches the status stats ...")
        status = rpc(farm_address, "status")
        result = _run(["farm", "status", farm_address, "--metrics"],
                      stdout=subprocess.PIPE)
        scraped = parse_prometheus(result.stdout.decode())
        assert scraped["farm_points_completed_total"][""] == (
            status["stats"]["points_completed"]
        ), scraped.get("farm_points_completed_total")
        assert scraped["farm_chunks_completed_total"][""] == (
            status["stats"]["chunks_completed"]
        ), scraped.get("farm_chunks_completed_total")

        query_server(serve_address, {"op": "shutdown"})
        print(f"runtime trace smoke OK: {len(spans)} span(s), "
              f"{len(chunks)} farm chunk(s) across "
              f"{len(workers_seen)} worker(s), one trace end to end")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        if args.keep_dir:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
