"""Figure 6: latency of MPI_Bcast over the collective network.

Paper claims (8192 processes): the shared-memory scheme reaches 5.83 µs,
only +0.42 µs over the raw SMP-mode hardware broadcast (~5.41 µs), and
clearly beats the DMA memory-FIFO path.
"""

from conftest import publish

from repro.bench.experiments import fig6_tree_latency


def test_fig6_tree_latency(benchmark):
    result = benchmark.pedantic(fig6_tree_latency, rounds=1, iterations=1)
    publish(result)
    shmem = result.series_by_label("CollectiveNetwork+Shmem").values
    dma = result.series_by_label("CollectiveNetwork+DMA FIFO").values
    smp = result.series_by_label("CollectiveNetwork (SMP)").values
    # The hardware envelope is the floor at every size.
    for a, b in zip(smp, shmem):
        assert a < b
    # Shmem adds sub-microsecond overhead at the smallest message
    # (paper: +0.42 us) and lands in the paper's ~5-6 us regime.
    assert 0.0 < result.metrics["shmem_overhead_us_vs_smp"] < 1.0
    assert 4.5 < result.metrics["shmem_latency_us_smallest"] < 7.0
    # The DMA path is clearly worse than shmem at every short size.
    for a, b in zip(shmem, dma):
        assert b > a
