"""Extension (paper section VII future work): MPI_Allgather.

Applies the same intra-node contrast as the broadcast study to a node-level
ring allgather: DMA-staged baseline vs shared-address with message-counter
publication.  The shared-address variant should win, for the same reasons
Figure 10's Torus+Shaddr wins: no staging copies and a DMA freed for the
network.
"""

from conftest import publish

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import run_allgather
from repro.bench.report import Series
from repro.hardware import Machine, Mode
from repro.util.units import KIB

BLOCKS = [4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB]


def run_allgather_extension() -> ExperimentResult:
    series = [
        Series("Allgather+Shaddr (MB/s)"),
        Series("Allgather DMA (MB/s)"),
    ]
    names = ["allgather-ring-shaddr", "allgather-ring-current"]
    for block in BLOCKS:
        for s, name in zip(series, names):
            machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            s.add(run_allgather(machine, name, block).bandwidth_mbs)
    ratios = [
        a / b for a, b in zip(series[0].values, series[1].values)
    ]
    return ExperimentResult(
        "ext_allgather",
        "Block size (bytes)",
        BLOCKS,
        series,
        metrics={
            "gain_at_largest": ratios[-1],
            "min_gain": min(ratios),
        },
    )


def test_extension_allgather(benchmark):
    result = benchmark.pedantic(
        run_allgather_extension, rounds=1, iterations=1
    )
    publish(result)
    # Shared address wins at every block size.
    assert result.metrics["min_gain"] > 1.0
