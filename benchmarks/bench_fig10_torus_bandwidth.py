"""Figure 10: bandwidth of MPI_Bcast over the torus (large messages).

Paper claims: ``Torus+Shaddr`` reaches a 2.9x speedup over the current
``Torus Direct Put`` at 2 MB and ``Torus+FIFO`` 1.4x; Shaddr's bandwidth
drops at 4 MB because the working set exceeds the 8 MB L3, while the
DMA-bound baseline stays flat.
"""

from conftest import publish

from repro.bench.experiments import fig10_torus_bandwidth


def test_fig10_torus_bandwidth(benchmark):
    result = benchmark.pedantic(
        fig10_torus_bandwidth, rounds=1, iterations=1
    )
    publish(result)
    shaddr = result.series_by_label("Torus+Shaddr").values
    fifo = result.series_by_label("Torus+FIFO").values
    dput = result.series_by_label("Torus Direct Put").values
    smp = result.series_by_label("Torus Direct Put(SMP)").values
    # Ordering at every size: Shaddr > FIFO > Direct Put; SMP is the roof.
    for i in range(len(shaddr)):
        assert shaddr[i] > fifo[i] > dput[i]
        assert smp[i] >= shaddr[i]
    # Headline factors at 2 MB (paper: 2.9x and 1.4x).
    assert 2.4 <= result.metrics["shaddr_speedup_at_2M"] <= 3.4
    assert 1.2 <= result.metrics["fifo_speedup_at_2M"] <= 1.7
    # The L3 droop: Shaddr loses bandwidth from 2 MB to 4 MB...
    assert result.metrics["shaddr_droop_4M_vs_2M"] < 0.95
    # ...while the DMA-bound baseline stays flat.
    assert abs(dput[-1] / dput[-2] - 1.0) < 0.10
