"""Serve smoke scenario: cold/memo/warm-restart identity over a real server.

The end-to-end drill behind CI's ``serve-smoke`` job (and a handy local
sanity check).  The script:

1. starts a ``repro serve`` subprocess with an on-disk cache and issues
   a ``repro query`` predict — tier **cold**, digest recorded;
2. repeats the query — tier **memo**, same digest — then exercises
   ``select`` (measured tie-break) and ``sweep`` (one memo hit, one
   batch point);
3. computes the same point through the **in-process serial harness**
   and asserts the served digest is byte-identical to it;
4. checks ``repro serve --stats`` reports the tier counters;
5. scrapes the ``--metrics-port`` Prometheus endpoint mid-drill and
   asserts the ``serve_tier_answers_total`` counters equal the
   ``--stats`` snapshot exactly (exposition and stats are synced from
   one locked snapshot — see docs/observability.md);
6. SIGTERMs the server, restarts it on the same cache, and asserts the
   repeat query is served from **disk** without re-simulating;
7. runs the serve QPS benchmark in smoke mode (which itself refuses to
   record unless memoized >= 100x cold and all tiers are bit-identical)
   and gates the recorded entry with ``repro report --check-bench
   --base ci-serve:cold --new ci-serve:memo --tolerance 0`` (and
   ``:warm``).

Run it from the repo root::

    python benchmarks/serve_smoke.py [--port 8811] [--keep-dir]

Exit status 0 means every assertion held.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.serve.client import query_server  # noqa: E402
from repro.telemetry.runtime import parse_prometheus  # noqa: E402

QUERY_ARGS = ["--family", "bcast", "--algorithm", "tree-shaddr",
              "--size", "64K", "--iters", "2"]
QUERY_JSON = {"op": "predict", "family": "bcast",
              "algorithm": "tree-shaddr", "x": 65536, "iters": 2}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _spawn(args, **kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, **kwargs
    )


def _run(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO_ROOT, check=True, **kwargs
    )


def _query(args, address):
    result = _run(["query", address, *args], stdout=subprocess.PIPE)
    return json.loads(result.stdout)


def _wait_for_server(address, deadline_s=30.0):
    start = time.monotonic()
    while True:
        try:
            return query_server(address, {"op": "ping"}, timeout=5.0)
        except (ConnectionError, OSError):
            if time.monotonic() - start > deadline_s:
                raise
            time.sleep(0.2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8811)
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="Prometheus endpoint port (default port+1)")
    parser.add_argument("--keep-dir", action="store_true",
                        help="leave the scratch directory behind")
    args = parser.parse_args(argv)
    address = f"127.0.0.1:{args.port}"
    metrics_port = (args.metrics_port if args.metrics_port is not None
                    else args.port + 1)
    scratch = tempfile.mkdtemp(prefix="serve_smoke_")
    cache = os.path.join(scratch, "serve.cache")
    bench_out = os.path.join(scratch, "bench.json")
    procs = []

    def serve():
        proc = _spawn(["serve", "--host", "127.0.0.1",
                       "--port", str(args.port), "--cache", cache,
                       "--metrics-port", str(metrics_port)])
        procs.append(proc)
        return proc

    try:
        print("[1/7] cold query through repro serve / repro query ...")
        serve()
        _wait_for_server(address)
        cold = _query(QUERY_ARGS, address)
        assert cold["ok"] and cold["tier"] == "cold", cold["tier"]
        digest = cold["digest"]

        print("[2/7] repeat query memoizes; select and sweep work ...")
        memo = _query(QUERY_ARGS, address)
        assert memo["tier"] == "memo", memo["tier"]
        assert memo["digest"] == digest, "memoized answer changed bytes"

        selection = _query(["--op", "select", "--family", "bcast",
                            "--size", "64K", "--iters", "2",
                            "--candidates", "tree-shaddr,tree-shmem"],
                           address)
        assert selection["table_choice"] == "tree-shaddr", selection
        measured = {entry["algorithm"]: entry
                    for entry in selection["candidates"]}
        assert measured["tree-shaddr"]["tier"] == "memo", selection
        assert measured["tree-shaddr"]["digest"] == digest, selection

        points_file = os.path.join(scratch, "points.json")
        with open(points_file, "w") as handle:
            json.dump([
                {"family": "bcast", "algorithm": "tree-shaddr",
                 "x": 65536, "iters": 2},
                {"family": "bcast", "algorithm": "tree-shaddr",
                 "x": 32768, "iters": 2},
            ], handle)
        sweep = _query(["--op", "sweep", "--points", points_file], address)
        tiers = [point["tier"] for point in sweep["points"]]
        assert tiers == ["memo", "batch"], tiers
        assert sweep["points"][0]["digest"] == digest, sweep

        print("[3/7] served digest is byte-identical to the serial "
              "harness ...")
        from repro.bench.farm import pickle_digest
        from repro.bench.harness import run_collective
        from repro.hardware.machine import Machine, Mode

        machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        serial = run_collective(machine, "bcast", "tree-shaddr", 65536,
                                iters=2)
        assert pickle_digest(serial) == digest, (
            "served answer is NOT byte-identical to the serial harness"
        )

        print("[4/7] repro serve --stats reports the tiers ...")
        stats_run = _run(["serve", "--stats", address],
                         stdout=subprocess.PIPE)
        stats = json.loads(stats_run.stdout)
        assert stats["tiers"]["cold"] == 1, stats["tiers"]
        assert stats["tiers"]["memo"] >= 2, stats["tiers"]
        assert stats["tiers"]["batch"] == 1, stats["tiers"]
        assert stats["disk"]["entries"] >= 2, stats["disk"]
        assert stats["latency"]["count"] >= 4, stats["latency"]

        print("[5/7] Prometheus scrape matches the --stats snapshot ...")
        import urllib.request

        with urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/metrics",
                timeout=10) as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain"), response.headers["Content-Type"]
            scraped = parse_prometheus(response.read().decode())
        tier_counters = scraped.get("serve_tier_answers_total", {})
        for tier, count in stats["tiers"].items():
            assert tier_counters.get(f"tier={tier}", 0.0) == count, (
                f"scraped {tier} counter {tier_counters} does not match "
                f"--stats {stats['tiers']}"
            )
        assert scraped["serve_requests_total"].get("op=predict") == (
            stats["requests"]["predict"]
        ), scraped.get("serve_requests_total")

        print("[6/7] SIGTERM the server; restart serves warm from the "
              "cache ...")
        server = procs[-1]
        server.send_signal(signal.SIGTERM)
        server.wait(timeout=30)
        serve()
        _wait_for_server(address)
        warm_restart = _query(QUERY_ARGS, address)
        assert warm_restart["tier"] in ("disk", "memo"), warm_restart["tier"]
        assert warm_restart["digest"] == digest, (
            "restarted server changed the answer's bytes"
        )
        stats_run = _run(["serve", "--stats", address],
                         stdout=subprocess.PIPE)
        stats = json.loads(stats_run.stdout)
        assert stats["tiers"]["cold"] == 0, (
            "restart re-simulated a cached point: " + repr(stats["tiers"])
        )

        print("[7/7] qps benchmark records and gates the serve entry ...")
        subprocess.run(
            [sys.executable, "-m", "repro.serve.bench", "--smoke",
             "--out", bench_out, "--label", "ci-serve"],
            env=_env(), cwd=REPO_ROOT, check=True,
        )
        _run(["report", "--check-bench", bench_out,
              "--base", "ci-serve:cold", "--new", "ci-serve:memo",
              "--tolerance", "0"])
        _run(["report", "--check-bench", bench_out,
              "--base", "ci-serve:cold", "--new", "ci-serve:warm",
              "--tolerance", "0"])
        with open(bench_out) as handle:
            entry = json.load(handle)["entries"]["ci-serve"]
        speedup = (entry["sweeps"]["memo"]["qps"]
                   / entry["sweeps"]["cold"]["qps"])
        print(f"serve smoke OK: bit-identical across tiers, restart served "
              f"from cache, memo {speedup:.0f}x cold "
              f"({entry['sweeps']['memo']['qps']:.0f} vs "
              f"{entry['sweeps']['cold']['qps']:.1f} q/s)")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        if args.keep_dir:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
