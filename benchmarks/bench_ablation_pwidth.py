"""Ablation: pipeline width (Pwidth) of the message-counter schemes.

The paper pipelines the network and intra-node stages "in units of Pwidth
bytes" but does not sweep the parameter.  This ablation does: small widths
pay per-chunk costs (DMA descriptors, counter updates, poll latency), large
widths destroy the overlap between the network and the peers' copies —
there is a broad sweet spot around the default 64 KB.
"""

from conftest import publish

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import run_bcast
from repro.bench.report import Series
from repro.hardware import BGPParams, Machine, Mode
from repro.util.units import KIB, MIB

WIDTHS = [1 * KIB, 8 * KIB, 32 * KIB, 64 * KIB, 128 * KIB, 256 * KIB]
MESSAGE = 2 * MIB


def run_pwidth_ablation() -> ExperimentResult:
    series = Series("Torus+Shaddr @2M (MB/s)")
    for width in WIDTHS:
        params = BGPParams(pipeline_width=width)
        machine = Machine(torus_dims=(4, 4, 4), mode=Mode.QUAD, params=params)
        series.add(run_bcast(machine, "torus-shaddr", MESSAGE).bandwidth_mbs)
    best = max(series.values)
    default_index = WIDTHS.index(64 * KIB)
    return ExperimentResult(
        "ablation_pwidth",
        "Pipeline width (bytes)",
        WIDTHS,
        [series],
        metrics={
            "best_mbs": best,
            "default_fraction_of_best": series.values[default_index] / best,
            "smallest_fraction_of_best": series.values[0] / best,
            "largest_fraction_of_best": series.values[-1] / best,
        },
    )


def test_ablation_pipeline_width(benchmark):
    result = benchmark.pedantic(run_pwidth_ablation, rounds=1, iterations=1)
    publish(result)
    # The optimum is interior: tiny widths drown in per-chunk costs
    # (descriptors, counter updates, polls)...
    assert result.metrics["smallest_fraction_of_best"] < 0.97
    # ...and very large widths destroy network/intra-node overlap, badly.
    assert result.metrics["largest_fraction_of_best"] < 0.6
    # On this 64-node machine the fill-dominated regime rewards widths
    # finer than the paper's 64 KB default, which still performs usefully.
    assert result.metrics["default_fraction_of_best"] > 0.6
