"""Figure 9: scaling of the shared-address tree broadcast.

Paper claims: "the algorithm scales well for different process
configurations" — bandwidth curves for 1024..8192 processes nearly coincide
because the collective network's throughput does not depend on machine size
(only the logarithmic traversal latency grows).
"""

from conftest import publish

from repro.bench.experiments import fig9_scaling


def test_fig9_scaling(benchmark):
    result = benchmark.pedantic(fig9_scaling, rounds=1, iterations=1)
    publish(result)
    # Bandwidth at the largest message varies by well under 10 % across an
    # 8x range of machine sizes.
    assert result.metrics["spread_at_largest"] < 0.10
    # Larger machines are never dramatically slower at any size.
    smallest = result.series[0].values
    largest = result.series[-1].values
    for a, b in zip(smallest, largest):
        assert b > 0.8 * a
