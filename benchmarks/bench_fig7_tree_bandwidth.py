"""Figure 7: bandwidth of MPI_Bcast over the collective network.

Paper claims: the shared-address core-specialization scheme outperforms all
quad-mode algorithms, improving medium messages by up to ~45 % (128 KB)
over the DMA variants, and approaches the SMP envelope.
"""

from conftest import publish

from repro.bench.experiments import fig7_tree_bandwidth


def test_fig7_tree_bandwidth(benchmark):
    result = benchmark.pedantic(fig7_tree_bandwidth, rounds=1, iterations=1)
    publish(result)
    shaddr = result.series_by_label("CollectiveNetwork+Shaddr").values
    dma_fifo = result.series_by_label("CollectiveNetwork+DMA FIFO").values
    dma_dput = result.series_by_label(
        "CollectiveNetwork+DMA Direct Put"
    ).values
    smp = result.series_by_label("CollectiveNetwork (SMP)").values
    # Shaddr beats both DMA variants at every size and stays below SMP.
    for i in range(len(shaddr)):
        assert shaddr[i] > dma_fifo[i]
        assert shaddr[i] > dma_dput[i]
        assert shaddr[i] <= smp[i] * 1.01
    # The 128 KB gain is in the paper's ~45 % class.
    assert 1.25 <= result.metrics["shaddr_gain_vs_dma_at_128K"] <= 1.75
