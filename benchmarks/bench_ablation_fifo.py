"""Ablation: Bcast FIFO geometry (slot size and depth).

The FIFO multiplexes all six torus connections (section V-A-2); its
geometry trades per-slot bookkeeping against staging capacity.  Tiny slots
drown in atomics/flags; a deeper FIFO helps until the staging capacity
stops being the constraint.
"""

from conftest import publish

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import run_bcast
from repro.bench.report import Series
from repro.hardware import BGPParams, Machine, Mode
from repro.util.units import KIB, MIB

SLOT_SIZES = [1 * KIB, 2 * KIB, 8 * KIB, 32 * KIB]
DEPTHS = [2, 4, 16, 64]
MESSAGE = 2 * MIB


def run_fifo_ablation() -> ExperimentResult:
    by_slot = Series("vary slot size (16 slots)")
    for slot in SLOT_SIZES:
        params = BGPParams(fifo_slot_bytes=slot, fifo_slots=16)
        machine = Machine(torus_dims=(4, 4, 4), mode=Mode.QUAD, params=params)
        by_slot.add(run_bcast(machine, "torus-fifo", MESSAGE).bandwidth_mbs)
    by_depth = Series("vary depth (8K slots)")
    for depth in DEPTHS:
        params = BGPParams(fifo_slot_bytes=8 * KIB, fifo_slots=depth)
        machine = Machine(torus_dims=(4, 4, 4), mode=Mode.QUAD, params=params)
        by_depth.add(run_bcast(machine, "torus-fifo", MESSAGE).bandwidth_mbs)
    return ExperimentResult(
        "ablation_fifo",
        "index (see series captions)",
        list(range(len(SLOT_SIZES))),
        [by_slot, by_depth],
        metrics={
            "slot_1K_vs_8K": by_slot.values[0] / by_slot.values[2],
            "depth_2_vs_16": by_depth.values[0] / by_depth.values[2],
        },
        x_format="count",
    )


def test_ablation_fifo_geometry(benchmark):
    result = benchmark.pedantic(run_fifo_ablation, rounds=1, iterations=1)
    publish(
        result,
        extra_lines=[
            f"slot sizes swept: {SLOT_SIZES}",
            f"depths swept: {DEPTHS}",
        ],
    )
    # 1K slots pay noticeably more bookkeeping than the default 8K...
    assert result.metrics["slot_1K_vs_8K"] < 0.97
    # ...and a nearly-degenerate depth costs throughput vs the default.
    assert result.metrics["depth_2_vs_16"] <= 1.0
