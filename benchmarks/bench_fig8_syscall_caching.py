"""Figure 8: overhead of the window-mapping system calls.

Paper claims: repeatedly invoking the two mapping system calls per buffer
use is "a big source of overhead"; caching the mapping (as the proposed
schemes do internally) removes it.  The gap is largest at small/medium
messages and the series converge for large ones.
"""

from conftest import publish

from repro.bench.experiments import fig8_syscall_caching


def test_fig8_syscall_caching(benchmark):
    result = benchmark.pedantic(fig8_syscall_caching, rounds=1, iterations=1)
    publish(result)
    caching = result.series_by_label(
        "CollectiveNetwork+Shaddr+caching"
    ).values
    nocaching = result.series_by_label(
        "CollectiveNetwork+Shaddr+nocaching"
    ).values
    # Caching never loses.
    for c, n in zip(caching, nocaching):
        assert c >= n
    # The penalty matters most at the small end...
    assert result.metrics["max_caching_gain"] > 1.2
    # ...and largely washes out at the large end.
    assert result.metrics["gain_at_largest"] < 1.10
    assert (
        result.metrics["gain_at_largest"]
        < result.metrics["max_caching_gain"]
    )
