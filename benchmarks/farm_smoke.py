"""Farm smoke scenario: worker SIGKILL + server restart, bytes preserved.

The end-to-end robustness drill behind CI's ``farm-smoke`` job (and a
handy local sanity check).  The script:

1. runs the seeded chaos smoke campaign **serially** — the reference
   bytes;
2. starts a farm server (short leases) and two pull-worker
   subprocesses, then drives the *same* campaign through
   ``repro chaos --farm``;
3. **SIGKILLs one worker** once it holds a lease (its chunk's lease
   expires and is recomputed by the survivor);
4. **SIGKILLs the server** mid-campaign and restarts it with
   ``--resume`` (journaled points are never re-run);
5. asserts the farm-merged ``BENCH_robustness.json`` campaign report is
   **byte-identical** to the serial one, that the farm counted exactly
   one lost worker and one resume, then records the robustness rollups
   as a ``farm-smoke`` bench entry (metrics snapshot included) and
   gates it against itself with ``repro report --check-bench
   --tolerance 0`` (shape/solver-tag sanity; the metrics key must be
   gate-invisible).

Run it from the repo root::

    python benchmarks/farm_smoke.py [--port 8799] [--keep-dir]

Exit status 0 means every assertion held.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.farm import rpc, rpc_retry  # noqa: E402


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _spawn(args, **kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, **kwargs
    )


def _run(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO_ROOT, check=True, **kwargs
    )


def _wait_for_server(address, deadline_s=20.0):
    start = time.monotonic()
    while True:
        try:
            return rpc(address, "status")
        except (ConnectionError, OSError):
            if time.monotonic() - start > deadline_s:
                raise
            time.sleep(0.2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8799)
    parser.add_argument("--keep-dir", action="store_true",
                        help="leave the scratch directory behind")
    args = parser.parse_args(argv)
    address = f"127.0.0.1:{args.port}"
    scratch = tempfile.mkdtemp(prefix="farm_smoke_")
    journal = os.path.join(scratch, "journal.jsonl")
    serial_out = os.path.join(scratch, "serial.json")
    farm_out = os.path.join(scratch, "farm.json")
    procs = []

    def serve(resume=False):
        cmd = ["farm", "serve", "--host", "127.0.0.1",
               "--port", str(args.port), "--journal", journal,
               "--lease-s", "3", "--chunk", "1", "--quiet"]
        if resume:
            cmd.append("--resume")
        proc = _spawn(cmd)
        procs.append(proc)
        return proc

    def work(worker_id):
        proc = _spawn(["farm", "work", address, "--id", worker_id,
                       "--stay", "--quiet"])
        procs.append(proc)
        return proc

    try:
        print("[1/5] serial reference campaign ...")
        _run(["chaos", "--smoke", "--seed", "0", "--out", serial_out],
             stdout=subprocess.DEVNULL)

        print("[2/5] farm campaign: server + 2 workers ...")
        server = serve()
        _wait_for_server(address)
        victim = work("victim")
        work("survivor")
        driver = subprocess.Popen(
            [sys.executable, "-m", "repro", "chaos", "--smoke",
             "--seed", "0", "--out", farm_out, "--farm", address],
            env=_env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        procs.append(driver)

        print("[3/5] SIGKILL a worker holding a lease ...")
        # Freeze-then-kill so the kill provably lands mid-chunk: SIGSTOP
        # is instantaneous, so if the victim still holds its lease after
        # a beat of being frozen, no completion can be in flight and the
        # lease is guaranteed to expire.
        def _victim_leased():
            status = rpc_retry(address, "status")
            return any(lease["worker"] == "victim"
                       for lease in status["leased"].values()), status

        deadline = time.monotonic() + 60.0
        victim_frozen_mid_chunk = False
        while not victim_frozen_mid_chunk:
            held, status = _victim_leased()
            if held:
                victim.send_signal(signal.SIGSTOP)
                time.sleep(0.2)
                held, status = _victim_leased()
                if held:
                    victim_frozen_mid_chunk = True
                    break
                victim.send_signal(signal.SIGCONT)
            assert not status["done"] and time.monotonic() < deadline, (
                "never froze the victim mid-chunk: " + repr(status))
            time.sleep(0.02)
        victim.send_signal(signal.SIGKILL)
        victim.wait()

        # Wait for the server to notice (and journal) the abandoned
        # lease — the expiry record is what lets workers_lost survive
        # the server kill below.
        deadline = time.monotonic() + 60.0
        while True:
            status = rpc_retry(address, "status")
            if status["stats"]["workers_lost"] >= 1:
                break
            assert time.monotonic() < deadline, (
                "lease expiry never observed: " + repr(status["stats"]))
            time.sleep(0.1)

        print("[4/5] SIGKILL the server mid-campaign; resume ...")
        deadline = time.monotonic() + 120.0
        while True:
            status = rpc_retry(address, "status")
            if status["completed"] >= 3 or status["done"]:
                break
            assert time.monotonic() < deadline, "no campaign progress"
            time.sleep(0.1)
        pre_kill_completed = status["completed"]
        server.send_signal(signal.SIGKILL)
        server.wait()
        time.sleep(1.0)
        serve(resume=True)
        status = _wait_for_server(address, deadline_s=30.0)
        assert status["stats"]["resumes"] == 1, status["stats"]
        assert status["completed"] >= min(pre_kill_completed,
                                          status["total"]), status

        returncode = driver.wait(timeout=600)
        assert returncode == 0, f"farm chaos driver exited {returncode}"

        print("[5/5] byte-identity + robustness rollups ...")
        with open(serial_out, "rb") as handle:
            serial_bytes = handle.read()
        with open(farm_out, "rb") as handle:
            farm_bytes = handle.read()
        assert farm_bytes == serial_bytes, (
            "farm campaign report is NOT byte-identical to serial "
            f"({serial_out} vs {farm_out})"
        )
        status = rpc_retry(address, "status")
        stats = status["stats"]
        assert status["done"], status
        assert stats["workers_lost"] >= 1, stats
        assert stats["leases_expired"] >= 1, stats
        assert stats["resumes"] == 1, stats
        assert stats["chunks_quarantined"] == 0, stats
        assert stats["digest_mismatches"] == 0, stats

        _run(["farm", "status", address, "--bench", farm_out,
              "--label", "farm-smoke"], stdout=subprocess.DEVNULL)
        _run(["farm", "status", address, "--bench", farm_out,
              "--label", "farm-smoke-replay"], stdout=subprocess.DEVNULL)
        # Two recordings of one settled campaign must agree *exactly* —
        # the metrics snapshot riding in the entry is gate-invisible
        # (the gate reads only smoke/solver/sweeps).
        _run(["report", "--check-bench", farm_out,
              "--base", "farm-smoke", "--new", "farm-smoke-replay",
              "--tolerance", "0"])
        # The entry rode along INSIDE the campaign report without
        # disturbing the campaign bytes themselves.
        with open(farm_out) as handle:
            merged = json.load(handle)
        assert merged["summary"] == json.loads(serial_bytes)["summary"]
        assert "farm-smoke" in merged["entries"]
        assert "metrics" in merged["entries"]["farm-smoke"], (
            "farm status --bench did not capture the metrics snapshot"
        )

        # Gate this drill's deterministic rollups against the committed
        # baseline: the drill always loses exactly one worker, resumes
        # exactly once, quarantines nothing, and completes every point.
        bench_path = os.path.join(REPO_ROOT, "BENCH_robustness.json")
        with open(bench_path) as handle:
            baseline = json.load(handle).get("entries", {}).get(
                "farm-robustness")
        if baseline is not None:
            merged["entries"]["farm-robustness"] = baseline
            with open(farm_out, "w") as handle:
                json.dump(merged, handle, indent=2, sort_keys=True)
            _run(["report", "--check-bench", farm_out,
                  "--base", "farm-robustness", "--new", "farm-smoke"])
        print("farm smoke OK: byte-identical merge, "
              f"{stats['workers_lost']} worker lost, "
              f"{stats['leases_expired']} lease(s) expired, "
              f"{stats['resumes']} resume")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        if args.keep_dir:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
