"""Closed-form steady-state and latency models.

Bandwidth predictions enumerate every candidate bottleneck as a
:class:`Bound` (payload MB/s ceiling); the prediction is their minimum.
DMA bounds are computed *exactly* per node from the rectangle-route roles
— no simulation, just accounting of raw bytes per payload byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.hardware.memory import MemoryModel
from repro.hardware.params import BGPParams
from repro.msg.color import torus_colors
from repro.msg.routes import RectangleSchedule


@dataclass(frozen=True)
class Bound:
    """One candidate bottleneck: a named payload-rate ceiling (MB/s)."""

    name: str
    limit: float


@dataclass
class Prediction:
    """A set of bounds; the prediction is the tightest one."""

    bounds: List[Bound] = field(default_factory=list)

    def add(self, name: str, limit: float) -> None:
        self.bounds.append(Bound(name, limit))

    @property
    def bottleneck(self) -> Bound:
        if not self.bounds:
            raise ValueError("no bounds recorded")
        return min(self.bounds, key=lambda b: b.limit)

    @property
    def value(self) -> float:
        """The predicted ceiling in MB/s."""
        return self.bottleneck.limit

    def __str__(self) -> str:
        lines = [
            f"  {b.name:<28} {b.limit:9.1f} MB/s"
            + ("   <-- bottleneck" if b is self.bottleneck else "")
            for b in sorted(self.bounds, key=lambda b: b.limit)
        ]
        return "\n".join(lines)


class _TopologyAccountant:
    """Per-node DMA/wire accounting for the six-color rectangle routes.

    For each node, sums over colors the raw DMA bytes moved per payload
    byte of the *whole message*: receptions count 1 and each line-broadcast
    injection counts 1, weighted by the color's share of the message.
    """

    def __init__(self, dims: Tuple[int, int, int], ncolors: int, root: int = 0):
        # Topology helpers only — build a throwaway torus facade.
        from repro.hardware.machine import Machine, Mode

        self._machine = Machine(torus_dims=dims, mode=Mode.SMP)
        self.torus = self._machine.torus
        self.colors = torus_colors(ncolors)
        # Colors carry (almost exactly) equal shares of the message.
        self.shares = [1.0 / ncolors] * ncolors
        self.root = root

    def worst_network_dma_per_byte(self) -> float:
        """Max over nodes of raw network-DMA bytes per payload byte."""
        worst = 0.0
        for node in range(self.torus.nnodes):
            load = 0.0
            for color, share in zip(self.colors, self.shares):
                sched = RectangleSchedule(self.torus, self.root, color)
                role = sched.role(node)
                receives = 0 if role.receive_phase == -1 else 1
                injections = len(role.relays)
                if role.receive_phase == -1:
                    injections = len(sched.phase_dims)
                load += share * (receives + injections)
            worst = max(worst, load)
        return worst


def predict_torus_bcast(
    params: BGPParams,
    algorithm: str,
    dims: Tuple[int, int, int],
    nbytes: int,
    ppn: int = 4,
) -> Prediction:
    """Steady-state ceiling of a torus broadcast algorithm.

    ``algorithm`` is one of ``torus-direct-put`` / ``torus-direct-put-smp``
    / ``torus-fifo`` / ``torus-shaddr``.
    """
    regime = MemoryModel(params).regime(_bcast_working_set(nbytes, ppn))
    ncolors = 6
    prediction = Prediction()
    # Wire ceiling: each color's route tops out at one link's rate.
    prediction.add("wire (6 colors x link)", ncolors * params.torus_link_bw)
    accountant = _TopologyAccountant(dims, ncolors)
    network_dma = accountant.worst_network_dma_per_byte()
    npeers = ppn - 1
    if algorithm == "torus-direct-put":
        dma_per_byte = network_dma + npeers * params.dma_local_copy_weight
        mem_per_byte = 2.0 + 2.0 * npeers  # net write+read + peer copies
    elif algorithm == "torus-direct-put-smp":
        dma_per_byte = network_dma
        mem_per_byte = 2.0
    elif algorithm == "torus-fifo":
        dma_per_byte = network_dma
        mem_per_byte = 2.0 + 2.0 + 2.0 * npeers  # net + staging in + outs
        prediction.add("master staging copy", regime.fifo_copy_cap)
    elif algorithm == "torus-shaddr":
        dma_per_byte = network_dma
        mem_per_byte = 2.0 + 2.0 * npeers
        prediction.add("peer direct copy", regime.core_copy_cap)
    else:
        raise KeyError(f"unknown torus bcast algorithm {algorithm!r}")
    if dma_per_byte > 0:
        prediction.add(
            f"DMA budget ({dma_per_byte:.2f} raw B/B)",
            params.dma_total_bw / dma_per_byte,
        )
    if mem_per_byte > 0:
        prediction.add(
            f"memory port ({mem_per_byte:.2f} raw B/B)",
            regime.raw_capacity / mem_per_byte,
        )
    return prediction


def predict_tree_bcast(
    params: BGPParams,
    algorithm: str,
    nbytes: int,
    ppn: int = 4,
) -> Prediction:
    """Steady-state ceiling of a collective-network broadcast algorithm."""
    regime = MemoryModel(params).regime(_bcast_working_set(nbytes, ppn))
    prediction = Prediction()
    prediction.add("tree wire", params.tree_link_bw)
    npeers = max(0, ppn - 1)
    if algorithm == "tree-smp":
        prediction.add("inject core", params.tree_core_inject_bw)
        prediction.add("receive core", params.tree_core_recv_bw)
    elif algorithm in ("tree-dma-fifo", "tree-dma-direct-put", "tree-shmem"):
        # One core both injects and receives: the stages serialize.
        serialized = 1.0 / (
            1.0 / params.tree_core_inject_bw
            + 1.0 / params.tree_core_recv_bw
        )
        prediction.add("single tree core (inject+recv)", serialized)
        if algorithm == "tree-dma-fifo":
            prediction.add("peer FIFO drain", regime.fifo_copy_cap)
            prediction.add(
                "DMA fifo delivery",
                params.dma_total_bw / max(1, npeers),
            )
        elif algorithm == "tree-dma-direct-put":
            prediction.add(
                "DMA direct put",
                params.dma_total_bw
                / max(1e-9, npeers * params.dma_local_copy_weight),
            )
        else:  # tree-shmem: master also copies out of the segment
            shmem_serialized = 1.0 / (
                1.0 / params.tree_core_inject_bw
                + 1.0 / params.tree_core_recv_bw
                + 1.0 / regime.fifo_copy_cap
            )
            prediction.add(
                "single core (inject+recv+copy)", shmem_serialized
            )
    elif algorithm == "tree-shaddr":
        prediction.add("inject core (rank 0)", params.tree_core_inject_bw)
        prediction.add("receive core (rank 1)", params.tree_core_recv_bw)
        # Rank 2 performs two copies per byte (own buffer + injector's).
        prediction.add("rank-2 double copy", regime.core_copy_cap / 2.0)
    else:
        raise KeyError(f"unknown tree bcast algorithm {algorithm!r}")
    return prediction


def predict_tree_latency(
    params: BGPParams,
    nnodes: int,
    nbytes: int,
    algorithm: str = "tree-smp",
) -> float:
    """Closed-form short-message latency of a tree broadcast (µs).

    Components: MPI software entry, injection startup, payload injection,
    up-and-down traversal (2 x depth hops), payload reception, plus the
    algorithm's intra-node handoff.
    """
    depth = max(1, math.ceil(math.log2(max(2, nnodes))))
    base = (
        params.mpi_overhead
        + params.tree_inject_startup
        + nbytes / params.tree_core_inject_bw
        + 2.0 * depth * params.tree_hop_latency
        + nbytes / params.tree_core_recv_bw
    )
    if algorithm == "tree-smp":
        return base
    regime = MemoryModel(params).regime(nbytes * 4)
    if algorithm == "tree-shmem":
        return (
            base
            + params.flag_cost  # staging flag write
            + params.flag_cost  # peer's flag observation
            + params.shmem_chunk_overhead
            + nbytes / regime.fifo_copy_cap  # peer copy out
        )
    if algorithm == "tree-dma-fifo":
        return (
            base
            + params.dma_startup
            + params.dma_fifo_overhead
            + nbytes / regime.fifo_copy_cap
        )
    raise KeyError(f"no latency model for {algorithm!r}")


def _bcast_working_set(nbytes: int, ppn: int) -> int:
    return nbytes * ppn
