"""Analytic performance models.

Closed-form steady-state bounds for every collective algorithm, derived
directly from :class:`~repro.hardware.params.BGPParams` and the route
schedules — the same arithmetic the paper argues with ("the DMA ... is not
enough to concurrently transfer the data within the node") and the same
arithmetic used to calibrate the simulator.

The test suite cross-validates simulator against model: measured bandwidth
never exceeds the analytic ceiling, and approaches it at large messages.
"""

from repro.analysis.model import (
    Bound,
    Prediction,
    predict_torus_bcast,
    predict_tree_bcast,
    predict_tree_latency,
)

__all__ = [
    "Bound",
    "Prediction",
    "predict_torus_bcast",
    "predict_tree_bcast",
    "predict_tree_latency",
]
