"""Queueing resources for the DES kernel.

Three resource flavours cover every piece of BG/P hardware we model:

``Server``
    A FIFO queueing server with integer capacity.  Torus links and the tree
    network's per-link stages are Servers: packets serialize, contention shows
    up as queueing delay.

``FairSharePipe``
    A processor-sharing bandwidth resource with optional per-flow rate caps.
    The memory subsystem and the DMA engine are FairSharePipes: N concurrent
    transfers each progress at ``min(flow_cap, fair share of total rate)``,
    recomputed (water-filling) whenever a flow starts or finishes.  This is
    the standard fluid model for shared buses/engines and is what makes the
    paper's headline effect — the DMA being over-committed when it must move
    both network and intra-node data — fall out naturally.

``Store``
    A bounded FIFO of Python objects with blocking put/get, used for DMA
    memory FIFOs and other mailbox-style channels.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event

#: Bytes below this remainder are considered fully transferred (float slack).
_EPSILON_BYTES = 1e-6


class Grant:
    """Token proving ownership of one unit of a :class:`Server`."""

    __slots__ = ("server", "released")

    def __init__(self, server: "Server"):
        self.server = server
        self.released = False


class Server:
    """FCFS queueing server with ``capacity`` concurrent holders."""

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "server"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of grants currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers waiting."""
        return len(self._queue)

    def acquire(self) -> Event:
        """Return an event that fires (with a :class:`Grant`) when capacity frees."""
        event = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.trigger(Grant(self))
        else:
            self._queue.append(event)
        return event

    def release(self, grant: Grant) -> None:
        """Return a grant; wakes the next queued acquirer if any."""
        if grant.server is not self or grant.released:
            raise SimulationError(f"invalid release on server {self.name!r}")
        grant.released = True
        if self._queue:
            event = self._queue.popleft()
            event.trigger(Grant(self))
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """Sub-generator: hold the server exclusively for ``duration`` µs.

        Usage inside a process: ``yield from server.use(3.0)``.
        """
        grant = yield self.acquire()
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release(grant)


class _Flow:
    """Internal bookkeeping for one active FairSharePipe transfer."""

    __slots__ = ("nbytes", "remaining", "cap", "event", "rate")

    def __init__(self, nbytes: float, cap: float, event: Event):
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.cap = cap
        self.event = event
        self.rate = 0.0


class FairSharePipe:
    """Processor-sharing bandwidth resource with per-flow caps.

    Rates are in **bytes per microsecond** (numerically equal to MB/s with
    1 MB = 1e6 bytes).  At every membership change the pipe water-fills the
    total rate across active flows: flows whose cap is below the equal share
    get their cap, and the surplus is redistributed among the rest.
    """

    def __init__(
        self,
        engine: Engine,
        total_rate: float,
        per_flow_cap: Optional[float] = None,
        name: str = "pipe",
    ):
        if not total_rate > 0:
            raise ValueError(f"total_rate must be > 0, got {total_rate}")
        if per_flow_cap is not None and not per_flow_cap > 0:
            raise ValueError(f"per_flow_cap must be > 0, got {per_flow_cap}")
        self.engine = engine
        self.total_rate = float(total_rate)
        self.per_flow_cap = per_flow_cap
        self.name = name
        self._flows: Dict[int, _Flow] = {}
        self._next_id = 0
        self._last_update = 0.0
        self._generation = 0
        #: cumulative bytes completed through this pipe (for utilisation stats)
        self.bytes_transferred = 0.0

    # -- public API -----------------------------------------------------
    def transfer(self, nbytes: float, cap: Optional[float] = None) -> Event:
        """Start a transfer of ``nbytes``; returns the completion event.

        ``cap`` optionally limits this flow's rate below the pipe-wide
        per-flow cap (e.g. a core-driven copy can be slower than the memory
        system allows).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        event = Event(self.engine)
        if nbytes == 0:
            event.trigger(0.0)
            return event
        effective_cap = self._effective_cap(cap)
        self._advance()
        flow_id = self._next_id
        self._next_id += 1
        self._flows[flow_id] = _Flow(nbytes, effective_cap, event)
        self._reschedule()
        return event

    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    # -- internals ----------------------------------------------------------
    def _effective_cap(self, cap: Optional[float]) -> float:
        caps = [c for c in (cap, self.per_flow_cap) if c is not None]
        return min(caps) if caps else math.inf

    def _water_fill(self) -> None:
        """Assign each flow ``min(cap, fair share)``, redistributing surplus."""
        pending = list(self._flows.values())
        budget = self.total_rate
        # Flows with small caps saturate first; handle them in cap order.
        pending.sort(key=lambda f: f.cap)
        n = len(pending)
        for i, flow in enumerate(pending):
            share = budget / (n - i)
            flow.rate = min(flow.cap, share)
            budget -= flow.rate

    def _advance(self) -> None:
        """Progress all flows from the last update time to now."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows.values():
                flow.remaining -= flow.rate * dt
        self._last_update = now

    def _reschedule(self) -> None:
        """Recompute rates and schedule the next completion callback."""
        self._generation += 1
        if not self._flows:
            return
        self._water_fill()
        next_finish = math.inf
        for flow in self._flows.values():
            if flow.rate <= 0:
                raise SimulationError(
                    f"pipe {self.name!r}: flow starved (rate=0); "
                    "check total_rate and caps"
                )
            finish = flow.remaining / flow.rate
            if finish < next_finish:
                next_finish = finish
        generation = self._generation
        self.engine.call_after(
            max(next_finish, 0.0), self._on_completion, generation
        )

    def _on_completion(self, generation: int) -> None:
        if generation != self._generation:
            return  # stale wake-up: membership changed since scheduling
        self._advance()
        finished = [
            (fid, flow)
            for fid, flow in self._flows.items()
            if flow.remaining <= _EPSILON_BYTES
        ]
        if not finished:
            # Numerical slack: reschedule the tail.
            self._reschedule()
            return
        for fid, flow in finished:
            del self._flows[fid]
            self.bytes_transferred += flow.nbytes
        for _fid, flow in finished:
            flow.event.trigger(self.engine.now)
        self._reschedule()


class Store:
    """Bounded FIFO of items with blocking put/get semantics."""

    def __init__(self, engine: Engine, capacity: int = 2**30, name: str = "store"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is placed in the store."""
        event = Event(self.engine)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.trigger(item)
            event.trigger(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.trigger(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that fires with the oldest item."""
        event = Event(self.engine)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, queued = self._putters.popleft()
                self._items.append(queued)
                put_event.trigger(None)
            event.trigger(item)
        else:
            self._getters.append(event)
        return event
