"""Max-min fair fluid-flow network.

This is the bandwidth heart of the whole simulator.  Every data movement in
the modelled machine — a DMA putting packets on a torus link, a core copying
out of a peer's mapped buffer, the collective network draining into memory —
is a *flow* that simultaneously consumes several *resources*, each with a
finite capacity in bytes/µs:

* a flow has a payload size (bytes) and an optional per-flow rate cap
  (e.g. a single core cannot copy faster than its load/store pipeline);
* a flow uses each resource with a *weight* — a memory copy moves two raw
  bytes (read + write) per payload byte, so it uses the memory port with
  weight 2, while a network reception writes one raw byte per payload byte
  (weight 1);
* at any instant, flow rates are the weighted max-min fair allocation
  (progressive filling): all unfrozen flows grow at the same payload rate
  until a resource saturates or a flow hits its cap.

This fluid model is the standard way to reason about shared buses and
engines, and it is exactly the accounting the paper does informally: the
BG/P DMA "can keep all six links busy" (6 x 425 = 2550 MB/s of its budget)
"but it is not enough to concurrently transfer the data within the node"
(section V-A-1).  With the DMA modelled as a resource, that sentence becomes
an emergent property instead of a hard-coded constant.

Efficiency: rates only change when a flow starts, finishes, or a capacity is
reconfigured, and a change only affects the *connected component* of flows
that (transitively) share resources.  Flows in different components — e.g.
independent nodes draining the collective network — are updated in O(1).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event, Waitable

_EPS_BYTES = 1e-6
_EPS_RATE = 1e-9


class FlowResource:
    """A capacity-constrained port/engine/link inside a :class:`FlowNetwork`."""

    __slots__ = (
        "name", "capacity", "flows", "network", "_busy_acc", "_busy_last"
    )

    def __init__(self, network: "FlowNetwork", name: str, capacity: float):
        if not capacity > 0:
            raise ValueError(f"resource {name!r}: capacity must be > 0")
        self.network = network
        self.name = name
        self.capacity = float(capacity)
        self.flows: Set["Flow"] = set()
        #: time-integral of load (raw bytes) — the utilization monitor
        self._busy_acc = 0.0
        self._busy_last = 0.0

    def set_capacity(self, capacity: float) -> None:
        """Reconfigure capacity; re-solves the affected component immediately.

        Used by the memory-system model when the cache working-set regime
        changes between collective invocations.
        """
        if not capacity > 0:
            raise ValueError(f"resource {self.name!r}: capacity must be > 0")
        self.integrate(self.network.engine.now)
        self.capacity = float(capacity)
        self.network._resolve_component_of_resources([self])

    @property
    def load(self) -> float:
        """Current total weighted consumption (bytes/µs)."""
        return sum(f.rate * f.usage[self] for f in self.flows)

    def integrate(self, now: float) -> None:
        """Fold the current load into the busy-time integral up to ``now``.

        Called by the network before any event that changes this resource's
        load (flow rate changes, arrivals, departures, capacity changes).
        """
        if now > self._busy_last:
            self._busy_acc += self.load * (now - self._busy_last)
            self._busy_last = now

    def busy_integral(self, now: float) -> float:
        """Total raw bytes served through this resource up to ``now``."""
        return self._busy_acc + self.load * max(0.0, now - self._busy_last)

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Mean load / capacity over ``[since, now]`` (0 when empty window).

        Note ``since`` must be an instant at which the busy integral was
        previously sampled as 0 or the caller tracks the baseline itself;
        the common use is the whole run, ``since=0``.
        """
        window = now - since
        if window <= 0:
            return 0.0
        return self.busy_integral(now) / (self.capacity * window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowResource {self.name} cap={self.capacity} n={len(self.flows)}>"


class Flow(Waitable):
    """One in-flight transfer across a set of resources.

    A flow is itself a waitable: a process may ``yield`` the flow returned by
    :meth:`FlowNetwork.transfer` and resumes when the transfer completes.
    """

    __slots__ = (
        "name",
        "nbytes",
        "remaining",
        "cap",
        "usage",
        "rate",
        "event",
        "last_update",
        "generation",
        "finished",
    )

    def __init__(
        self,
        name: str,
        nbytes: float,
        cap: float,
        usage: Dict[FlowResource, float],
        event: Event,
        now: float,
    ):
        self.name = name
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.cap = cap
        self.usage = usage
        self.rate = 0.0
        self.event = event
        self.last_update = now
        self.generation = 0
        self.finished = False

    def subscribe(self, process) -> None:
        self.event.subscribe(process)

    def advance(self, now: float) -> None:
        """Progress ``remaining`` using the rate held since ``last_update``."""
        dt = now - self.last_update
        if dt > 0:
            self.remaining -= self.rate * dt
        self.last_update = now


class FlowNetwork:
    """Container of resources and flows with max-min fair rate allocation."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.resources: List[FlowResource] = []
        #: cumulative payload bytes completed (for utilisation reporting)
        self.bytes_completed = 0.0
        self.flows_completed = 0

    # -- construction ---------------------------------------------------
    def add_resource(self, name: str, capacity: float) -> FlowResource:
        """Register a new resource (port, engine, or link)."""
        resource = FlowResource(self, name, capacity)
        self.resources.append(resource)
        return resource

    # -- flows ------------------------------------------------------------
    def transfer(
        self,
        usage: Dict[FlowResource, float],
        nbytes: float,
        cap: Optional[float] = None,
        name: str = "flow",
    ) -> "Flow":
        """Start a transfer; returns the (waitable) flow.

        ``usage`` maps each consumed resource to its weight (raw bytes moved
        on that resource per payload byte).  ``cap`` optionally limits the
        flow's payload rate.  A flow must be constrained by *something*:
        either a cap or at least one resource.  Zero-byte transfers complete
        immediately.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        event = Event(self.engine)
        if nbytes == 0:
            flow = Flow("null-" + name, 0.0, math.inf, {}, event, self.engine.now)
            flow.finished = True
            event.trigger(self.engine.now)
            return flow
        for resource, weight in usage.items():
            if weight <= 0:
                raise ValueError(
                    f"flow {name!r}: weight on {resource.name!r} must be > 0"
                )
        flow_cap = float(cap) if cap is not None else math.inf
        if flow_cap is math.inf and not usage:
            raise SimulationError(f"flow {name!r} is unconstrained")
        flow = Flow(name, nbytes, flow_cap, dict(usage), event, self.engine.now)
        for resource in flow.usage:
            resource.flows.add(flow)
        self._resolve_component(flow)
        self.engine.trace(f"flow+ {name} {nbytes:.0f}B rate={flow.rate:.1f}")
        return flow

    # -- component solving --------------------------------------------------
    def _component(self, seed_flows: Iterable[Flow]) -> List[Flow]:
        """All flows transitively sharing a resource with the seeds."""
        seen: Set[Flow] = set()
        stack: List[Flow] = [f for f in seed_flows if not f.finished]
        seen.update(stack)
        visited_resources: Set[FlowResource] = set()
        while stack:
            flow = stack.pop()
            for resource in flow.usage:
                if resource in visited_resources:
                    continue
                visited_resources.add(resource)
                for other in resource.flows:
                    if other not in seen and not other.finished:
                        seen.add(other)
                        stack.append(other)
        return list(seen)

    def _resolve_component(self, seed: Flow) -> None:
        self._resolve(self._component([seed]))

    def _resolve_component_of_resources(
        self, resources: Iterable[FlowResource]
    ) -> None:
        seeds: List[Flow] = []
        for resource in resources:
            seeds.extend(resource.flows)
        if seeds:
            self._resolve(self._component(seeds))

    def _resolve(self, flows: List[Flow]) -> None:
        """Advance, re-solve rates (progressive filling), reschedule.

        Only flows whose rate actually changed get a fresh deadline; an
        unchanged flow's previously scheduled completion stays valid, which
        keeps the event heap small when large components re-solve often.
        """
        now = self.engine.now
        old_rates = {}
        seen_resources: Set[FlowResource] = set()
        for flow in flows:
            flow.advance(now)
            old_rates[id(flow)] = flow.rate
            for resource in flow.usage:
                if resource not in seen_resources:
                    seen_resources.add(resource)
                    # Fold the pre-change load into the busy integral.
                    resource.integrate(now)
        self._progressive_fill(flows)
        for flow in flows:
            old = old_rates[id(flow)]
            # Tolerant comparison: re-solving a component whose membership
            # changed elsewhere can produce meaningless last-bit jitter.
            if (
                abs(flow.rate - old) > 1e-12 * max(flow.rate, old, 1.0)
                or flow.remaining <= _EPS_BYTES
            ):
                self._schedule_completion(flow)

    def _progressive_fill(self, flows: List[Flow]) -> None:
        """Weighted max-min fair allocation for one component.

        Level-based progressive filling: all unfrozen flows share a common
        rate *level* that rises until either a flow's cap or a resource's
        capacity binds; bound flows freeze at the current level and the
        remainder keeps rising.  Per round this costs O(resources + active
        flows); the number of rounds is the number of distinct binding
        events, which is small in practice.
        """
        if not flows:
            return
        resources: Set[FlowResource] = set()
        for flow in flows:
            flow.rate = 0.0
            resources.update(flow.usage)
        slack: Dict[FlowResource, float] = {}
        wsum: Dict[FlowResource, float] = {}
        for r in resources:
            slack[r] = r.capacity
            wsum[r] = 0.0
        for flow in flows:
            for r, w in flow.usage.items():
                wsum[r] += w
        active: Set[Flow] = set(flows)
        level = 0.0
        while active:
            alpha = math.inf
            for r in resources:
                if wsum[r] > _EPS_RATE:
                    a = slack[r] / wsum[r]
                    if a < alpha:
                        alpha = a
            min_cap = math.inf
            for flow in active:
                if flow.cap < min_cap:
                    min_cap = flow.cap
            alpha = min(alpha, min_cap - level)
            if alpha is math.inf:
                names = ", ".join(f.name for f in list(active)[:4])
                raise SimulationError(
                    f"unconstrained flows in component: {names}"
                )
            alpha = max(alpha, 0.0)
            level += alpha
            for r in resources:
                if wsum[r] > _EPS_RATE:
                    slack[r] -= wsum[r] * alpha
            frozen: List[Flow] = []
            for flow in active:
                if level >= flow.cap - _EPS_RATE:
                    flow.rate = flow.cap
                    frozen.append(flow)
                    continue
                for r in flow.usage:
                    if slack[r] <= _EPS_RATE:
                        flow.rate = level
                        frozen.append(flow)
                        break
            if not frozen:
                raise SimulationError(
                    "progressive filling failed to converge (numerical issue)"
                )
            for flow in frozen:
                active.discard(flow)
                for r, w in flow.usage.items():
                    wsum[r] -= w

    def _schedule_completion(self, flow: Flow) -> None:
        flow.generation += 1
        if flow.finished:
            return
        if flow.remaining <= _EPS_BYTES:
            self._finish(flow)
            return
        if flow.rate <= _EPS_RATE:
            raise SimulationError(f"flow {flow.name!r} starved (rate=0)")
        eta = flow.remaining / flow.rate
        self.engine.call_after(eta, self._on_deadline, (flow, flow.generation))

    def _on_deadline(self, token: Tuple[Flow, int]) -> None:
        flow, generation = token
        if flow.finished or generation != flow.generation:
            return  # stale: rates changed since this deadline was set
        flow.advance(self.engine.now)
        if flow.remaining <= _EPS_BYTES:
            self._finish(flow)
        else:
            # Numerical slack; re-arm.
            self._schedule_completion(flow)

    def _finish(self, flow: Flow) -> None:
        flow.finished = True
        flow.remaining = 0.0
        resources = list(flow.usage.keys())
        now = self.engine.now
        for resource in resources:
            resource.integrate(now)
            resource.flows.discard(flow)
        self.bytes_completed += flow.nbytes
        self.flows_completed += 1
        self.engine.trace(f"flow- {flow.name}")
        flow.event.trigger(self.engine.now)
        # Freed capacity speeds up neighbours: re-solve their component.
        self._resolve_component_of_resources(resources)
