"""Max-min fair fluid-flow network.

This is the bandwidth heart of the whole simulator.  Every data movement in
the modelled machine — a DMA putting packets on a torus link, a core copying
out of a peer's mapped buffer, the collective network draining into memory —
is a *flow* that simultaneously consumes several *resources*, each with a
finite capacity in bytes/µs:

* a flow has a payload size (bytes) and an optional per-flow rate cap
  (e.g. a single core cannot copy faster than its load/store pipeline);
* a flow uses each resource with a *weight* — a memory copy moves two raw
  bytes (read + write) per payload byte, so it uses the memory port with
  weight 2, while a network reception writes one raw byte per payload byte
  (weight 1);
* at any instant, flow rates are the weighted max-min fair allocation
  (progressive filling): all unfrozen flows grow at the same payload rate
  until a resource saturates or a flow hits its cap.

This fluid model is the standard way to reason about shared buses and
engines, and it is exactly the accounting the paper does informally: the
BG/P DMA "can keep all six links busy" (6 x 425 = 2550 MB/s of its budget)
"but it is not enough to concurrently transfer the data within the node"
(section V-A-1).  With the DMA modelled as a resource, that sentence becomes
an emergent property instead of a hard-coded constant.

Efficiency: rates only change when a flow starts, finishes, or a capacity is
reconfigured, and a change only affects the *connected component* of flows
that (transitively) share resources.  Two solver paths compute that
component:

* the **incremental fast path** (default) keeps a component cache — a
  union-find forest over flows — so starting a flow unions the components
  of its resources in O(α) instead of walking the component, and only a
  finish of a multi-resource flow (a potential articulation point) pays a
  split-detection traversal;
* the **reference slow path** (``REPRO_SIM_SLOWPATH=1`` or
  ``FlowNetwork(engine, incremental=False)``) rediscovers the component by
  graph traversal on every perturbation, exactly as the original solver
  did.

Both paths feed identical progressive-filling code and produce
bit-identical rates and completion times; the property suite asserts this
on randomized flow graphs and on full collective scenarios.  The filling
itself has two interchangeable kernels: the scalar loop and a vectorized
numpy kernel over flat arrays (``_fill_vector``), dispatched for large
components and disabled with ``REPRO_SIM_VECTOR=0`` — see
:mod:`repro.sim.config` for how the mode flags resolve at call time.  Each
resource additionally maintains running accumulators — ``load`` (weighted
bytes/µs currently flowing) and the active weight sum — so per-event
bookkeeping is O(1) instead of O(flows).  ``REPRO_SIM_DEBUG=1``
cross-checks every accumulator against a from-scratch recomputation and
runs both fill kernels on every component, demanding bit-exact agreement.
"""

from __future__ import annotations

import math
from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim.config import SolverConfig, resolve_solver_config
from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event, Waitable

try:  # numpy is a project dependency, but the core must degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the toolchain
    _np = None

_EPS_BYTES = 1e-6
_EPS_RATE = 1e-9

#: components smaller than this run the scalar fill loop even in
#: vectorized mode — array setup costs more than it saves on tiny
#: components (both paths are bit-identical, so this is purely a
#: wall-clock dispatch threshold)
_VECTOR_MIN_FLOWS = 512


class FlowResource:
    """A capacity-constrained port/engine/link inside a :class:`FlowNetwork`."""

    __slots__ = (
        "name", "capacity", "flows", "network", "component", "index",
        "_busy_acc", "_busy_last", "_load", "_wsum",
        "_fill_slack", "_fill_wsum", "_fill_epoch", "_seen_epoch",
    )

    def __init__(self, network: "FlowNetwork", name: str, capacity: float,
                 index: int = 0):
        if not capacity > 0:
            raise ValueError(f"resource {name!r}: capacity must be > 0")
        self.network = network
        self.name = name
        #: position in ``network.resources`` — the stable id the vectorized
        #: fill kernel uses to address flat per-resource arrays
        self.index = index
        self.capacity = float(capacity)
        self.flows: Set["Flow"] = set()
        #: component-cache entry point (fast path); None when idle
        self.component: Optional["_Component"] = None
        #: time-integral of load (raw bytes) — the utilization monitor
        self._busy_acc = 0.0
        self._busy_last = 0.0
        #: running weighted consumption (bytes/µs) — kept in sync by the
        #: solver so the ``load`` property is O(1)
        self._load = 0.0
        #: running weight sum over active flows — the progressive filler's
        #: starting ``wsum`` without an O(flows) rebuild
        self._wsum = 0.0
        # per-fill scratch state, validity tagged by epoch counters
        self._fill_slack = 0.0
        self._fill_wsum = 0.0
        self._fill_epoch = 0
        self._seen_epoch = 0

    def set_capacity(self, capacity: float) -> None:
        """Reconfigure capacity; re-solves the affected component immediately.

        Used by the memory-system model when the cache working-set regime
        changes between collective invocations.
        """
        if not capacity > 0:
            raise ValueError(f"resource {self.name!r}: capacity must be > 0")
        self.integrate(self.network.engine.now)
        self.capacity = float(capacity)
        self.network._resolve_component_of_resources([self])

    @property
    def load(self) -> float:
        """Current total weighted consumption (bytes/µs); O(1)."""
        if self.network._debug:
            fresh = sum(f.rate * f.usage[self] for f in self.flows)
            if abs(fresh - self._load) > 1e-9 * max(1.0, abs(fresh)):
                raise SimulationError(
                    f"resource {self.name!r}: load accumulator drifted "
                    f"({self._load} vs recomputed {fresh})"
                )
        return self._load

    def integrate(self, now: float) -> None:
        """Fold the current load into the busy-time integral up to ``now``.

        Called by the network before any event that changes this resource's
        load (flow rate changes, arrivals, departures, capacity changes).
        """
        if now > self._busy_last:
            self._busy_acc += self._load * (now - self._busy_last)
            self._busy_last = now

    def busy_integral(self, now: float) -> float:
        """Total raw bytes served through this resource up to ``now``."""
        return self._busy_acc + self._load * max(0.0, now - self._busy_last)

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Mean load / capacity over ``[since, now]`` (0 when empty window).

        Note ``since`` must be an instant at which the busy integral was
        previously sampled as 0 or the caller tracks the baseline itself;
        the common use is the whole run, ``since=0``.
        """
        window = now - since
        if window <= 0:
            return 0.0
        return self.busy_integral(now) / (self.capacity * window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowResource {self.name} cap={self.capacity} n={len(self.flows)}>"


class Flow(Waitable):
    """One in-flight transfer across a set of resources.

    A flow is itself a waitable: a process may ``yield`` the flow returned by
    :meth:`FlowNetwork.transfer` and resumes when the transfer completes.
    """

    __slots__ = (
        "name",
        "nbytes",
        "remaining",
        "cap",
        "usage",
        "usage_items",
        "rate",
        "event",
        "last_update",
        "generation",
        "finished",
        "component",
        "seq",
        "_ridx",
        "_w",
    )

    def __init__(
        self,
        name: str,
        nbytes: float,
        cap: float,
        usage: Dict[FlowResource, float],
        event: Event,
        now: float,
        seq: int = 0,
    ):
        self.seq = seq
        self.name = name
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.cap = cap
        self.usage = usage
        #: frozen (resource, weight) pairs — ``usage`` never changes after
        #: construction, so the hot loops iterate this list instead of
        #: re-materialising dict views
        self.usage_items = list(usage.items())
        self.rate = 0.0
        self.event = event
        self.last_update = now
        self.generation = 0
        self.finished = False
        self.component: Optional["_Component"] = None
        #: lazily built flat views of ``usage`` (resource indices, weights)
        #: for the vectorized fill kernel; usage is frozen, so these never
        #: need invalidation
        self._ridx = None
        self._w = None

    def subscribe(self, process) -> None:
        self.event.subscribe(process)

    def advance(self, now: float) -> None:
        """Progress ``remaining`` using the rate held since ``last_update``."""
        dt = now - self.last_update
        if dt > 0:
            self.remaining -= self.rate * dt
        self.last_update = now


class _Component:
    """One connected component of the flow/resource sharing graph.

    Nodes of a union-find forest: ``parent`` is None on roots; only roots
    own a ``flows`` dict (insertion-ordered member set).  ``dirty`` marks a
    root whose membership may be an over-approximation (a multi-resource
    flow finished, so the component may have split); a dirty root is
    re-carved by traversal before its next resolve.
    """

    __slots__ = ("flows", "parent", "dirty")

    def __init__(self):
        self.flows: Optional[Dict[Flow, None]] = {}
        self.parent: Optional["_Component"] = None
        self.dirty = False


#: canonical solver ordering — creation order (C-level getter, hot sort key)
_flow_seq_key = attrgetter("seq")


def _find(component: _Component) -> _Component:
    """Union-find root lookup with path compression."""
    root = component
    while root.parent is not None:
        root = root.parent
    while component.parent is not None:
        component.parent, component = root, component.parent
    return root


class FlowNetwork:
    """Container of resources and flows with max-min fair rate allocation.

    ``incremental`` selects the component-cache fast path (default) or the
    traversal-per-perturbation reference path; ``None`` reads the
    ``REPRO_SIM_SLOWPATH`` environment variable.  ``debug`` (or
    ``REPRO_SIM_DEBUG=1``) cross-checks the O(1) accumulators against
    from-scratch recomputation at every solve.
    """

    def __init__(
        self,
        engine: Engine,
        incremental: Optional[bool] = None,
        debug: Optional[bool] = None,
        vectorized: Optional[bool] = None,
    ):
        self.engine = engine
        self.resources: List[FlowResource] = []
        #: cumulative payload bytes completed (for utilisation reporting)
        self.bytes_completed = 0.0
        self.flows_completed = 0
        self.config: SolverConfig
        self.configure(incremental, debug, vectorized)
        self._fill_epoch = 0
        self._seen_epoch = 0
        self._flow_seq = 0

    def configure(
        self,
        incremental: Optional[bool] = None,
        debug: Optional[bool] = None,
        vectorized: Optional[bool] = None,
    ) -> SolverConfig:
        """(Re-)resolve solver modes; explicit arguments pin, ``None`` tracks
        the environment (see :mod:`repro.sim.config`).

        Safe to call between runs: switching *to* the incremental path with
        flows in flight rebuilds the component cache from the sharing graph,
        so the cache is exact regardless of which path built the state.
        """
        was_incremental = getattr(self, "incremental", None)
        self.config = resolve_solver_config(
            incremental, debug, vectorized, base=getattr(self, "config", None)
        )
        self.incremental = self.config.incremental
        self._debug = self.config.debug
        self.vectorized = self.config.vectorized and _np is not None
        if self.incremental and was_incremental is False:
            seeds = [f for r in self.resources for f in r.flows]
            if seeds:
                self._recarve(seeds)
        return self.config

    def refresh_config(self) -> SolverConfig:
        """Re-read unpinned solver modes from the environment."""
        return self.configure()

    @property
    def solver_mode(self) -> str:
        """The effective solver label: slowpath / incremental / vectorized."""
        if not self.incremental:
            return "slowpath"
        return "vectorized" if self.vectorized else "incremental"

    # -- construction ---------------------------------------------------
    def add_resource(self, name: str, capacity: float) -> FlowResource:
        """Register a new resource (port, engine, or link)."""
        resource = FlowResource(self, name, capacity, index=len(self.resources))
        self.resources.append(resource)
        return resource

    # -- flows ------------------------------------------------------------
    def transfer(
        self,
        usage: Dict[FlowResource, float],
        nbytes: float,
        cap: Optional[float] = None,
        name: str = "flow",
    ) -> "Flow":
        """Start a transfer; returns the (waitable) flow.

        ``usage`` maps each consumed resource to its weight (raw bytes moved
        on that resource per payload byte).  ``cap`` optionally limits the
        flow's payload rate.  A flow must be constrained by *something*:
        either a cap or at least one resource.  Zero-byte transfers complete
        immediately.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        event = Event(self.engine)
        if nbytes == 0:
            flow = Flow("null-" + name, 0.0, math.inf, {}, event, self.engine.now)
            flow.finished = True
            event.trigger(self.engine.now)
            return flow
        for resource, weight in usage.items():
            if weight <= 0:
                raise ValueError(
                    f"flow {name!r}: weight on {resource.name!r} must be > 0"
                )
        flow_cap = float(cap) if cap is not None else math.inf
        if flow_cap is math.inf and not usage:
            raise SimulationError(f"flow {name!r} is unconstrained")
        self._flow_seq += 1
        flow = Flow(
            name, nbytes, flow_cap, dict(usage), event, self.engine.now,
            seq=self._flow_seq,
        )
        for resource, weight in flow.usage.items():
            resource.flows.add(flow)
            resource._wsum += weight
        if self.incremental:
            self._resolve(self._attach(flow))
        else:
            self._resolve(self._component([flow]))
        if self.engine.trace_enabled:
            self.engine.trace(f"flow+ {name} {nbytes:.0f}B rate={flow.rate:.1f}")
        return flow

    # -- component solving --------------------------------------------------
    def _component(self, seed_flows: Iterable[Flow]) -> List[Flow]:
        """All flows transitively sharing a resource with the seeds.

        Reference traversal, used by the slow path on every perturbation and
        by the fast path only to re-carve dirty (possibly split) components.
        """
        seen: Set[Flow] = set()
        stack: List[Flow] = [f for f in seed_flows if not f.finished]
        seen.update(stack)
        visited_resources: Set[FlowResource] = set()
        while stack:
            flow = stack.pop()
            for resource in flow.usage:
                if resource in visited_resources:
                    continue
                visited_resources.add(resource)
                for other in resource.flows:
                    if other not in seen and not other.finished:
                        seen.add(other)
                        stack.append(other)
        return list(seen)

    def _attach(self, flow: Flow) -> List[Flow]:
        """Insert a new flow into the component cache; returns its component.

        Unions the (root) components of the flow's resources; if any of them
        is dirty the true component is re-carved by traversal, so the list
        handed to the solver is always exact.
        """
        roots: List[_Component] = []
        for resource in flow.usage:
            entry = resource.component
            if entry is not None:
                root = _find(entry)
                if root not in roots:
                    roots.append(root)
        if not roots:
            root = _Component()
        elif len(roots) == 1:
            root = roots[0]
        else:
            root = max(roots, key=lambda c: len(c.flows))
            for other in roots:
                if other is root:
                    continue
                root.flows.update(other.flows)
                root.dirty = root.dirty or other.dirty
                other.parent = root
                other.flows = None
        root.flows[flow] = None
        flow.component = root
        for resource in flow.usage:
            resource.component = root
        if root.dirty:
            return self._recarve([flow])
        return list(root.flows)

    def _recarve(self, seeds: Iterable[Flow]) -> List[Flow]:
        """Rebuild exact components for the seeds' region of a dirty root.

        Traverses from each seed, carving a fresh clean component per
        connected region and detaching its members from their stale roots.
        Returns the union of the carved components (the exact set the
        reference path would resolve for these seeds).
        """
        group: List[Flow] = []
        seen: Set[Flow] = set()
        for seed in seeds:
            if seed.finished or seed in seen:
                continue
            component = _Component()
            stack = [seed]
            seen.add(seed)
            visited_resources: Set[FlowResource] = set()
            while stack:
                flow = stack.pop()
                old = flow.component
                if old is not None:
                    old_root = _find(old)
                    if old_root.flows is not None:
                        old_root.flows.pop(flow, None)
                component.flows[flow] = None
                flow.component = component
                group.append(flow)
                for resource in flow.usage:
                    if resource in visited_resources:
                        continue
                    visited_resources.add(resource)
                    resource.component = component
                    for other in resource.flows:
                        if other not in seen and not other.finished:
                            seen.add(other)
                            stack.append(other)
        return group

    def _resolve_component_of_resources(
        self, resources: Iterable[FlowResource]
    ) -> None:
        """Re-solve every flow (transitively) affected by these resources."""
        if not self.incremental:
            seeds: List[Flow] = []
            for resource in resources:
                seeds.extend(resource.flows)
            if seeds:
                self._resolve(self._component(seeds))
            return
        roots: List[_Component] = []
        dirty = False
        for resource in resources:
            if resource.flows and resource.component is not None:
                root = _find(resource.component)
                if root not in roots:
                    roots.append(root)
                    dirty = dirty or root.dirty
        if not roots:
            return
        if dirty:
            seeds = []
            for resource in resources:
                seeds.extend(resource.flows)
            self._resolve(self._recarve(seeds))
        elif len(roots) == 1:
            self._resolve(list(roots[0].flows))
        else:
            group: List[Flow] = []
            for root in roots:
                group.extend(root.flows)
            self._resolve(group)

    def _resolve(self, flows: List[Flow]) -> None:
        """Advance, re-solve rates (progressive filling), reschedule.

        Only flows whose rate actually changed get a fresh deadline; an
        unchanged flow's previously scheduled completion stays valid, which
        keeps the event heap small when large components re-solve often.

        Flows are processed in creation order — a canonical order shared by
        the fast and reference paths, so event tie-breaking (and therefore
        the whole simulation) is independent of how the component was
        discovered and of interpreter memory layout.
        """
        flows.sort(key=_flow_seq_key)
        now = self.engine.now
        epoch = self._seen_epoch = self._seen_epoch + 1
        old_rates: List[float] = []
        for flow in flows:
            if now > flow.last_update:
                flow.remaining -= flow.rate * (now - flow.last_update)
            flow.last_update = now
            old_rates.append(flow.rate)
            for resource in flow.usage:
                if resource._seen_epoch != epoch:
                    resource._seen_epoch = epoch
                    # Fold the pre-change load into the busy integral
                    # (resource.integrate, inlined for the hot path).
                    if now > resource._busy_last:
                        resource._busy_acc += resource._load * (
                            now - resource._busy_last
                        )
                        resource._busy_last = now
        self._progressive_fill(flows)
        for index, flow in enumerate(flows):
            old = old_rates[index]
            # Tolerant comparison: re-solving a component whose membership
            # changed elsewhere can produce meaningless last-bit jitter.
            tol = flow.rate if flow.rate > old else old
            if tol < 1.0:
                tol = 1.0
            delta = flow.rate - old
            if (
                delta > 1e-12 * tol
                or -delta > 1e-12 * tol
                or flow.remaining <= _EPS_BYTES
            ):
                self._schedule_completion(flow)

    def _progressive_fill(self, flows: List[Flow]) -> None:
        """Weighted max-min fair allocation for one component.

        Level-based progressive filling: all unfrozen flows share a common
        rate *level* that rises until either a flow's cap or a resource's
        capacity binds; bound flows freeze at the current level and the
        remainder keeps rising.  Per round this costs O(resources + active
        flows); the number of rounds is the number of distinct binding
        events, which is small in practice.

        Two kernels implement the identical algorithm: the scalar loop
        (:meth:`_fill_scalar`) and a flat-array numpy kernel
        (:meth:`_fill_vector`) dispatched for components of at least
        ``_VECTOR_MIN_FLOWS`` flows.  Every array operation maps 1:1 onto a
        scalar IEEE operation in the same order, so the kernels are
        bit-identical — debug mode runs both on *every* component and
        asserts exact equality of all rates and loads.
        """
        if not flows:
            return
        epoch = self._fill_epoch = self._fill_epoch + 1
        resources: List[FlowResource] = []
        for flow in flows:
            flow.rate = 0.0
            for r in flow.usage:
                if r._fill_epoch != epoch:
                    r._fill_epoch = epoch
                    r._fill_slack = r.capacity
                    r._fill_wsum = r._wsum
                    resources.append(r)
        if self._debug:
            self._check_accumulators(flows, resources)
            if self.vectorized:
                # Dual-run cross-check on every component (no size gate):
                # the vector kernel is pure, so run it first, let the
                # scalar kernel write the canonical state, then demand
                # bit-exact agreement.
                rates, loads = self._fill_vector(flows, resources)
                self._fill_scalar(flows, resources)
                for index, flow in enumerate(flows):
                    if flow.rate != rates[index]:
                        raise SimulationError(
                            f"vectorized fill diverged on flow "
                            f"{flow.name!r}: scalar {flow.rate!r} "
                            f"vs vector {rates[index]!r}"
                        )
                for index, r in enumerate(resources):
                    if r._load != loads[index]:
                        raise SimulationError(
                            f"vectorized fill diverged on resource "
                            f"{r.name!r} load: scalar {r._load!r} "
                            f"vs vector {loads[index]!r}"
                        )
                return
            self._fill_scalar(flows, resources)
            return
        if self.vectorized and len(flows) >= _VECTOR_MIN_FLOWS:
            rates, loads = self._fill_vector(flows, resources)
            for flow, rate in zip(flows, rates):
                flow.rate = rate
            for r, load in zip(resources, loads):
                r._load = load
            return
        self._fill_scalar(flows, resources)

    def _fill_scalar(
        self, flows: List[Flow], resources: List[FlowResource]
    ) -> None:
        """Scalar progressive-filling kernel (the reference implementation).

        Expects per-fill scratch (``_fill_slack``/``_fill_wsum``) already
        initialised by :meth:`_progressive_fill`.
        """
        active = list(flows)
        live = resources  # resources whose active weight sum is still > 0
        level = 0.0
        while active:
            # One pass: find the binding resource AND compact resources
            # whose weight sum drained (their flows all froze) out of the
            # next round's scans.  A drained resource can never re-arm —
            # frozen flows stay frozen — so dropping it is exact.
            alpha = math.inf
            next_live: List[FlowResource] = []
            for r in live:
                w = r._fill_wsum
                if w > _EPS_RATE:
                    next_live.append(r)
                    a = r._fill_slack / w
                    if a < alpha:
                        alpha = a
            live = next_live
            min_cap = math.inf
            for flow in active:
                if flow.cap < min_cap:
                    min_cap = flow.cap
            d = min_cap - level
            if d < alpha:
                alpha = d
            if alpha is math.inf:
                names = ", ".join(f.name for f in active[:4])
                raise SimulationError(
                    f"unconstrained flows in component: {names}"
                )
            if alpha < 0.0:
                alpha = 0.0
            level += alpha
            for r in live:
                r._fill_slack -= r._fill_wsum * alpha
            still: List[Flow] = []
            frozen: List[Flow] = []
            for flow in active:
                if level >= flow.cap - _EPS_RATE:
                    flow.rate = flow.cap
                    frozen.append(flow)
                    continue
                for r in flow.usage:
                    if r._fill_slack <= _EPS_RATE:
                        flow.rate = level
                        frozen.append(flow)
                        break
                else:
                    still.append(flow)
            if not frozen:
                raise SimulationError(
                    "progressive filling failed to converge (numerical issue)"
                )
            for flow in frozen:
                for r, w in flow.usage_items:
                    r._fill_wsum -= w
            active = still
        # Refresh the O(1) load accumulators from the just-computed rates.
        for r in resources:
            r._load = 0.0
        for flow in flows:
            rate = flow.rate
            for r, w in flow.usage_items:
                r._load += rate * w

    def _fill_vector(
        self, flows: List[Flow], resources: List[FlowResource]
    ) -> Tuple[List[float], List[float]]:
        """Vectorized progressive-filling kernel over flat numpy arrays.

        Pure: reads capacities/weights/caps, returns ``(rates, loads)`` as
        Python-float lists without touching flow or resource state — the
        dispatcher writes results back (or, in debug mode, compares them
        against the scalar kernel's).

        Bit-exactness with :meth:`_fill_scalar` is by construction, not by
        tolerance: every numpy operation below performs the *same* IEEE-754
        double operations in the *same* order as the scalar loop —
        elementwise divide/multiply/subtract map 1:1, ``np.min`` is exact
        regardless of reduction order, saturation detection is a boolean
        OR, and the two scatter-accumulations (``np.add.at``) process edges
        in flow-major creation order, matching the scalar iteration, with
        ``x + (-w)`` defined by IEEE to equal ``x - w`` exactly.
        """
        nf = len(flows)
        nr = len(resources)
        # Flat flow-major edge lists (flow._ridx/._w are cached per flow;
        # usage is frozen after construction, so the caches never
        # invalidate).  Plain-list extends + one np.array() beat
        # concatenating hundreds of tiny per-flow arrays.
        flat_r: List[int] = []
        flat_w: List[float] = []
        counts: List[int] = []
        extend_r = flat_r.extend
        extend_w = flat_w.extend
        append_c = counts.append
        for flow in flows:
            ridx = flow._ridx
            if ridx is None:
                ridx = flow._ridx = [r.index for r in flow.usage]
                flow._w = list(flow.usage.values())
            extend_r(ridx)
            extend_w(flow._w)
            append_c(len(ridx))
        if nr and flat_r:
            edge_res_g = _np.array(flat_r, dtype=_np.intp)
            edge_w = _np.array(flat_w, dtype=_np.float64)
            edge_flow = _np.repeat(
                _np.arange(nf, dtype=_np.intp),
                _np.array(counts, dtype=_np.intp),
            )
            # Global resource indices -> positions in the local component
            # arrays, via a scatter LUT (resource.index is its position in
            # network.resources, unique by construction).
            gidx = _np.fromiter(
                (r.index for r in resources), dtype=_np.intp, count=nr
            )
            lut = _np.empty(int(gidx.max()) + 1, dtype=_np.intp)
            lut[gidx] = _np.arange(nr, dtype=_np.intp)
            edge_res = lut[edge_res_g]
        else:
            edge_res = _np.empty(0, dtype=_np.intp)
            edge_w = _np.empty(0, dtype=_np.float64)
            edge_flow = _np.empty(0, dtype=_np.intp)
        slack = _np.fromiter(
            (r.capacity for r in resources), dtype=_np.float64, count=nr
        )
        wsum = _np.fromiter(
            (r._wsum for r in resources), dtype=_np.float64, count=nr
        )
        caps = _np.fromiter(
            (f.cap for f in flows), dtype=_np.float64, count=nf
        )
        capse = caps - _EPS_RATE
        rate = _np.zeros(nf, dtype=_np.float64)
        active = _np.ones(nf, dtype=bool)
        inf = math.inf
        level = 0.0
        while True:
            live = wsum > _EPS_RATE
            # Same per-element IEEE divide as the scalar loop; dead
            # resources read as +inf and so never bind.
            ratio = _np.divide(
                slack, wsum, out=_np.full(nr, inf), where=live
            )
            alpha = float(ratio.min()) if nr else inf
            min_cap = float(
                _np.minimum.reduce(caps, where=active, initial=inf)
            )
            d = min_cap - level
            if d < alpha:
                alpha = d
            if math.isinf(alpha):
                names = ", ".join(
                    flows[i].name for i in _np.flatnonzero(active)[:4]
                )
                raise SimulationError(
                    f"unconstrained flows in component: {names}"
                )
            if alpha < 0.0:
                alpha = 0.0
            level += alpha
            _np.subtract(slack, wsum * alpha, out=slack, where=live)
            cap_frozen = active & (level >= capse)
            if edge_res.size:
                sat_edges = (slack <= _EPS_RATE)[edge_res]
                flow_sat = (
                    _np.bincount(edge_flow[sat_edges], minlength=nf) > 0
                )
                sat_frozen = active & ~cap_frozen & flow_sat
            else:
                sat_frozen = _np.zeros(nf, dtype=bool)
            frozen = cap_frozen | sat_frozen
            if not frozen.any():
                raise SimulationError(
                    "progressive filling failed to converge (numerical issue)"
                )
            rate[cap_frozen] = caps[cap_frozen]
            rate[sat_frozen] = level
            if edge_res.size:
                fe = frozen[edge_flow]
                _np.add.at(wsum, edge_res[fe], -edge_w[fe])
            active &= ~frozen
            if not active.any():
                break
        loads = _np.zeros(nr, dtype=_np.float64)
        if edge_res.size:
            _np.add.at(loads, edge_res, rate[edge_flow] * edge_w)
        return rate.tolist(), loads.tolist()

    def _check_accumulators(
        self, flows: List[Flow], resources: List[FlowResource]
    ) -> None:
        """Debug-mode guard: running accumulators match a fresh recompute."""
        for r in resources:
            fresh_wsum = sum(
                f.usage[r] for f in r.flows if not f.finished
            )
            if abs(fresh_wsum - r._wsum) > 1e-9 * max(1.0, abs(fresh_wsum)):
                raise SimulationError(
                    f"resource {r.name!r}: weight-sum accumulator drifted "
                    f"({r._wsum} vs recomputed {fresh_wsum})"
                )
        if self.incremental:
            exact = set(self._component(flows))
            if exact != set(flows):
                raise SimulationError(
                    "component cache out of sync with the sharing graph: "
                    f"cached {len(flows)} flows, exact {len(exact)}"
                )

    def _schedule_completion(self, flow: Flow) -> None:
        flow.generation += 1
        if flow.finished:
            return
        if flow.remaining <= _EPS_BYTES:
            self._finish(flow)
            return
        if flow.rate <= _EPS_RATE:
            raise SimulationError(f"flow {flow.name!r} starved (rate=0)")
        eta = flow.remaining / flow.rate
        self.engine.call_after(eta, self._on_deadline, (flow, flow.generation))

    def _on_deadline(self, token: Tuple[Flow, int]) -> None:
        flow, generation = token
        if flow.finished or generation != flow.generation:
            return  # stale: rates changed since this deadline was set
        flow.advance(self.engine.now)
        if flow.remaining <= _EPS_BYTES:
            self._finish(flow)
        else:
            # Numerical slack; re-arm.
            self._schedule_completion(flow)

    def _finish(self, flow: Flow) -> None:
        flow.finished = True
        flow.remaining = 0.0
        resources = list(flow.usage.keys())
        now = self.engine.now
        rate = flow.rate
        for resource, weight in flow.usage_items:
            resource.integrate(now)
            resource.flows.discard(flow)
            resource._wsum -= weight
            if resource.flows:
                resource._load -= rate * weight
            else:
                # Clamp accumulator drift on an idle resource to exactly 0.
                resource._load = 0.0
                resource._wsum = 0.0
                resource.component = None
        if self.incremental and flow.component is not None:
            root = _find(flow.component)
            if root.flows is not None:
                root.flows.pop(flow, None)
            flow.component = None
            if len(resources) > 1:
                # The flow may have been an articulation point: its
                # component can split, so membership must be re-carved
                # before the next resolve.
                root.dirty = True
        self.bytes_completed += flow.nbytes
        self.flows_completed += 1
        if self.engine.trace_enabled:
            self.engine.trace(f"flow- {flow.name}")
        flow.event.trigger(self.engine.now)
        # Freed capacity speeds up neighbours: re-solve their component.
        self._resolve_component_of_resources(resources)
