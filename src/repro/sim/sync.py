"""Synchronisation primitives built on the DES kernel.

``SimBarrier`` models ``MPI_Barrier`` inside benchmark loops; ``SimCounter``
is the waitable monotonic counter that both the hardware DMA byte counters
and the paper's *software message counters* are built on.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.engine import Engine
from repro.sim.events import Event


class SimBarrier:
    """A cyclic barrier for exactly ``parties`` simulation processes.

    Each participant does ``yield barrier.wait()``.  When the last of the
    current generation arrives, all parked participants resume, and the
    barrier resets for the next generation.  An optional ``latency`` models
    the cost of the synchronisation operation itself (e.g. BG/P's global
    interrupt network completes a barrier in a few microseconds).
    """

    def __init__(self, engine: Engine, parties: int, latency: float = 0.0):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.engine = engine
        self.parties = parties
        self.latency = latency
        self._arrived = 0
        self._release_event = Event(engine)
        self.generation = 0

    def wait(self) -> Event:
        """Return the event that fires when the current generation completes."""
        self._arrived += 1
        event = self._release_event
        if self._arrived == self.parties:
            self._arrived = 0
            self.generation += 1
            release, self._release_event = self._release_event, Event(self.engine)
            if self.latency > 0:
                self.engine.call_after(self.latency, release.trigger, None)
            else:
                release.trigger(None)
        return event


class SimCounter:
    """A monotonically non-decreasing waitable counter.

    The paper's message counter tracks "total bytes written into the buffer";
    consumers poll it and copy newly arrived bytes.  In the simulator,
    polling is replaced by :meth:`wait_for`, which fires as soon as the value
    reaches a threshold — equivalent timing to a poll loop with a zero-cost
    poll, with explicit poll overhead charged separately by the caller where
    the model requires it.

    ``stall_fn`` (optional) models a transient message-counter stall: it is
    consulted on every publish and returns the extra microseconds watcher
    wake-ups must be deferred (0.0 when healthy).  Already-published values
    remain readable — the stall models the *publisher* core, not readers —
    so :meth:`wait_for` against an already-met threshold still fires
    immediately.  :meth:`repro.hardware.machine.Machine.make_counter` wires
    this to the machine's active-fault registry.
    """

    def __init__(self, engine: Engine, value: float = 0.0, name: str = "counter",
                 stall_fn: Optional[Callable[[], float]] = None):
        self.engine = engine
        self.value = float(value)
        self.name = name
        self._stall_fn = stall_fn
        # (threshold, event), kept sorted lazily.
        self._watchers: List[Tuple[float, Event]] = []

    def add(self, delta: float) -> None:
        """Increase the counter; wakes every watcher whose threshold is met."""
        if delta < 0:
            raise ValueError(f"counter {self.name!r} must not decrease")
        self.value += delta
        tel = self.engine.telemetry
        if tel is not None:
            tel.counter_advance(self.engine.now, self.name, self.value, delta)
        if not self._watchers:
            return
        ready = [(t, e) for (t, e) in self._watchers if self.value >= t]
        if ready:
            self._watchers = [
                (t, e) for (t, e) in self._watchers if self.value < t
            ]
            stall = self._stall_fn() if self._stall_fn is not None else 0.0
            if stall > 0.0:
                for _t, event in ready:
                    self.engine.call_after(stall, event.trigger, self.value)
            else:
                for _t, event in ready:
                    event.trigger(self.value)

    def set_at_least(self, value: float) -> None:
        """Raise the counter to ``value`` if it is currently lower."""
        if value > self.value:
            self.add(value - self.value)

    def wait_for(self, threshold: float) -> Event:
        """Event firing when ``value >= threshold`` (immediately if already)."""
        tel = self.engine.telemetry
        if tel is not None:
            tel.counter_poll(self.engine.now, self.name, self.value, threshold)
        event = Event(self.engine)
        if self.value >= threshold:
            event.trigger(self.value)
        else:
            self._watchers.append((threshold, event))
        return event

    def reset(self, value: float = 0.0) -> None:
        """Reset for reuse (only legal with no outstanding watchers)."""
        if self._watchers:
            raise RuntimeError(
                f"cannot reset counter {self.name!r} with pending watchers"
            )
        self.value = float(value)
