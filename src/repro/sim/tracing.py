"""Chrome-trace export of a simulation run.

Converts an engine's trace log into the Chrome Trace Event Format (the
JSON consumed by ``chrome://tracing`` / Perfetto), with one duration event
per flow, grouped into rows by resource class.  Enable tracing when
constructing the machine's engine and dump after a run::

    engine = Engine(trace=True)
    machine = Machine(torus_dims=(2, 2, 2), engine=engine)
    run_bcast(machine, "torus-shaddr", nbytes="1M")
    write_chrome_trace(engine, "trace.json")

When a :class:`~repro.telemetry.recorder.TelemetryRecorder` is passed
alongside the engine, the document additionally carries

* **per-core role timelines** (pid 2, one row per MPI rank, labelled with
  the rank's paper role — injector / receiver / copier / protocol-core /
  reduce-core) built from the recorder's copy and stall intervals;
* **Perfetto counter tracks** (pid 3, ``"C"`` events) for software-counter
  values, FIFO occupancy, and the working-set bytes against the 8 MB L3.

Flow rows (pid 1) are assigned by registry capability metadata when an
algorithm declares ``trace_rows`` (see
:class:`repro.collectives.registry.AlgorithmInfo`); the historical
substring heuristics remain as the fallback for unregistered flow names.

``flow+`` lines with no matching ``flow-`` by the end of the log (a
truncated or mid-run trace) are *not* dropped: they export as
zero-duration events tagged ``args.incomplete`` and are counted in the
document's ``otherData.incomplete_flows``.

Times are exported in microseconds (the native trace-format unit, which is
also the simulator's).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Engine

#: row (tid) per flow class name declared in registry ``trace_rows``
_ROW_CLASS_TIDS = {
    "fault": 1,
    "dma": 2,
    "network": 3,
    "tree": 4,
    "copy": 5,
    "other": 6,
}

_ROW_NAMES = {
    1: "fault timeline",
    2: "DMA local copies",
    3: "network transfers",
    4: "collective network",
    5: "core copies / staging",
    6: "other flows",
}

#: lazily built (substring, tid) pairs from registry capability metadata
_registry_rows: Optional[List[Tuple[str, int]]] = None


def _registry_row_map() -> List[Tuple[str, int]]:
    """Flow-name substrings declared by registered algorithms.

    Built once per process from every registered algorithm's
    ``trace_rows`` metadata; importing the registry pulls in the family
    modules, so this runs at export time, never inside a simulation.
    """
    global _registry_rows
    if _registry_rows is None:
        rows: List[Tuple[str, int]] = []
        try:
            from repro.collectives.registry import iter_algorithms
            for info in iter_algorithms():
                for substring, row_class in info.trace_rows:
                    tid = _ROW_CLASS_TIDS.get(row_class)
                    if tid is not None:
                        rows.append((substring, tid))
        except Exception:
            # Row assignment must never break trace export; the substring
            # fallback below covers every flow name.
            rows = []
        _registry_rows = rows
    return _registry_rows


def _row_for(flow_name: str) -> int:
    """Stable row (tid) assignment for one flow name.

    Registry-declared substrings win; the historical substring heuristics
    keep classifying names no algorithm has claimed.
    """
    for substring, tid in _registry_row_map():
        if substring in flow_name:
            return tid
    if flow_name.startswith("fault."):
        return 1
    if ".dput" in flow_name or "dma" in flow_name or "gather" in flow_name:
        return 2
    if "lb." in flow_name or "ringsend" in flow_name or flow_name.startswith(
        ("s.", "g.", "ag.")
    ):
        return 3
    if "tree" in flow_name:
        return 4
    if "shaddr" in flow_name or "fifo" in flow_name or "copy" in flow_name:
        return 5
    return 6


def collect_flow_events(engine: Engine) -> List[dict]:
    """Pair ``flow+``/``flow-`` trace lines into duration events.

    Unmatched ``flow+`` entries (trace truncated mid-flow) become
    zero-duration events tagged ``args["incomplete"]`` instead of being
    silently dropped; :func:`incomplete_flow_count` totals them.
    """
    open_flows: Dict[str, List[float]] = {}
    events: List[dict] = []
    for timestamp, message in engine.trace_log:
        if message.startswith("flow+ "):
            name = message.split()[1]
            open_flows.setdefault(name, []).append(timestamp)
        elif message.startswith("flow- "):
            name = message.split()[1]
            starts = open_flows.get(name)
            if starts:
                start = starts.pop(0)
                events.append(
                    {
                        "name": name,
                        "ph": "X",
                        "ts": start,
                        "dur": max(timestamp - start, 0.001),
                        "pid": 1,
                        "tid": _row_for(name),
                        "args": {},
                    }
                )
    for name, starts in open_flows.items():
        for start in starts:
            events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": start,
                    "dur": 0.0,
                    "pid": 1,
                    "tid": _row_for(name),
                    "args": {"incomplete": True},
                }
            )
    return events


def incomplete_flow_count(events: List[dict]) -> int:
    """Number of truncated (never-completed) flows in an event list."""
    return sum(1 for e in events if e.get("args", {}).get("incomplete"))


def telemetry_events(telemetry, l3_bytes: Optional[int] = None) -> List[dict]:
    """Trace events for a :class:`TelemetryRecorder`'s observations.

    Produces the role timelines (pid 2, one row per rank) from copy/stall
    intervals, plus Perfetto counter tracks (pid 3, ``"C"`` events) for
    counter values, FIFO occupancy, and working-set bytes (annotated with
    ``l3_bytes`` — BG/P's 8 MB — when provided).
    """
    events: List[dict] = []
    # Row labels: "n3.r13 copier" — node, rank, paper role.
    for rank, role in sorted(telemetry.roles.items()):
        node = telemetry.role_nodes.get(rank)
        label = f"n{node}.r{rank} {role}" if node is not None else f"r{rank} {role}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 2,
                "tid": rank,
                "args": {"name": label},
            }
        )
    for start, end, rank, _node, role, stage, nbytes in telemetry.copy_events:
        events.append(
            {
                "name": stage,
                "ph": "X",
                "ts": start,
                "dur": max(end - start, 0.001),
                "pid": 2,
                "tid": rank,
                "args": {"bytes": nbytes, "role": role},
            }
        )
    for start, end, rank, node, kind in telemetry.stall_events:
        if rank is None:
            continue
        events.append(
            {
                "name": f"stall:{kind}",
                "ph": "X",
                "ts": start,
                "dur": max(end - start, 0.001),
                "pid": 2,
                "tid": rank,
                "args": {"kind": kind},
            }
        )
    # Counter tracks ("C" events): the value series of each software
    # counter, FIFO occupancy, and working-set vs the L3.
    for ts, name, kind, value, _extra in telemetry.counter_events:
        if kind == "advance":
            events.append(
                {
                    "name": f"counter {name}",
                    "ph": "C",
                    "ts": ts,
                    "pid": 3,
                    "args": {"value": value},
                }
            )
    for ts, name, _node, kind, _seq, flag in telemetry.fifo_events:
        if kind == "depth":
            events.append(
                {
                    "name": f"fifo {name} occupancy",
                    "ph": "C",
                    "ts": ts,
                    "pid": 3,
                    "args": {"elements": flag},
                }
            )
    for ts, nbytes in telemetry.working_set_events:
        args = {"bytes": nbytes}
        if l3_bytes is not None:
            args["l3_bytes"] = l3_bytes
        events.append(
            {"name": "working-set", "ph": "C", "ts": ts, "pid": 3,
             "args": args}
        )
    return events


def chrome_trace(engine: Engine, telemetry=None,
                 l3_bytes: Optional[int] = None) -> dict:
    """Build the full Chrome Trace Format document.

    ``telemetry`` (a :class:`TelemetryRecorder`) adds the role-timeline
    rows and counter tracks; ``l3_bytes`` annotates the working-set track
    with the cache capacity it competes against.
    """
    events = collect_flow_events(engine)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in _ROW_NAMES.items()
    ]
    metadata.append(
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "flows"}}
    )
    extra: List[dict] = []
    if telemetry is not None:
        extra = telemetry_events(telemetry, l3_bytes=l3_bytes)
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": 2,
             "args": {"name": "core roles"}}
        )
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": 3,
             "args": {"name": "counters"}}
        )
    return {
        "traceEvents": metadata + events + extra,
        "displayTimeUnit": "ms",
        "otherData": {"incomplete_flows": incomplete_flow_count(events)},
    }


def write_chrome_trace(engine: Engine, path: str, telemetry=None,
                       l3_bytes: Optional[int] = None) -> int:
    """Write the trace JSON; returns the number of duration events."""
    document = chrome_trace(engine, telemetry=telemetry, l3_bytes=l3_bytes)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return sum(1 for e in document["traceEvents"] if e.get("ph") == "X")
