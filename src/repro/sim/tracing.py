"""Chrome-trace export of a simulation run.

Converts an engine's trace log into the Chrome Trace Event Format (the
JSON consumed by ``chrome://tracing`` / Perfetto), with one duration event
per flow, grouped into rows by resource class.  Enable tracing when
constructing the machine's engine and dump after a run::

    engine = Engine(trace=True)
    machine = Machine(torus_dims=(2, 2, 2), engine=engine)
    run_bcast(machine, "torus-shaddr", nbytes="1M")
    write_chrome_trace(engine, "trace.json")

Times are exported in microseconds (the native trace-format unit, which is
also the simulator's).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.sim.engine import Engine


def collect_flow_events(engine: Engine) -> List[dict]:
    """Pair ``flow+``/``flow-`` trace lines into duration events."""
    open_flows: Dict[str, List[float]] = {}
    events: List[dict] = []
    for timestamp, message in engine.trace_log:
        if message.startswith("flow+ "):
            name = message.split()[1]
            open_flows.setdefault(name, []).append(timestamp)
        elif message.startswith("flow- "):
            name = message.split()[1]
            starts = open_flows.get(name)
            if starts:
                start = starts.pop(0)
                events.append(
                    {
                        "name": name,
                        "ph": "X",
                        "ts": start,
                        "dur": max(timestamp - start, 0.001),
                        "pid": 1,
                        "tid": _row_for(name),
                        "args": {},
                    }
                )
    return events


def _row_for(flow_name: str) -> int:
    """Stable row (tid) assignment by flow-name class."""
    if flow_name.startswith("fault."):
        return 1
    if ".dput" in flow_name or "dma" in flow_name or "gather" in flow_name:
        return 2
    if "lb." in flow_name or "ringsend" in flow_name or flow_name.startswith(
        ("s.", "g.", "ag.")
    ):
        return 3
    if "tree" in flow_name:
        return 4
    if "shaddr" in flow_name or "fifo" in flow_name or "copy" in flow_name:
        return 5
    return 6


_ROW_NAMES = {
    1: "fault timeline",
    2: "DMA local copies",
    3: "network transfers",
    4: "collective network",
    5: "core copies / staging",
    6: "other flows",
}


def chrome_trace(engine: Engine) -> dict:
    """Build the full Chrome Trace Format document."""
    events = collect_flow_events(engine)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in _ROW_NAMES.items()
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(engine: Engine, path: str) -> int:
    """Write the trace JSON; returns the number of duration events."""
    document = chrome_trace(engine)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return sum(1 for e in document["traceEvents"] if e.get("ph") == "X")
