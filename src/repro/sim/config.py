"""Solver-mode configuration, resolved at call time.

The flow network has four solver altitudes (see ``docs/performance.md``):
the from-scratch **reference** traversal, the **incremental**
component-cache fast path, the **vectorized** numpy fill kernel, and the
**analytic** closed-form fast path that skips the DES entirely.  Three
environment variables select between them:

* ``REPRO_SIM_SLOWPATH=1``  — reference traversal instead of incremental;
* ``REPRO_SIM_VECTOR=0``    — scalar fill loop instead of the numpy kernel;
* ``REPRO_SIM_DEBUG=1``     — cross-check accumulators, component caches,
  and the vectorized kernel against from-scratch recomputation on every
  resolve;
* ``REPRO_SIM_ANALYTIC=1``  — opt the measurement harness into the
  analytic steady-state model (:mod:`repro.sim.analytic`).

Historically ``FlowNetwork`` snapshotted the first two at *construction*
(``sim/flownet.py``), so flipping an environment variable between runs
silently did nothing until every machine was rebuilt.  This module is the
one place the variables are read, and it is read at **call time**:
:meth:`repro.sim.flownet.FlowNetwork.configure` re-resolves its modes
through :func:`resolve_solver_config` on demand, remembering which fields
were pinned by explicit arguments (those stay pinned across refreshes)
and which came from the environment (those track it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

#: environment variables, in one place
ENV_SLOWPATH = "REPRO_SIM_SLOWPATH"
ENV_DEBUG = "REPRO_SIM_DEBUG"
ENV_VECTOR = "REPRO_SIM_VECTOR"
ENV_ANALYTIC = "REPRO_SIM_ANALYTIC"


def env_flag(name: str, default: bool) -> bool:
    """Read a boolean environment flag: ``"1"`` is true, ``"0"`` is false.

    Any other value (including unset) yields ``default``, so flags keep
    their documented default instead of tripping over stray values.
    """
    value = os.environ.get(name, "")
    if value == "1":
        return True
    if value == "0":
        return False
    return default


@dataclass(frozen=True)
class SolverConfig:
    """Resolved solver modes plus which of them were explicitly pinned.

    ``incremental``/``debug``/``vectorized`` are the effective modes; the
    ``*_pinned`` flags record whether the value came from an explicit
    argument (sticky across :func:`resolve_solver_config` refreshes) or
    from the environment (re-read on every refresh).
    """

    incremental: bool
    debug: bool
    vectorized: bool
    incremental_pinned: bool = False
    debug_pinned: bool = False
    vectorized_pinned: bool = False

    @property
    def mode(self) -> str:
        """The solver mode label recorded in manifests and BENCH entries."""
        if not self.incremental:
            return "slowpath"
        return "vectorized" if self.vectorized else "incremental"


def resolve_solver_config(
    incremental: Optional[bool] = None,
    debug: Optional[bool] = None,
    vectorized: Optional[bool] = None,
    base: Optional[SolverConfig] = None,
) -> SolverConfig:
    """Resolve solver modes from explicit arguments and the environment.

    Explicit (non-``None``) arguments win and become *pinned*.  ``None``
    falls back to a pinned value carried over from ``base`` (a previous
    resolution), else to the environment variable, else to the default
    (incremental on, debug off, vectorized on).
    """

    def pick(arg, pinned_value, env_name, default):
        if arg is not None:
            return bool(arg), True
        if pinned_value is not None:
            return pinned_value, True
        return env_flag(env_name, default), False

    base_inc = base.incremental if base is not None and base.incremental_pinned else None
    base_dbg = base.debug if base is not None and base.debug_pinned else None
    base_vec = base.vectorized if base is not None and base.vectorized_pinned else None
    # REPRO_SIM_SLOWPATH=1 means incremental OFF, hence the inversion.
    slow, inc_pinned = pick(
        None if incremental is None else (not incremental),
        None if base_inc is None else (not base_inc),
        ENV_SLOWPATH, False,
    )
    dbg, dbg_pinned = pick(debug, base_dbg, ENV_DEBUG, False)
    vec, vec_pinned = pick(vectorized, base_vec, ENV_VECTOR, True)
    return SolverConfig(
        incremental=not slow,
        debug=dbg,
        vectorized=vec,
        incremental_pinned=inc_pinned,
        debug_pinned=dbg_pinned,
        vectorized_pinned=vec_pinned,
    )


def analytic_enabled(explicit: Optional[bool] = None) -> bool:
    """Is the analytic steady-state fast path requested?

    Opt-in: an explicit argument wins, else ``REPRO_SIM_ANALYTIC=1``.
    The default is off so every default run still exercises (and stays
    bit-identical to) the DES.
    """
    if explicit is not None:
        return bool(explicit)
    return env_flag(ENV_ANALYTIC, False)
