"""The discrete-event engine and the Process abstraction.

Time is a ``float`` in microseconds.  The engine owns a binary heap of
``(time, seq, callback, value)`` entries; ``seq`` is a global tick that makes
event ordering total and therefore the whole simulation deterministic.

A :class:`Process` wraps a generator.  The generator yields *waitables*
(:mod:`repro.sim.events`); when a waitable fires, the engine ``send``s the
waitable's value back into the generator.  A generator may also ``yield``
another ``Process`` to join it, or ``yield from`` helper sub-generators to
compose behaviour (the idiom the collective algorithms use heavily).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout, Waitable


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class TransientFaultError(RuntimeError):
    """An injected transient fault surfaced at a protocol boundary.

    Raised by fault-aware services (window mapping, deadline checks) when a
    retry budget is exhausted or a collective misses its deadline.  Unlike a
    model bug — which :class:`Process` wraps in :class:`SimulationError` so
    it fails loudly — a transient fault propagates *unwrapped* out of
    :meth:`Engine.run`, letting a resilience layer catch it, discard the
    machine, and fall back to a hardier protocol.
    """


class Process(Waitable):
    """A cooperative simulation process wrapping a generator.

    The process is itself a waitable: yielding a process joins it, resuming
    the waiter with the joined process's return value once it terminates.
    Exceptions raised inside a process propagate out of :meth:`Engine.run`,
    so a bug in a model fails the simulation loudly rather than deadlocking.
    """

    __slots__ = ("engine", "generator", "name", "finished", "result", "_done_event")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "?"):
        self.engine = engine
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self._done_event = Event(engine)

    # -- Waitable protocol: joining ------------------------------------
    def subscribe(self, process: "Process") -> None:
        self._done_event.subscribe(process)

    @property
    def done_event(self) -> Event:
        """Event triggered with the process result upon termination."""
        return self._done_event

    # -- execution ------------------------------------------------------
    def resume(self, value: Any = None) -> None:
        """Advance the generator by one step; called by waitables."""
        if self.finished:
            raise SimulationError(f"process {self.name!r} resumed after finish")
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._done_event.trigger(stop.value)
            return
        except TransientFaultError:
            # Injected faults pass through unwrapped so the resilience
            # layer can distinguish them from genuine model bugs.
            self.finished = True
            raise
        except Exception as exc:  # annotate and re-raise: fail loudly
            self.finished = True
            raise SimulationError(
                f"process {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(target, Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
        target.subscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Engine:
    """The event loop: a virtual clock plus a deterministic event heap."""

    __slots__ = (
        "now", "_heap", "_seq", "_processes", "_prune_at",
        "_running", "trace_enabled", "trace_log", "telemetry",
    )

    def __init__(self, trace: bool = False):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, Any]] = []
        self._seq: int = 0
        self._processes: List[Process] = []
        self._prune_at: int = 256
        self._running = False
        self.trace_enabled = trace
        self.trace_log: List[Tuple[float, str]] = []
        # Optional TelemetryRecorder (repro.telemetry).  Hook sites read this
        # once and skip recording when None; recording never schedules events,
        # so timings are bit-identical whether or not a recorder is attached.
        self.telemetry = None

    # -- scheduling ------------------------------------------------------
    def call_at(self, when: float, callback: Callable, value: Any = None) -> None:
        """Schedule ``callback(value)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, callback, value))

    def call_after(self, delay: float, callback: Callable, value: Any = None) -> None:
        """Schedule ``callback(value)`` after ``delay`` microseconds."""
        self.call_at(self.now + delay, callback, value)

    # -- waitable factories ----------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout waitable; ``yield engine.timeout(dt)``."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a fresh one-shot event."""
        return Event(self)

    # -- processes ---------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "?") -> Process:
        """Create a process from a generator and start it at the current time."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        # Amortized prune of finished processes so long multi-sweep runs
        # (which spawn thousands of short-lived coroutines) keep flat memory.
        if len(self._processes) >= self._prune_at:
            self._processes = [p for p in self._processes if not p.finished]
            self._prune_at = max(256, 2 * len(self._processes))
        # First resume primes the generator (send(None) == next()).
        self.call_at(self.now, process.resume, None)
        return process

    def active_processes(self) -> List[Process]:
        """Processes spawned on this engine that have not yet finished."""
        return [p for p in self._processes if not p.finished]

    # -- running -----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap drains or the clock passes ``until``.

        Returns the final simulation time.  Re-entrant calls are forbidden.
        """
        if self._running:
            raise SimulationError("Engine.run is not re-entrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None:
                # Hot loop: no deadline checks, locals only.
                while heap:
                    when, _seq, callback, value = pop(heap)
                    self.now = when
                    callback(value)
            else:
                while heap:
                    if heap[0][0] > until:
                        self.now = until
                        break
                    when, _seq, callback, value = pop(heap)
                    self.now = when
                    callback(value)
                else:
                    if until > self.now:
                        self.now = until
        finally:
            self._running = False
        return self.now

    def rebase(self, origin: Optional[float] = None) -> float:
        """Shift the clock origin: ``now`` and all pending event times drop
        by ``origin`` (default: the current time), clamped at zero.

        Floating-point event arithmetic depends on the magnitude of the
        clock — ``fl(now + delay)`` rounds differently at ``now=1e4`` than
        at ``now=2e4`` — so two identical workloads started at different
        absolute times can differ in the last ulp.  Rebasing the clock to
        zero at a quiescent instant (the Fig-5 harness does this at every
        iteration barrier) makes repeated workloads run the *exact same*
        arithmetic and therefore produce bit-identical timings.

        Entries scheduled at exactly ``origin`` (e.g. a barrier-release
        batch) shift to exactly ``0.0``; a batch of same-instant callbacks
        keeps its relative (seq) order.  Returns the subtracted origin.
        """
        if origin is None:
            origin = self.now
        if origin == 0.0:
            return 0.0
        heap = self._heap
        for index, (when, seq, callback, value) in enumerate(heap):
            shifted = when - origin
            heap[index] = (
                shifted if shifted > 0.0 else 0.0, seq, callback, value
            )
        heapq.heapify(heap)
        shifted_now = self.now - origin
        self.now = shifted_now if shifted_now > 0.0 else 0.0
        return origin

    def run_until_processes_finish(self, processes: List[Process]) -> float:
        """Run until every listed process has terminated.

        Raises :class:`SimulationError` on deadlock (event heap drained while
        some process is still parked on a waitable that can never fire).
        """
        self.run()
        stuck = [p for p in processes if not p.finished]
        if stuck:
            names = ", ".join(p.name for p in stuck[:8])
            raise SimulationError(
                f"deadlock: {len(stuck)} process(es) never finished: {names}"
            )
        return self.now

    # -- tracing -------------------------------------------------------------
    def trace(self, message: str) -> None:
        """Record a trace line at the current time (no-op unless enabled)."""
        if self.trace_enabled:
            self.trace_log.append((self.now, message))
