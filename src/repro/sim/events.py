"""Waitable primitives for the DES kernel.

A *waitable* is anything a process generator may ``yield``.  The engine calls
:meth:`Waitable.subscribe` with the yielded-from process; the waitable must
later call ``process.resume(value)`` (usually via the engine) exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, Process


class Waitable:
    """Base class for objects a simulation process may ``yield``.

    Declares empty ``__slots__`` so that the per-event hot classes deriving
    from it (``Timeout``, ``Event``, ``Flow``, ``Process``) actually get the
    compact slotted layout their own ``__slots__`` declarations ask for —
    a slotted subclass of a dict-ful base would silently keep the dict.
    """

    __slots__ = ()

    def subscribe(self, process: "Process") -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the yielding process after ``delay`` microseconds.

    A non-positive delay resumes the process at the current time but still
    goes through the event queue, preserving deterministic ordering.
    """

    __slots__ = ("engine", "delay", "value")

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.engine = engine
        self.delay = delay
        self.value = value

    def subscribe(self, process: "Process") -> None:
        self.engine.call_at(
            self.engine.now + self.delay, process.resume, self.value
        )


class Event(Waitable):
    """A one-shot broadcast event.

    Processes that yield an un-triggered event park until :meth:`trigger`
    fires; a process yielding an already-triggered event resumes immediately
    (via the queue) with the stored value.  Triggering twice is an error —
    create a fresh event per occurrence instead.
    """

    __slots__ = ("engine", "_waiters", "_callbacks", "triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._waiters: List["Process"] = []
        self._callbacks: List[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def subscribe(self, process: "Process") -> None:
        if self.triggered:
            self.engine.call_at(self.engine.now, process.resume, self.value)
        else:
            self._waiters.append(process)

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        """Register a plain callback invoked (immediately or later) on trigger."""
        if self.triggered:
            callback(self.value)
        else:
            self._callbacks.append(callback)

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all current and future waiters."""
        if self.triggered:
            raise RuntimeError("Event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        for process in waiters:
            self.engine.call_at(self.engine.now, process.resume, value)
        for callback in callbacks:
            callback(value)


class AnyOf(Waitable):
    """Resume when the first of several events triggers.

    The resumed process receives a ``(index, value)`` tuple identifying which
    event fired first (ties resolved by event order in ``events``).  Note the
    remaining events are *not* cancelled — they are one-shot broadcasts and
    other listeners may still consume them.
    """

    __slots__ = ("engine", "events")

    def __init__(self, engine: "Engine", events: List[Event]):
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self.engine = engine
        self.events = list(events)

    def subscribe(self, process: "Process") -> None:
        fired: dict = {"done": False}

        def make_callback(index: int):
            def callback(value: Any) -> None:
                if not fired["done"]:
                    fired["done"] = True
                    # Defer through the queue so triggers arising deep inside
                    # resource bookkeeping never re-enter process code.
                    self.engine.call_at(
                        self.engine.now, process.resume, (index, value)
                    )

            return callback

        for i, event in enumerate(self.events):
            event.on_trigger(make_callback(i))


class AllOf(Waitable):
    """Resume when every event in the set has triggered.

    The resumed process receives the list of event values in input order.
    """

    __slots__ = ("engine", "events")

    def __init__(self, engine: "Engine", events: List[Event]):
        self.engine = engine
        self.events = list(events)

    def subscribe(self, process: "Process") -> None:
        remaining = {"count": len(self.events)}
        if remaining["count"] == 0:
            self.engine.call_at(self.engine.now, process.resume, [])
            return

        def callback(_value: Any) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                values = [e.value for e in self.events]
                self.engine.call_at(self.engine.now, process.resume, values)

        for event in self.events:
            event.on_trigger(callback)
