"""Closed-form steady-state cost laws for fault-free Fig-5 sweeps.

The Fig-5 harness rebases the clock at every iteration barrier, so on a
healthy machine every warm iteration of a deterministic protocol runs the
exact same float arithmetic and costs the exact same number of
microseconds.  A whole sweep point therefore collapses to two numbers —
the cold (first) iteration and the steady warm iteration — and for the
three headline shared-address protocols those two numbers follow simple
piecewise-affine laws in the message size.  This module evaluates those
laws instead of running the discrete-event simulation, turning an
O(ranks x chunks x iterations) event cascade into two DES *anchor* runs
per (configuration, segment) — memoized — plus arithmetic.

Where the laws come from
------------------------

Each registered law (:class:`~repro.collectives.registry.AlgorithmInfo`
``analytic=``) carves the size axis into segments on which cold and warm
times are affine in one scalar coordinate:

``tree-lattice`` (``tree-shaddr`` broadcast)
    One pipeline chunk (``C = ceil(x / pipeline_width) == 1``): affine in
    ``x``.  Full-chunk lattice (``x`` a multiple of ``pipeline_width``):
    affine in ``C`` separately on the even and the odd sublattice — the
    two-chunk hardware window (``tree_window_chunks``) makes consecutive
    chunk counts alternate between two exact per-chunk increments.
    Multi-chunk sizes with a partial tail chunk mix both regimes and are
    *not* analytic (DES fallback).

``torus-color-lattice`` (``torus-shaddr`` broadcast, six colors)
    With per-color bytes ``pc = x / 6`` and ``m = floor(pc /
    pipeline_width)`` full chunks per color: the ``m == 0`` segment is
    affine in ``x``; each ``m >= 1`` segment is affine in the tail-chunk
    size ``rem = pc - m * pipeline_width`` (anchored exactly at the
    ``rem == 0`` lattice point).

``allreduce-m0`` (``allreduce-torus-shaddr``, three colors)
    Only the single-chunk segment ``floor(8x/3 / pipeline_width) == 0``
    is affine; beyond it the measured per-``m`` increments are irregular
    (the local-reduce/copy overlap shifts), so larger sizes deliberately
    fall back to the DES.

Calibration and validation
--------------------------

Laws are *structural* claims; the coefficients are measured, never
hard-coded.  For each (configuration, memory regime, segment) the module
runs the full DES at two anchor sizes on a fresh machine, fits cold and
warm affinely, then runs a third *held-out probe* size and refuses the
segment (permanently, with a recorded miss reason) unless the fit
reproduces the probe within ``PROBE_RTOL``.  Every prediction served here
is therefore backed by three real simulations of the same configuration.

Anchor runs pin the machine's memory regime to the *target* size's regime
via ``run_collective(working_set_override=...)`` — affinity holds within
a regime, and the pin keeps a small anchor from calibrating L3-regime
coefficients for a DRAM-regime target.  Blended regimes (working set
between ``l3_bytes`` and ``2 * l3_bytes``) calibrate per exact working
set.

The fast path is opt-in (``REPRO_SIM_ANALYTIC=1`` or
``run_collective(analytic=True)``) and refuses to engage whenever the
run could deviate from the fault-free steady-state model — payload
verification, deadlines, telemetry, tracing, armed fault schedules,
live capacity reapply hooks, or non-default parameters (see
:func:`gate_reason`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "PROBE_RTOL",
    "PROBE_ATOL",
    "Prediction",
    "gate_reason",
    "predict",
    "stats",
    "reset_stats",
    "clear_cache",
    "law_names",
]

#: relative tolerance of the held-out probe check (and thus the accuracy
#: contract of every served prediction)
PROBE_RTOL = 5e-4
#: absolute slack of the probe check, µs — keeps near-zero cold-minus-warm
#: deltas from failing on float dust
PROBE_ATOL = 0.05

#: iterations per anchor run: cold + warm + one confirmation row proving
#: the warm iteration really is steady
_ANCHOR_ITERS = 3


class _SegmentMiss(Exception):
    """A size this law cannot predict; ``reason`` is the stats key."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class _Segment:
    """One affine piece of a law: a scalar coordinate plus sample sizes."""

    #: cache key of the segment within its configuration
    key: str
    #: the target's coordinate on this segment
    coord: float
    #: the two anchor sizes (law-native ``x`` units) and their coordinates
    anchors: Tuple[Tuple[int, float], Tuple[int, float]]
    #: held-out probe size and coordinate
    probe: Tuple[int, float]


@dataclass(frozen=True)
class Prediction:
    """A served analytic point: per-iteration times in µs."""

    cold_us: float
    warm_us: float
    law: str
    segment: str


@dataclass(frozen=True)
class _Fit:
    """Affine cold/warm coefficients over a segment coordinate."""

    cold_a: float
    cold_b: float
    warm_a: float
    warm_b: float

    def cold(self, t: float) -> float:
        return self.cold_a + self.cold_b * t

    def warm(self, t: float) -> float:
        return self.warm_a + self.warm_b * t


@dataclass(frozen=True)
class _Refused:
    """A segment that failed its probe (cached so it is not re-run)."""

    reason: str


# -- the laws ------------------------------------------------------------

def _tree_lattice(params, x: int) -> _Segment:
    pw = params.pipeline_width
    if x < 16:
        raise _SegmentMiss("x-too-small")
    chunks = -(-x // pw)  # ceil
    if chunks == 1:
        return _Segment(
            key="C1",
            coord=float(x),
            anchors=((pw // 4, float(pw // 4)), (pw // 2, float(pw // 2))),
            probe=((3 * pw) // 4, float((3 * pw) // 4)),
        )
    if x % pw != 0:
        # Partial tail chunk on a multi-chunk message: off the lattice.
        raise _SegmentMiss("partial-tail-chunk")
    # Full-chunk lattice: affine in the chunk count on each parity
    # sublattice (the two-chunk hardware window alternates increments).
    cs = (2, 4, 6) if chunks % 2 == 0 else (3, 5, 7)
    return _Segment(
        key=f"rem0-{'even' if chunks % 2 == 0 else 'odd'}",
        coord=float(chunks),
        anchors=((cs[0] * pw, float(cs[0])), (cs[1] * pw, float(cs[1]))),
        probe=(cs[2] * pw, float(cs[2])),
    )


def _torus_color_lattice(params, x: int) -> _Segment:
    pw = params.pipeline_width
    ncolors = 6
    if x < 64:
        raise _SegmentMiss("x-too-small")
    pc = x / ncolors  # per-color bytes (fractional off the color lattice)
    m = int(pc // pw)
    if m == 0:
        return _Segment(
            key="m0",
            coord=float(x),
            anchors=(
                (ncolors * (pw // 4), float(ncolors * (pw // 4))),
                (ncolors * (pw // 2), float(ncolors * (pw // 2))),
            ),
            probe=(ncolors * ((3 * pw) // 4), float(ncolors * ((3 * pw) // 4))),
        )
    # m full chunks per color plus a tail: affine in the tail size,
    # anchored exactly at this m's rem == 0 lattice point.
    rem = pc - m * pw
    base = ncolors * m * pw
    return _Segment(
        key=f"m{m}",
        coord=rem,
        anchors=((base, 0.0), (base + ncolors * (pw // 2), float(pw // 2))),
        probe=(base + ncolors * (pw // 4), float(pw // 4)),
    )


def _allreduce_m0(params, x: int) -> _Segment:
    # x is a count of doubles split over three colors: pc = 8x/3 bytes.
    pw = params.pipeline_width
    if x < 24:
        raise _SegmentMiss("x-too-small")
    if (8 * x) / 3 >= pw:
        # Beyond one chunk per color the measured per-chunk increments are
        # irregular (reduce/copy overlap shifts) — deliberately DES-only.
        raise _SegmentMiss("beyond-m0")
    return _Segment(
        key="m0",
        coord=float(x),
        anchors=(
            ((3 * pw) // 32, float((3 * pw) // 32)),
            ((3 * pw) // 16, float((3 * pw) // 16)),
        ),
        probe=((9 * pw) // 32, float((9 * pw) // 32)),
    )


#: law name (AlgorithmInfo.analytic) -> segmenter
_LAWS: Dict[str, Callable[[object, int], _Segment]] = {
    "tree-lattice": _tree_lattice,
    "torus-color-lattice": _torus_color_lattice,
    "allreduce-m0": _allreduce_m0,
}


def law_names() -> List[str]:
    """Names of every structural law this module can evaluate."""
    return sorted(_LAWS)


# -- memory-regime canonicalisation --------------------------------------

def _regime_pin(machine, family: str, x: int) -> Tuple[object, Optional[int]]:
    """(cache key, anchor ``working_set_override``) for ``x``'s regime.

    Affinity holds within one memory regime; anchors must be measured in
    the *target's* regime, not the regime their own (smaller) working set
    would naturally select.  Pure regimes canonicalise to "L3" / "DRAM"
    (pinned at 0 / ``2 * l3_bytes``); a blended working set is its own
    regime, pinned exactly.
    """
    from repro.bench.harness import FAMILY_SPECS

    spec = FAMILY_SPECS[family]
    if spec.working_set is None:
        return "none", None
    ws = spec.working_set(machine, x)
    l3 = machine.params.l3_bytes
    if ws <= l3:
        return "L3", 0
    if ws >= 2 * l3:
        return "DRAM", 2 * l3
    return ws, ws


# -- calibration ---------------------------------------------------------

#: (law, family, algorithm, dims, wrap, mode, ppn, root, window_caching,
#:  regime key, segment key, params) -> _Fit | _Refused
_CACHE: Dict[tuple, Union[_Fit, _Refused]] = {}

_STATS = {"hits": 0, "misses": 0, "calibrations": 0}
_MISS_REASONS: Dict[str, int] = {}


def stats() -> dict:
    """Process-local counters: served hits, misses (with reasons), and
    anchor calibrations run."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "calibrations": _STATS["calibrations"],
        "miss_reasons": dict(_MISS_REASONS),
    }


def reset_stats() -> None:
    _STATS.update(hits=0, misses=0, calibrations=0)
    _MISS_REASONS.clear()


def clear_cache() -> None:
    """Drop every memoized calibration (tests; config teardown)."""
    _CACHE.clear()


def _miss(reason: str) -> None:
    _STATS["misses"] += 1
    _MISS_REASONS[reason] = _MISS_REASONS.get(reason, 0) + 1


def _anchor_point(
    machine,
    family: str,
    algorithm: str,
    x: int,
    root: int,
    window_caching: bool,
    ws_pin: Optional[int],
) -> Tuple[float, float]:
    """Full-DES (cold, warm) µs at one anchor size, on a fresh machine."""
    from repro.bench.harness import run_collective
    from repro.hardware.machine import Machine

    fresh = Machine(
        torus_dims=tuple(machine.torus.dims),
        mode=machine.mode,
        params=machine.params,
        wrap=machine.torus.wrap,
    )
    result = run_collective(
        fresh, family, algorithm, x,
        root=root, iters=_ANCHOR_ITERS, window_caching=window_caching,
        steady_state=True, analytic=False, working_set_override=ws_pin,
    )
    rows = result.iterations_us
    if rows[1] != rows[2]:
        raise _SegmentMiss("anchor-not-steady")
    return rows[0], rows[1]


def _affine(p1: Tuple[float, float], p2: Tuple[float, float]) -> Tuple[float, float]:
    (t1, v1), (t2, v2) = p1, p2
    slope = (v2 - v1) / (t2 - t1)
    return v1 - slope * t1, slope


def _within(pred: float, meas: float) -> bool:
    return abs(pred - meas) <= PROBE_ATOL + PROBE_RTOL * abs(meas)


def _calibrate(
    machine,
    family: str,
    algorithm: str,
    segment: _Segment,
    root: int,
    window_caching: bool,
    ws_pin: Optional[int],
) -> Union[_Fit, _Refused]:
    _STATS["calibrations"] += 1
    try:
        points = [
            _anchor_point(machine, family, algorithm, ax, root,
                          window_caching, ws_pin)
            for ax, _ in segment.anchors
        ] + [
            _anchor_point(machine, family, algorithm, segment.probe[0],
                          root, window_caching, ws_pin)
        ]
    except _SegmentMiss as exc:
        return _Refused(exc.reason)
    (c1, w1), (c2, w2), (cp, wp) = points
    t1, t2 = segment.anchors[0][1], segment.anchors[1][1]
    cold_a, cold_b = _affine((t1, c1), (t2, c2))
    warm_a, warm_b = _affine((t1, w1), (t2, w2))
    fit = _Fit(cold_a, cold_b, warm_a, warm_b)
    tp = segment.probe[1]
    if not (_within(fit.warm(tp), wp) and _within(fit.cold(tp), cp)):
        return _Refused("probe-failed")
    return fit


# -- the gate ------------------------------------------------------------

def gate_reason(
    machine,
    info,
    *,
    verify: bool,
    payload,
    deadline_us,
    steady_state,
) -> Optional[str]:
    """Why this run must go through the DES (None = analytic is legal).

    The fast path models exactly one thing: a fault-free deterministic
    run whose warm iterations are bit-identical.  Anything that could
    perturb iterations (faults, capacity reapply hooks), observe them
    (telemetry, tracing, payload verification), or depend on per-event
    behaviour (deadlines) disqualifies the run.  Non-default parameters
    disqualify too: the segment structure itself was only validated
    against the calibrated BG/P constants.
    """
    from repro.hardware.params import BGPParams

    if info is None or info.analytic is None:
        return "no-law"
    if info.analytic not in _LAWS:
        return "unknown-law"
    if machine.network.name != "torus":
        # every law was probe-validated on the torus backend only
        return "non-torus-network"
    if verify or payload is not None:
        return "verify"
    if deadline_us is not None:
        return "deadline"
    if steady_state is False:
        return "steady-state-disabled"
    if machine.engine.telemetry is not None:
        return "telemetry-attached"
    if machine.engine.trace_enabled:
        return "trace-enabled"
    if machine.faults.any_armed():
        return "faults-armed"
    if machine._reapply_hooks:
        return "reapply-hooks"
    if machine.params != BGPParams():
        return "non-default-params"
    return None


# -- prediction ----------------------------------------------------------

def predict(
    machine,
    family: str,
    info,
    x: int,
    *,
    root: int = 0,
    window_caching: bool = True,
) -> Optional[Prediction]:
    """Analytic (cold, warm) µs for one sweep point, or None (DES needed).

    Callers check :func:`gate_reason` first; this function handles the
    remaining per-size questions — does the law have a segment covering
    ``x``, and does that segment's calibration pass its probe?  Misses are
    counted in :func:`stats` with a reason, and refused segments are
    cached so a sweep pays the probe cost at most once.
    """
    segmenter = _LAWS[info.analytic]
    try:
        segment = segmenter(machine.params, x)
    except _SegmentMiss as exc:
        _miss(exc.reason)
        return None
    regime_key, ws_pin = _regime_pin(machine, family, x)
    key = (
        info.analytic, family, info.name, tuple(machine.torus.dims),
        machine.torus.wrap, machine.mode.name, machine.ppn, root,
        window_caching, regime_key, segment.key, machine.params,
    )
    fit = _CACHE.get(key)
    if fit is None:
        fit = _calibrate(
            machine, family, info.name, segment, root, window_caching,
            ws_pin,
        )
        _CACHE[key] = fit
    if isinstance(fit, _Refused):
        _miss(fit.reason)
        return None
    cold = fit.cold(segment.coord)
    warm = fit.warm(segment.coord)
    if not (math.isfinite(cold) and math.isfinite(warm)):
        _miss("non-finite-fit")
        return None
    _STATS["hits"] += 1
    return Prediction(
        cold_us=cold, warm_us=warm, law=info.analytic, segment=segment.key,
    )
