"""A small discrete-event simulation (DES) kernel.

The kernel is deliberately self-contained (no SimPy dependency) and exposes
exactly the primitives the BG/P models need:

* :class:`~repro.sim.engine.Engine` — the event loop with a virtual clock in
  microseconds.
* :class:`~repro.sim.engine.Process` — a generator-based cooperative process.
* Waitables — :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.Event`, and joining another ``Process``.
* Resources — :class:`~repro.sim.resources.Server` (FCFS queueing server),
  :class:`~repro.sim.resources.FairSharePipe` (processor-sharing bandwidth
  with per-flow caps; used for memory systems and DMA engines) and
  :class:`~repro.sim.resources.Store` (bounded FIFO of items).
* Synchronisation — :class:`~repro.sim.sync.SimBarrier`,
  :class:`~repro.sim.sync.SimCounter` (waitable monotonic counter; the
  software *message counter* of the paper is built on it).

Design notes
------------
Processes are plain generators that ``yield`` waitables.  A waitable calls
the process back through ``Engine`` when it fires; the value of the waitable
(e.g. an event payload) is sent into the generator.  All state updates happen
at event boundaries, so the simulation is deterministic: ties in time are
broken by a monotonically increasing sequence number.
"""

from repro.sim.engine import Engine, Process, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout, Waitable
from repro.sim.flownet import Flow, FlowNetwork, FlowResource
from repro.sim.resources import FairSharePipe, Server, Store
from repro.sim.sync import SimBarrier, SimCounter

__all__ = [
    "Engine",
    "Process",
    "SimulationError",
    "Event",
    "Timeout",
    "Waitable",
    "AnyOf",
    "AllOf",
    "Server",
    "FairSharePipe",
    "Store",
    "SimBarrier",
    "SimCounter",
    "Flow",
    "FlowNetwork",
    "FlowResource",
]
