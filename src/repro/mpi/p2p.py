"""Point-to-point messaging: eager and rendezvous protocols.

The BG/P messaging stack (DCMF, [15]) moves point-to-point messages in two
ways, and the collectives of the paper inherit their cost structure:

``eager``
    The sender pushes the payload immediately; it lands in the receiver's
    *memory FIFO* and the receiving core copies it out to the application
    buffer (one staging copy).  Cheap to start — no handshake — so it wins
    for short messages.

``rendezvous``
    The sender posts a request-to-send; the receiver answers with a
    clear-to-send carrying the destination address; the payload is then
    direct-put into the application buffer with no staging copy.  Two
    handshake packets of latency buy a zero-copy body — it wins for large
    messages.

Intra-node messages use the same two shapes through the node's own
resources (staging FIFO copy vs DMA local direct put).

:func:`run_pingpong` measures the classic ping-pong microbenchmark and
reports the one-way latency and bandwidth; the eager/rendezvous crossover
it exposes is governed by :attr:`~repro.hardware.params.BGPParams` values
the same way the collective crossovers are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.machine import Machine
from repro.util.units import bandwidth_mbs

#: protocol switch point (bytes): eager below, rendezvous at/above
DEFAULT_EAGER_LIMIT = 1024

#: bytes of protocol header/handshake packets
_HEADER_BYTES = 128


def select_protocol(nbytes: int, eager_limit: int = DEFAULT_EAGER_LIMIT) -> str:
    """The stack's size policy: eager for short, rendezvous for long."""
    return "eager" if nbytes < eager_limit else "rendezvous"


@dataclass
class PingPongResult:
    """Outcome of a ping-pong measurement."""

    protocol: str
    nbytes: int
    #: one-way time (round-trip / 2), µs
    latency_us: float
    iterations: int

    @property
    def bandwidth_mbs(self) -> float:
        if self.nbytes == 0:
            return 0.0
        return bandwidth_mbs(self.nbytes, self.latency_us)

    def __str__(self) -> str:
        return (
            f"pingpong[{self.protocol}]: {self.nbytes} B one-way in "
            f"{self.latency_us:.2f} us ({self.bandwidth_mbs:.1f} MB/s)"
        )


def _send(machine: Machine, src_rank: int, dst_rank: int, nbytes: int,
          protocol: str):
    """Sub-generator: one message from ``src_rank`` to ``dst_rank``.

    Runs in the *sender's* coroutine; models the receiver's completion
    inline (the caller alternates roles, as ping-pong does).
    """
    params = machine.params
    engine = machine.engine
    src_node = machine.rank_to_node(src_rank)
    dst_node = machine.rank_to_node(dst_rank)
    same_node = src_node == dst_node
    node = machine.nodes[dst_node]
    dma = machine.dma[src_node]

    def wire(payload: int):
        """Sub-generator: move ``payload`` bytes src -> dst over the wire."""
        if same_node:
            yield dma.local_copy_flow(payload, name="p2p.local")
        else:
            yield machine.network.ptp_send(
                0, src_node, dst_node, payload, name="p2p"
            )

    yield engine.timeout(params.mpi_overhead)
    if protocol == "eager":
        # Post and push: payload + header land in the reception FIFO...
        yield engine.timeout(params.dma_startup)
        yield from wire(nbytes + _HEADER_BYTES)
        yield engine.timeout(params.dma_fifo_overhead)
        # ...and the receiving core copies it out to the application buffer.
        yield from node.fifo_copy(nbytes, name="p2p.eager-out")
    elif protocol == "rendezvous":
        # RTS -> CTS handshake (two header packets), then zero-copy put.
        yield engine.timeout(params.dma_startup)
        yield from wire(_HEADER_BYTES)  # RTS
        yield engine.timeout(params.dma_startup)
        yield from _reverse_wire(machine, src_node, dst_node)  # CTS
        yield engine.timeout(params.dma_startup)
        yield from wire(nbytes)  # direct put into the application buffer
        yield engine.timeout(params.dma_counter_poll)
    else:
        raise KeyError(f"unknown protocol {protocol!r}")


def _reverse_wire(machine: Machine, src_node: int, dst_node: int):
    if src_node == dst_node:
        yield machine.engine.timeout(machine.params.flag_cost)
    else:
        yield machine.network.ptp_send(
            1, dst_node, src_node, _HEADER_BYTES, name="p2p.cts"
        )


def run_pingpong(
    machine: Machine,
    nbytes: int,
    rank_a: int = 0,
    rank_b: Optional[int] = None,
    protocol: str = "auto",
    iters: int = 4,
) -> PingPongResult:
    """Measure a ping-pong between two ranks.

    ``rank_b`` defaults to the rank farthest from ``rank_a`` on the torus
    (worst-case hop count).  With ``protocol="auto"`` the stack's
    eager/rendezvous size policy applies.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")
    machine.check_rank(rank_a)
    if rank_b is None:
        node_a = machine.rank_to_node(rank_a)
        far_node = max(
            range(machine.nnodes),
            key=lambda n: machine.network.hop_distance(node_a, n),
        )
        rank_b = machine.node_ranks(far_node)[0]
    machine.check_rank(rank_b)
    if rank_a == rank_b:
        raise ValueError("ping-pong needs two distinct ranks")
    chosen = (
        select_protocol(nbytes) if protocol == "auto" else protocol
    )
    machine.set_working_set(max(1, nbytes))
    samples = []

    def pingpong():
        for _ in range(iters):
            start = machine.engine.now
            yield from _send(machine, rank_a, rank_b, nbytes, chosen)
            yield from _send(machine, rank_b, rank_a, nbytes, chosen)
            samples.append((machine.engine.now - start) / 2.0)

    proc = machine.spawn(pingpong(), name="pingpong")
    machine.engine.run_until_processes_finish([proc])
    return PingPongResult(
        protocol=chosen,
        nbytes=nbytes,
        latency_us=sum(samples) / len(samples),
        iterations=iters,
    )
