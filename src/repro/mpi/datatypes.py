"""MPI-ish datatypes mapped onto numpy dtypes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An element type: a name plus the backing numpy dtype."""

    name: str
    np_dtype: np.dtype

    @property
    def itemsize(self) -> int:
        return self.np_dtype.itemsize

    def extent(self, count: int) -> int:
        """Bytes occupied by ``count`` contiguous elements."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return count * self.itemsize

    def __str__(self) -> str:
        return self.name


UINT8 = Datatype("MPI_BYTE", np.dtype(np.uint8))
INT32 = Datatype("MPI_INT", np.dtype(np.int32))
INT64 = Datatype("MPI_LONG_LONG", np.dtype(np.int64))
FLOAT = Datatype("MPI_FLOAT", np.dtype(np.float32))
DOUBLE = Datatype("MPI_DOUBLE", np.dtype(np.float64))

_ALL = {d.name: d for d in (UINT8, INT32, INT64, FLOAT, DOUBLE)}


def lookup(name: str) -> Datatype:
    """Datatype by MPI name (e.g. ``"MPI_DOUBLE"``)."""
    if name not in _ALL:
        raise KeyError(f"unknown datatype {name!r}; known: {sorted(_ALL)}")
    return _ALL[name]
