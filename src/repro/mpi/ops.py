"""Reduction operations (numpy-vectorized, per the HPC-Python idiom of
operating on whole arrays rather than element loops)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """An MPI reduction operator."""

    name: str
    #: binary ufunc combining two arrays element-wise
    ufunc: Callable[[np.ndarray, np.ndarray], np.ndarray]
    #: reduction over axis 0 of a stacked array
    reduce_stack: Callable[[np.ndarray], np.ndarray]

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise combination of two contributions."""
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        return self.ufunc(a, b)

    def reduce_all(self, stacked: np.ndarray) -> np.ndarray:
        """Reduce an ``(nprocs, count)`` array along axis 0."""
        if stacked.ndim != 2:
            raise ValueError("expected a 2-D (nprocs, count) array")
        return self.reduce_stack(stacked)

    def __str__(self) -> str:
        return self.name


SUM = ReduceOp("MPI_SUM", np.add, lambda s: s.sum(axis=0))
MAX = ReduceOp("MPI_MAX", np.maximum, lambda s: s.max(axis=0))
MIN = ReduceOp("MPI_MIN", np.minimum, lambda s: s.min(axis=0))
PROD = ReduceOp("MPI_PROD", np.multiply, lambda s: s.prod(axis=0))

_ALL = {op.name: op for op in (SUM, MAX, MIN, PROD)}


def lookup(name: str) -> ReduceOp:
    """Operator by MPI name (e.g. ``"MPI_SUM"``)."""
    if name not in _ALL:
        raise KeyError(f"unknown op {name!r}; known: {sorted(_ALL)}")
    return _ALL[name]
