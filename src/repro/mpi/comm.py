"""The Communicator: the user-facing entry point.

A communicator wraps a machine and exposes the collectives the paper
optimizes.  Each call runs the Fig-5 measurement loop on the simulated
machine and returns a :class:`~repro.collectives.base.CollectiveResult`
(timing + bandwidth); with ``verify=True`` real payload bytes flow through
every modelled stage and are checked bit-exactly.

Example
-------
>>> from repro import Machine, Mode, Communicator
>>> m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
>>> comm = Communicator(m)
>>> result = comm.bcast(nbytes="128K", algorithm="torus-shaddr")
>>> result.bandwidth_mbs  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Optional, Union

from repro.bench.harness import (
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_barrier,
    run_bcast,
    run_gather,
    run_reduce,
    run_scatter,
)
from repro.collectives.base import CollectiveResult
from repro.collectives.registry import (
    list_bcast_algorithms,
    select_bcast,
)
from repro.hardware.machine import Machine
from repro.mpi.datatypes import DOUBLE, Datatype
from repro.mpi.ops import SUM, ReduceOp
from repro.util.units import parse_size


class Communicator:
    """MPI_COMM_WORLD over a simulated BG/P machine."""

    def __init__(self, machine: Machine):
        self.machine = machine

    @property
    def size(self) -> int:
        """Number of MPI ranks."""
        return self.machine.nprocs

    # -- collectives -----------------------------------------------------
    def bcast(
        self,
        nbytes: Union[int, str],
        root: int = 0,
        algorithm: str = "auto",
        iters: int = 1,
        verify: bool = False,
        window_caching: bool = True,
    ) -> CollectiveResult:
        """Measure an ``MPI_Bcast`` of ``nbytes`` (int or ``"128K"`` style).

        ``algorithm="auto"`` applies the BG/P message-size selection policy;
        any registered name (see :func:`available_bcast_algorithms`) forces
        a specific scheme.
        """
        size = parse_size(nbytes)
        name = (
            select_bcast(size, self.machine.ppn)
            if algorithm == "auto"
            else algorithm
        )
        return run_bcast(
            self.machine,
            name,
            size,
            root=root,
            iters=iters,
            verify=verify,
            window_caching=window_caching,
        )

    def allreduce(
        self,
        count: int,
        dtype: Datatype = DOUBLE,
        op: ReduceOp = SUM,
        algorithm: str = "auto",
        iters: int = 1,
        verify: bool = False,
        window_caching: bool = True,
    ) -> CollectiveResult:
        """Measure an ``MPI_Allreduce`` of ``count`` elements.

        The modelled algorithms implement the paper's benchmark case
        (sum of doubles); other dtypes/ops are validated and converted to
        the equivalent byte volume for timing, with verification supported
        for the double-sum case.
        """
        if dtype is not DOUBLE or op is not SUM:
            if verify:
                raise NotImplementedError(
                    "payload verification is implemented for the paper's "
                    "benchmark case (MPI_DOUBLE + MPI_SUM)"
                )
            # Timing model: scale to the byte volume of doubles.
            count = max(1, count * dtype.itemsize // DOUBLE.itemsize)
        name = algorithm
        if algorithm == "auto":
            nbytes = count * DOUBLE.itemsize
            name = (
                "allreduce-tree"
                if nbytes <= 64 * 1024 or self.machine.ppn != 4
                else "allreduce-torus-shaddr"
            )
        return run_allreduce(
            self.machine,
            name,
            count,
            iters=iters,
            verify=verify,
            window_caching=window_caching,
        )

    def reduce(
        self,
        count: int,
        algorithm: str = "auto",
        iters: int = 1,
        verify: bool = False,
        window_caching: bool = True,
    ) -> CollectiveResult:
        """Measure an ``MPI_Reduce`` (sum of doubles to rank 0)."""
        if algorithm == "auto":
            algorithm = (
                "reduce-torus-shaddr"
                if self.machine.ppn == 4
                else "reduce-torus-current"
            )
        return run_reduce(
            self.machine, algorithm, count, iters=iters, verify=verify,
            window_caching=window_caching,
        )

    def gather(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "gather-ring-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Gather`` to rank 0."""
        return run_gather(
            self.machine, algorithm, parse_size(block_bytes), iters=iters,
            verify=verify,
        )

    def scatter(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "scatter-ring-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Scatter`` from rank 0."""
        return run_scatter(
            self.machine, algorithm, parse_size(block_bytes), iters=iters,
            verify=verify,
        )

    def allgather(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "allgather-ring-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Allgather``."""
        return run_allgather(
            self.machine, algorithm, parse_size(block_bytes), iters=iters,
            verify=verify,
        )

    def alltoall(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "alltoall-shift-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Alltoall`` with per-pair blocks."""
        return run_alltoall(
            self.machine, algorithm, parse_size(block_bytes), iters=iters,
            verify=verify,
        )

    def barrier(self, algorithm: str = "barrier-gi") -> float:
        """Run one global barrier; returns its measured latency in µs
        (excluding the MPI software entry overhead)."""
        result = run_barrier(self.machine, algorithm)
        return result.elapsed_us - self.machine.params.mpi_overhead

    # -- introspection -----------------------------------------------------
    @staticmethod
    def available_bcast_algorithms() -> list:
        """Names accepted by :meth:`bcast`'s ``algorithm`` parameter."""
        return list_bcast_algorithms()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator size={self.size} machine={self.machine!r}>"
