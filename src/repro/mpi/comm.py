"""The Communicator: the user-facing entry point.

A communicator wraps a machine and exposes the collectives the paper
optimizes.  Each call runs the Fig-5 measurement loop on the simulated
machine and returns a :class:`~repro.collectives.base.CollectiveResult`
(timing + bandwidth); with ``verify=True`` real payload bytes flow through
every modelled stage and are checked bit-exactly.

Example
-------
>>> from repro import Machine, Mode, Communicator
>>> m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
>>> comm = Communicator(m)
>>> result = comm.bcast(nbytes="128K", algorithm="torus-shaddr")
>>> result.bandwidth_mbs  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Optional, Union

from repro.bench.harness import run_collective
from repro.collectives.base import CollectiveResult
from repro.collectives.registry import list_algorithms
from repro.hardware.machine import Machine
from repro.mpi.datatypes import DOUBLE, Datatype
from repro.mpi.ops import SUM, ReduceOp
from repro.util.units import parse_size


class Communicator:
    """MPI_COMM_WORLD over a simulated BG/P machine."""

    def __init__(self, machine: Machine):
        self.machine = machine

    @property
    def size(self) -> int:
        """Number of MPI ranks."""
        return self.machine.nprocs

    # -- collectives -----------------------------------------------------
    def bcast(
        self,
        nbytes: Union[int, str],
        root: int = 0,
        algorithm: str = "auto",
        iters: int = 1,
        verify: bool = False,
        window_caching: bool = True,
    ) -> CollectiveResult:
        """Measure an ``MPI_Bcast`` of ``nbytes`` (int or ``"128K"`` style).

        ``algorithm="auto"`` applies the BG/P message-size selection policy
        (the section-V table in :mod:`repro.collectives.selection`); any
        registered name (see :func:`available_bcast_algorithms`) forces a
        specific scheme.
        """
        return run_collective(
            self.machine,
            "bcast",
            algorithm,
            parse_size(nbytes),
            root=root,
            iters=iters,
            verify=verify,
            window_caching=window_caching,
        )

    def allreduce(
        self,
        count: int,
        dtype: Datatype = DOUBLE,
        op: ReduceOp = SUM,
        algorithm: str = "auto",
        iters: int = 1,
        verify: bool = False,
        window_caching: bool = True,
    ) -> CollectiveResult:
        """Measure an ``MPI_Allreduce`` of ``count`` elements.

        The modelled algorithms implement the paper's benchmark case
        (sum of doubles); other dtypes/ops are validated and converted to
        the equivalent byte volume for timing, with verification supported
        for the double-sum case.
        """
        if dtype is not DOUBLE or op is not SUM:
            if verify:
                raise NotImplementedError(
                    "payload verification is implemented for the paper's "
                    "benchmark case (MPI_DOUBLE + MPI_SUM)"
                )
            # Timing model: scale to the byte volume of doubles.
            count = max(1, count * dtype.itemsize // DOUBLE.itemsize)
        return run_collective(
            self.machine,
            "allreduce",
            algorithm,
            count,
            iters=iters,
            verify=verify,
            window_caching=window_caching,
        )

    def reduce(
        self,
        count: int,
        algorithm: str = "auto",
        iters: int = 1,
        verify: bool = False,
        window_caching: bool = True,
    ) -> CollectiveResult:
        """Measure an ``MPI_Reduce`` (sum of doubles to rank 0)."""
        return run_collective(
            self.machine, "reduce", algorithm, count, iters=iters,
            verify=verify, window_caching=window_caching,
        )

    def gather(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "gather-ring-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Gather`` to rank 0."""
        return run_collective(
            self.machine, "gather", algorithm, parse_size(block_bytes),
            iters=iters, verify=verify,
        )

    def scatter(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "scatter-ring-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Scatter`` from rank 0."""
        return run_collective(
            self.machine, "scatter", algorithm, parse_size(block_bytes),
            iters=iters, verify=verify,
        )

    def allgather(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "allgather-ring-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Allgather``.

        ``algorithm="auto"`` picks the section-VII extension policy by
        per-rank block size.
        """
        return run_collective(
            self.machine, "allgather", algorithm, parse_size(block_bytes),
            iters=iters, verify=verify,
        )

    def alltoall(
        self,
        block_bytes: Union[int, str],
        algorithm: str = "alltoall-shift-shaddr",
        iters: int = 1,
        verify: bool = False,
    ) -> CollectiveResult:
        """Measure an ``MPI_Alltoall`` with per-pair blocks."""
        return run_collective(
            self.machine, "alltoall", algorithm, parse_size(block_bytes),
            iters=iters, verify=verify,
        )

    def barrier(self, algorithm: str = "barrier-gi") -> float:
        """Run one global barrier; returns its measured latency in µs
        (excluding the MPI software entry overhead)."""
        result = run_collective(self.machine, "barrier", algorithm)
        return result.elapsed_us - self.machine.params.mpi_overhead

    # -- introspection -----------------------------------------------------
    @staticmethod
    def available_bcast_algorithms() -> list:
        """Names accepted by :meth:`bcast`'s ``algorithm`` parameter."""
        return list_algorithms("bcast")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator size={self.size} machine={self.machine!r}>"
