"""A small MPI-like front end over the simulated machine.

This is the layer a user of the library touches: build a
:class:`~repro.hardware.machine.Machine`, wrap it in a
:class:`~repro.mpi.comm.Communicator`, and call ``bcast`` / ``allreduce`` /
``barrier``.  Algorithm selection follows the BG/P stack's message-size
policy unless an explicit algorithm name is given.
"""

from repro.mpi.comm import Communicator
from repro.mpi.datatypes import Datatype, DOUBLE, FLOAT, INT32, INT64, UINT8
from repro.mpi.ops import MAX, MIN, PROD, SUM, ReduceOp
from repro.mpi.p2p import PingPongResult, run_pingpong, select_protocol

__all__ = [
    "Communicator",
    "PingPongResult",
    "run_pingpong",
    "select_protocol",
    "Datatype",
    "UINT8",
    "INT32",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
]
