"""The asyncio prediction server: coalescing + batching over the service.

:class:`PredictionServer` speaks newline-delimited JSON over TCP (one
request object per line, one response object per line) and layers the
two concurrency tiers on top of the synchronous
:class:`~repro.serve.service.PredictionService`:

* **in-flight coalescing** — duplicate concurrent ``predict`` queries
  for the same cache key await one computation instead of racing N
  identical simulations (``stats.coalesced`` counts the riders);
* **sweep batching** — a ``sweep`` request normalizes its points, serves
  the cached ones instantly, and fans the misses through
  :func:`~repro.bench.parallel.execute_points`, honoring ``--jobs`` and
  ``REPRO_FARM`` — the same executor/farm path every sweep driver uses,
  so a work-server full of pull-workers can back large backfills.

All simulation happens on a **one-thread** executor: the warm machine
pool is never touched by two computations at once, and the event loop
stays free to answer ``stats``/``ping`` (and to coalesce) while a
simulation runs.  Sweep batches run on that same thread; their worker
processes (or the farm) provide the parallelism.

Protocol
--------

Requests carry an ``op`` (``predict``, ``select``, ``sweep``, ``stats``,
``ping``, ``shutdown``) plus the op's fields; an optional ``id`` is
echoed back for client-side matching.  Errors come back as
``{"ok": false, "error": ...}`` — a malformed query never takes down the
connection, let alone the server.  The server binds loopback by default
(same security posture as the sweep farm: no authentication, so never
expose it beyond hosts you trust).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.bench.parallel import execute_points, resolve_jobs
from repro.collectives.selection import candidate_algorithms
from repro.hardware.machine import Mode
from repro.hardware.network import UnsupportedTopologyError
from repro.serve.service import (
    CachedAnswer,
    PredictionService,
    QueryError,
    answer_response,
)
from repro.telemetry.runtime import span, span_store

#: largest accepted request line (a sweep of a few thousand points fits;
#: anything bigger is a protocol error, not a memory grab)
MAX_REQUEST_BYTES = 8 * 1024 * 1024

#: errors reported to the client as a response (not server faults)
_CLIENT_ERRORS = (QueryError, ValueError, KeyError, UnsupportedTopologyError)


class PredictionServer:
    """One asyncio TCP server wrapping a :class:`PredictionService`.

    ``jobs``/``farm`` configure the sweep-batch executor (argument >
    environment > serial, exactly like every other driver).  ``port=0``
    binds an ephemeral port; read :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        service: Optional[PredictionService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = None,
        farm: Optional[str] = None,
    ):
        self.service = service if service is not None else PredictionService()
        self.host = host
        self.port = port
        self.jobs = jobs
        self.farm = farm
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        # ONE compute thread: the warm pool is mutated by at most one
        # simulation at a time, and results stay deterministic no matter
        # how many clients are connected.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-compute"
        )
        self._inflight: Dict[str, asyncio.Future] = {}

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_REQUEST_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def run(self, started: Optional[threading.Event] = None) -> None:
        """Start, optionally signal ``started``, serve until :meth:`stop`."""
        await self.start()
        if started is not None:
            started.set()
        try:
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self._executor.shutdown(wait=True)

    def stop(self) -> None:
        """Request shutdown; safe to call from any thread."""
        if self._loop is None or self._stopping is None:
            return
        self._loop.call_soon_threadsafe(self._stopping.set)

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Only server shutdown cancels handler tasks; a cancelled
            # connection is a closed connection, not an error to log.
            pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode({
                        "ok": False,
                        "error": f"request line exceeds "
                                 f"{MAX_REQUEST_BYTES} bytes",
                    }))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(_encode(response))
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    self.stop()
                    break
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch_line(self, line: bytes) -> dict:
        start = time.perf_counter()
        request_id = None
        op = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise QueryError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "predict")
            handler = self._HANDLERS.get(op)
            if handler is None:
                raise QueryError(
                    f"unknown op {op!r}; known: {sorted(self._HANDLERS)}"
                )
            self.service.stats.record_request(op)
            response = await handler(self, request)
            response.setdefault("ok", True)
        except _CLIENT_ERRORS as exc:
            self.service.stats.record_error()
            response = {"ok": False, "error": str(exc),
                        "error_type": type(exc).__name__}
        except Exception as exc:  # never take the server down on one query
            self.service.stats.record_error()
            response = {"ok": False, "error": f"internal error: {exc}",
                        "error_type": type(exc).__name__}
        if request_id is not None:
            response["id"] = request_id
        if op is not None:
            response["op"] = op
        self.service.stats.record_latency(time.perf_counter() - start)
        return response

    # -- predict (with coalescing) ----------------------------------------
    async def _compute_keyed(self, spec: dict, key: str,
                             parent: Optional[dict] = None,
                             ) -> Tuple[CachedAnswer, str, bool]:
        """Compute (or join an in-flight computation of) one point.

        Returns ``(answer, tier, coalesced)``.  Exactly one caller per
        key owns the computation; concurrent duplicates await its future.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.service.stats.record_coalesced()
            answer, tier = await asyncio.shield(existing)
            return answer, tier, True
        future: asyncio.Future = self._loop.create_future()
        self._inflight[key] = future
        try:
            with span("serve.compute", "serve", parent=parent,
                      key=key) as sp:
                answer, tier = await self._loop.run_in_executor(
                    self._executor, self._compute_and_store, spec, key,
                )
                sp.set(tier=tier)
            future.set_result((answer, tier))
            return answer, tier, False
        except Exception as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved even with no riders
            raise
        finally:
            self._inflight.pop(key, None)

    def _compute_and_store(self, spec: dict, key: str
                           ) -> Tuple[CachedAnswer, str]:
        answer, tier = self.service.compute(spec)
        self.service.store(key, answer)
        return answer, tier

    async def _op_predict(self, request: dict,
                          parent: Optional[dict] = None) -> dict:
        start = time.perf_counter()
        with span("serve.predict", "serve", parent=parent,
                  family=request.get("family"),
                  algorithm=request.get("algorithm", "auto"),
                  x=request.get("x")) as sp:
            spec, key = self.service.normalize(request)
            cached = self.service.lookup(key)
            if cached is not None:
                answer, tier = cached
                coalesced = False
            else:
                answer, tier, coalesced = await self._compute_keyed(
                    spec, key, parent=sp.ctx,
                )
            sp.set(tier=tier, coalesced=coalesced)
        # Tier counters track real lookups/computations; riders on an
        # in-flight compute are counted by ``stats.coalesced`` alone.
        if not coalesced:
            self.service.stats.record_tier(tier)
            self.service.stats.record_tier_latency(
                time.perf_counter() - start, tier,
            )
        response = answer_response(answer, tier, key)
        if coalesced:
            response["coalesced"] = True
        return response

    # -- select ------------------------------------------------------------
    async def _op_select(self, request: dict) -> dict:
        base = {
            fld: request[fld]
            for fld in ("family", "x", "dims", "mode", "wrap", "network",
                        "iters", "seed", "root", "window_caching",
                        "analytic")
            if fld in request
        }
        # The table's choice: resolve "auto" through section-V policy.
        table_spec, _ = self.service.normalize({**base, "algorithm": "auto"})
        table_choice = table_spec["algorithm"]
        if not request.get("measure", True):
            return {
                "selected": table_choice,
                "table_choice": table_choice,
                "agrees": True,
                "measured": False,
                "candidates": [],
            }
        names = request.get("candidates")
        if names is None:
            ppn = Mode[table_spec["mode"]].value
            names = candidate_algorithms(
                table_spec["family"], ppn, table_spec["network"],
            )
        if not names:
            raise QueryError(
                f"no candidate algorithms for family "
                f"{table_spec['family']!r} at this mode/network"
            )
        measured: List[dict] = []
        for name in names:
            prediction = await self._op_predict({**base, "algorithm": name})
            measured.append({
                "algorithm": prediction["algorithm"],
                "elapsed_us": prediction["elapsed_us"],
                "tier": prediction["tier"],
                "digest": prediction["digest"],
            })
        best = min(measured, key=lambda entry: entry["elapsed_us"])
        return {
            "selected": best["algorithm"],
            "table_choice": table_choice,
            "agrees": best["algorithm"] == table_choice,
            "measured": True,
            "candidates": measured,
        }

    # -- sweep (batched) ----------------------------------------------------
    async def _op_sweep(self, request: dict) -> dict:
        points = request.get("points")
        if not isinstance(points, list) or not points:
            raise QueryError("sweep requires a non-empty 'points' list")
        with span("serve.sweep", "serve", points=len(points)) as query_sp:
            return await self._sweep_inner(request, points, query_sp)

    async def _sweep_inner(self, request: dict, points: List[dict],
                           query_sp) -> dict:
        normalized = [self.service.normalize(point) for point in points]
        self.service.stats.record_request("sweep_points", len(points))

        # Partition: cached / riding an in-flight compute / to-batch.
        # Duplicate keys inside the sweep batch once, too.
        responses: List[Optional[dict]] = [None] * len(points)
        riders: List[Tuple[int, asyncio.Future]] = []
        to_compute: List[Tuple[str, dict]] = []
        compute_index: Dict[str, int] = {}
        members: Dict[str, List[int]] = {}
        for position, (spec, key) in enumerate(normalized):
            cached = self.service.lookup(key)
            if cached is not None:
                answer, tier = cached
                self.service.stats.record_tier(tier)
                responses[position] = answer_response(answer, tier, key)
                continue
            existing = self._inflight.get(key)
            if existing is not None:
                self.service.stats.record_coalesced()
                riders.append((position, existing))
                continue
            if key not in compute_index:
                compute_index[key] = len(to_compute)
                to_compute.append((key, spec))
                future = self._loop.create_future()
                self._inflight[key] = future
            members.setdefault(key, []).append(position)
        query_sp.set(cached=len(points) - len(riders) - len(to_compute),
                     riders=len(riders), computed=len(to_compute))

        try:
            if to_compute:
                with span("serve.sweep.batch", "serve",
                          parent=query_sp.ctx,
                          points=len(to_compute)) as batch_sp:
                    batch = await self._loop.run_in_executor(
                        self._executor, self._run_batch,
                        [spec for _, spec in to_compute],
                        request.get("jobs"),
                        batch_sp.ctx,
                    )
                for (key, spec), answer in zip(to_compute, batch):
                    self.service.store(key, answer)
                    manifest = answer.result.manifest
                    tier = (
                        "analytic"
                        if manifest is not None and manifest.analytic
                        else "batch"
                    )
                    future = self._inflight.pop(key, None)
                    if future is not None and not future.done():
                        future.set_result((answer, tier))
                    # One computation, one tier tick — duplicate positions
                    # inside the sweep share it.
                    self.service.stats.record_tier(tier)
                    for position in members[key]:
                        responses[position] = answer_response(
                            answer, tier, key,
                        )
        except Exception as exc:
            for key, _ in to_compute:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
                    future.exception()
            raise
        for position, future in riders:
            answer, tier = await asyncio.shield(future)
            _, key = normalized[position]
            responses[position] = answer_response(answer, tier, key)
            responses[position]["coalesced"] = True
        return {"points": responses, "count": len(responses)}

    def _run_batch(self, specs: List[dict], jobs: Optional[int],
                   trace_ctx: Optional[dict] = None) -> List[CachedAnswer]:
        """Fan a sweep's cache misses through the shared point executor."""
        from repro.bench.farm import pickle_digest

        effective = jobs if jobs is not None else self.jobs
        results = execute_points(
            specs, jobs=effective, farm=self.farm, trace_ctx=trace_ctx,
        )
        return [
            CachedAnswer(result=result, digest=pickle_digest(result),
                         spec=spec)
            for spec, result in zip(specs, results)
        ]

    # -- stats / ping / shutdown -------------------------------------------
    async def _op_stats(self, request: dict) -> dict:
        snapshot = self.service.stats_snapshot()
        snapshot["server"] = {
            "address": list(self.address) if self.address else None,
            "jobs": resolve_jobs(self.jobs),
            "farm": self.farm,
            "inflight": len(self._inflight),
        }
        return snapshot

    async def _op_metrics(self, request: dict) -> dict:
        """The synced metrics registry: structured + Prometheus text."""
        return {
            "metrics": self.service.metrics_snapshot(),
            "exposition": self.service.metrics_text(),
        }

    async def _op_trace(self, request: dict) -> dict:
        """Finished runtime spans from this process's span store."""
        spans = span_store().snapshot()
        return {"spans": spans, "count": len(spans)}

    async def _op_ping(self, request: dict) -> dict:
        return {"pong": True}

    async def _op_shutdown(self, request: dict) -> dict:
        return {"stopping": True}

    _HANDLERS = {
        "predict": _op_predict,
        "select": _op_select,
        "sweep": _op_sweep,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "trace": _op_trace,
        "ping": _op_ping,
        "shutdown": _op_shutdown,
    }


def _encode(response: dict) -> bytes:
    return json.dumps(response, sort_keys=True).encode("ascii") + b"\n"


class BackgroundServer:
    """A :class:`PredictionServer` running on a daemon thread's event loop.

    The in-process harness for tests and the QPS benchmark: start, read
    :attr:`address`, query over loopback, :meth:`stop`.  Usable as a
    context manager.
    """

    def __init__(self, server: PredictionServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    @property
    def service(self) -> PredictionService:
        return self.server.service

    def stop(self, timeout: float = 10.0) -> None:
        self.server.stop()
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_background_server(
    service: Optional[PredictionService] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: Optional[int] = None,
    farm: Optional[str] = None,
    timeout: float = 10.0,
) -> BackgroundServer:
    """Start a server on a daemon thread; returns once it is accepting."""
    server = PredictionServer(
        service, host=host, port=port, jobs=jobs, farm=farm,
    )
    started = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run(started)),
        name="serve-loop", daemon=True,
    )
    thread.start()
    if not started.wait(timeout=timeout):
        raise RuntimeError("prediction server failed to start in time")
    return BackgroundServer(server, thread)


__all__ = [
    "BackgroundServer",
    "MAX_REQUEST_BYTES",
    "PredictionServer",
    "start_background_server",
]
