"""The prediction service: a long-running, tiered query server.

The simulator answers "what does protocol P on geometry G at size S
cost?"; this package productizes that answer behind a line-delimited-JSON
server with four performance tiers (``docs/serving.md``):

* **tier 0 — analytic**: the validated closed-form laws of
  :mod:`repro.sim.analytic`, when a query opts in and its legality gate
  passes;
* **tier 1 — warm pools**: per-(geometry, network, mode) reusable
  machines (:mod:`repro.bench.warmpool`), bit-identical across reuse by
  ``Machine.rebase_time``;
* **tier 2 — memoization**: an LRU keyed on the full query identity,
  values carrying :class:`~repro.telemetry.manifest.RunManifest` results,
  backed by an on-disk cache invalidated by git rev + spec hash so
  restarts serve warm;
* **tier 3 — coalescing + batching**: duplicate in-flight queries await
  one computation, and ``sweep`` batches fan through
  :func:`~repro.bench.parallel.execute_points` (``--jobs`` /
  ``REPRO_FARM``), so a sweep farm can back large backfills.

Entry points: ``repro serve`` (the server), ``repro query`` (the
client), :mod:`repro.serve.bench` (the cold/warm/memoized/analytic
queries-per-second benchmark behind the ``serve`` entry of
``BENCH_core.json``).
"""

from repro.serve.client import ServeClient, query_server
from repro.serve.server import PredictionServer, start_background_server
from repro.serve.service import (
    DiskCache,
    MemoCache,
    PredictionService,
    QueryError,
    normalize_query,
)

__all__ = [
    "DiskCache",
    "MemoCache",
    "PredictionServer",
    "PredictionService",
    "QueryError",
    "ServeClient",
    "normalize_query",
    "query_server",
    "start_background_server",
]
