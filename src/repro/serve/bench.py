"""Queries-per-second benchmark of the prediction service's tiers.

Measures the same three headline points (the section-V crossover
protocols: ``tree-shaddr``, ``torus-shaddr``,
``allreduce-torus-shaddr``) through a **real loopback server** — socket,
JSON framing and all — under four configurations:

* **cold** — pools and memoization disabled: every query builds a fresh
  machine and runs the DES (the serial-harness baseline);
* **warm** — machine pool on, memoization off: the DES still runs, but
  on a pooled machine (``rebase_time`` reuse);
* **memo** — everything on: repeat queries are dictionary lookups;
* **analytic** — memoization off, queries opt into the closed-form fast
  path; only points a validated law covers are recorded (the law's
  answers match the DES within probe tolerance, **not** bit-identically,
  so this sweep is never digest-compared against the others).

The run **refuses to record** unless (a) every point's cold, warm and
memoized digests are bit-identical — a served answer must be the serial
answer, byte for byte — and (b) the memoized tier clears **100×** the
cold queries/sec.  The recorded ``serve`` entry's tiers gate in CI via
``repro report --check-bench --base serve:cold --new serve:memo
--tolerance 0`` (see ``entry:sweep`` labels in
:func:`repro.telemetry.manifest.compare_bench`).

Run: ``PYTHONPATH=src python -m repro.serve.bench [--smoke] [--out
BENCH_core.json] [--label serve]``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.perfsuite import DEFAULT_OUT, save_entry
from repro.serve.client import ServeClient
from repro.serve.server import start_background_server
from repro.serve.service import PredictionService
from repro.util.units import KIB

#: (sweep point label, family, algorithm, full x, smoke x) — geometry is
#: (2, 2, 2) QUAD throughout, iters=2; x values are pairwise distinct
#: within a size class because the check-bench gate keys points on x
POINTS: List[Tuple[str, str, str, int, int]] = [
    ("tree-shaddr", "bcast", "tree-shaddr", 512 * KIB, 256 * KIB),
    ("torus-shaddr", "bcast", "torus-shaddr", 1024 * KIB, 512 * KIB),
    ("allreduce-torus-shaddr", "allreduce", "allreduce-torus-shaddr",
     96 * KIB, 16 * KIB),
]

#: queries per point per tier (memo repeats dominate the qps signal; the
#: expensive tiers get just enough repeats for a stable mean)
REPEATS = {"cold": 2, "warm": 3, "memo": 200, "analytic": 5}

#: the headline acceptance bar: memoized answers at least this many
#: times more queries/sec than cold simulation
MIN_MEMO_SPEEDUP = 100.0


def _point_queries(smoke: bool) -> List[dict]:
    return [
        {
            "family": family,
            "algorithm": algorithm,
            "x": smoke_x if smoke else full_x,
            "dims": [2, 2, 2],
            "mode": "QUAD",
            "iters": 2,
        }
        for _, family, algorithm, full_x, smoke_x in POINTS
    ]


def _measure_tier(tier: str, queries: List[dict], *,
                  analytic: bool = False) -> dict:
    """Run one tier's configuration through a fresh loopback server.

    Returns a sweep record (perfsuite shape: ``points``/``wall_s``/
    ``solver``/``analytic_hits``, plus qps riders) with each point's
    digest attached for the cross-tier identity gate.
    """
    service = PredictionService(
        use_pool=(tier != "cold"),
        use_memo=(tier == "memo"),
    )
    repeats = REPEATS[tier]
    points = []
    solvers = set()
    analytic_hits = 0
    with start_background_server(service) as background:
        with ServeClient(background.address) as client:
            for query in queries:
                request = dict(query)
                if analytic:
                    request["analytic"] = True
                # Prime: pool construction / memo fill / analytic
                # calibration happens here, outside the timed window.
                if tier != "cold":
                    client.predict(**request)
                start = time.perf_counter()
                for _ in range(repeats):
                    response = client.predict(**request)
                wall = time.perf_counter() - start
                served_tier = response["tier"]
                if analytic and served_tier != "analytic":
                    # No validated law covers this point: nothing to
                    # record for the analytic sweep (never silently
                    # substitute a DES timing).
                    print(f"  [{tier}] {query['algorithm']} x={query['x']}: "
                          f"no analytic coverage (served {served_tier}); "
                          f"skipped")
                    continue
                if analytic:
                    analytic_hits += repeats
                manifest = response.get("manifest") or {}
                if manifest.get("solver_mode"):
                    solvers.add(manifest["solver_mode"])
                points.append({
                    "x": query["x"],
                    "wall_s": round(wall, 4),
                    "elapsed_us": response["elapsed_us"],
                    "qps": round(repeats / wall, 2),
                    "family": query["family"],
                    "algorithm": query["algorithm"],
                    "tier": served_tier,
                    "digest": response["digest"],
                })
                print(f"  [{tier}] {query['algorithm']} x={query['x']}: "
                      f"{repeats / wall:8.1f} q/s  "
                      f"({response['elapsed_us']:.1f} simulated us, "
                      f"served {served_tier})")
            client.shutdown()
    wall_total = sum(point["wall_s"] for point in points)
    queries_total = sum(repeats for _ in points)
    return {
        "wall_s": round(wall_total, 4),
        "solver": "+".join(sorted(solvers)) if solvers else "unknown",
        "analytic_hits": analytic_hits,
        "queries": queries_total,
        "qps": round(queries_total / wall_total, 2) if wall_total else 0.0,
        "points": points,
    }


def _strip_gate_only_fields(record: dict) -> dict:
    """Drop per-point fields that should not be committed to the entry.

    Digests are the *gate's* evidence; committing them would turn every
    unrelated refactor that legitimately changes simulated timings into
    a stale-digest diff.  The tier tag rides along (it is informative
    and stable).
    """
    slim = dict(record)
    slim["points"] = [
        {key: value for key, value in point.items() if key != "digest"}
        for point in record["points"]
    ]
    return slim


def run_benchmark(out: str, label: str, smoke: bool) -> Dict[str, dict]:
    queries = _point_queries(smoke)
    suite_start = time.perf_counter()
    print(f"serve qps benchmark ({'smoke' if smoke else 'full'} sizes), "
          f"3 points, repeats {REPEATS}")
    records = {
        "cold": _measure_tier("cold", queries),
        "warm": _measure_tier("warm", queries),
        "memo": _measure_tier("memo", queries),
        "analytic": _measure_tier("analytic", queries, analytic=True),
    }

    # -- acceptance gates (refuse to record a lying entry) ----------------
    problems: List[str] = []
    for cold_pt, warm_pt, memo_pt in zip(
        records["cold"]["points"], records["warm"]["points"],
        records["memo"]["points"],
    ):
        digests = {cold_pt["digest"], warm_pt["digest"], memo_pt["digest"]}
        if len(digests) != 1:
            problems.append(
                f"{cold_pt['algorithm']} x={cold_pt['x']}: cold/warm/memo "
                f"answers are not bit-identical ({sorted(digests)})"
            )
    speedup = (
        records["memo"]["qps"] / records["cold"]["qps"]
        if records["cold"]["qps"] else 0.0
    )
    if speedup < MIN_MEMO_SPEEDUP:
        problems.append(
            f"memoized tier is only {speedup:.1f}x cold "
            f"({records['memo']['qps']} vs {records['cold']['qps']} q/s); "
            f"need >= {MIN_MEMO_SPEEDUP:.0f}x"
        )
    if problems:
        print("REFUSING to record the serve entry:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        raise SystemExit(1)

    if not records["analytic"]["points"]:
        print("  (no analytic coverage at these sizes; entry records "
              "cold/warm/memo only)")
        del records["analytic"]

    sweeps = {
        name: _strip_gate_only_fields(record)
        for name, record in records.items()
    }
    sweeps["__meta__"] = {
        "recorded_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "jobs": 1,
        "cpus": os.cpu_count(),
        "wall_s": round(time.perf_counter() - suite_start, 4),
    }
    save_entry(out, label, sweeps, smoke)
    print(f"\ntier qps (aggregate over {len(queries)} points):")
    for name, record in records.items():
        print(f"  {name:9s} {record['qps']:10.1f} q/s")
    print(f"  memo/cold speedup: {speedup:.0f}x (gate: >= "
          f"{MIN_MEMO_SPEEDUP:.0f}x)")
    print(f"recorded entry {label!r} in {out}")
    return records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the prediction service's serving tiers",
    )
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="results file (default: %(default)s)")
    parser.add_argument("--label", default="serve",
                        help="entry label (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes (CI); full sizes otherwise")
    arguments = parser.parse_args(argv)
    run_benchmark(arguments.out, arguments.label, arguments.smoke)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
