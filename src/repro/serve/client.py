"""A small blocking client for the prediction server's line protocol.

:class:`ServeClient` keeps one TCP connection open and exchanges
newline-delimited JSON request/response pairs — the persistent
connection is what makes memoized queries cheap end to end (no TCP
handshake per query).  :func:`query_server` is the one-shot convenience
behind ``repro query``.

Responses with ``ok: false`` raise :class:`ServeRequestError` carrying
the server's error message, so callers never mistake a refusal for an
answer.
"""

from __future__ import annotations

import json
import socket
from typing import List, Optional, Tuple, Union

Address = Union[str, Tuple[str, int]]


class ServeRequestError(RuntimeError):
    """The server answered ``ok: false``; carries its error message."""

    def __init__(self, message: str, *, error_type: Optional[str] = None,
                 response: Optional[dict] = None):
        super().__init__(message)
        self.error_type = error_type
        self.response = response or {}


def parse_address(address: Address) -> Tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"server address must look like host:port, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(
            f"server address port must be an integer, got {port!r}"
        ) from exc


class ServeClient:
    """One persistent connection to a prediction server.

    Lazily connects on first request; usable as a context manager.  All
    methods raise :class:`ServeRequestError` when the server refuses the
    request and :class:`ConnectionError`/``socket.timeout`` on transport
    trouble.
    """

    def __init__(self, address: Address, *, timeout: float = 300.0):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    # -- transport ---------------------------------------------------------
    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout,
        )
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, payload: dict, *, check: bool = True) -> dict:
        """Send one request object; return the server's response object."""
        line = json.dumps(payload, sort_keys=True).encode("ascii") + b"\n"
        raw = b""
        for attempt in (0, 1):
            # A dead persistent connection (server restart, idle drop)
            # surfaces either as an OSError or as an empty read — the
            # send itself often "succeeds" into a dead socket's buffer.
            # One clean reconnect attempt, then give up loudly.
            self.connect()
            try:
                self._sock.sendall(line)
                raw = self._rfile.readline()
            except OSError:
                self.close()
                if attempt:
                    raise
                continue
            if raw:
                break
            self.close()
        if not raw:
            raise ConnectionError(
                f"prediction server at {self.host}:{self.port} closed the "
                f"connection mid-request"
            )
        response = json.loads(raw)
        if check and not response.get("ok", False):
            raise ServeRequestError(
                response.get("error", "request refused"),
                error_type=response.get("error_type"),
                response=response,
            )
        return response

    # -- ops ---------------------------------------------------------------
    def predict(self, **query) -> dict:
        return self.request({**query, "op": "predict"})

    def select(self, **query) -> dict:
        return self.request({**query, "op": "select"})

    def sweep(self, points: List[dict], *, jobs: Optional[int] = None) -> dict:
        payload = {"op": "sweep", "points": points}
        if jobs is not None:
            payload["jobs"] = jobs
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})


def query_server(address: Address, payload: dict, *,
                 timeout: float = 300.0, check: bool = True) -> dict:
    """One-shot request/response against a running server."""
    with ServeClient(address, timeout=timeout) as client:
        return client.request(payload, check=check)


__all__ = [
    "Address",
    "ServeClient",
    "ServeRequestError",
    "parse_address",
    "query_server",
]
