"""The tiered prediction service core (transport-free).

:class:`PredictionService` turns one normalized query — *what does
protocol P on geometry G at size S cost?* — into a
:class:`~repro.collectives.base.CollectiveResult` as cheaply as
possible, walking the tiers from cheapest to dearest:

1. **memo** — an in-memory LRU (:class:`MemoCache`) keyed on the full
   query identity ``(family, protocol, geometry, network, mode, size,
   iters, seed, root, window caching, steady-state, analytic, faults,
   solver mode)``;
2. **disk** — the same entries persisted by :class:`DiskCache`, so a
   restarted server answers repeat queries without re-simulating;
3. **analytic** — the validated closed-form laws of
   :mod:`repro.sim.analytic`, when the query opts in
   (``"analytic": true``) and the legality gate passes;
4. **warm** — a full DES run on a pooled machine
   (:class:`~repro.bench.warmpool.WarmMachinePool` — construction
   amortized, results bit-identical to a fresh machine);
5. **cold** — a full DES run on a freshly built machine.

Every served answer carries the SHA-256 of its pinned-protocol pickle
(:func:`repro.bench.farm.pickle_digest`), so a client can prove that a
memoized or warm-pool answer is **bit-identical** to a cold serial run —
the same byte-identity currency the sweep farm journals.

Cache identity and invalidation
-------------------------------

The cache key is the :func:`~repro.telemetry.manifest.spec_fingerprint`
of the normalized executable spec plus the resolved solver mode — the
very identity the sweep farm's :class:`CampaignManifest` uses, collapsed
to one point.  The on-disk cache adds the **git revision** as a header:
a cache written by different code is refused wholesale (and truncated),
never silently served; a tampered entry (spec hash or payload digest
mismatch) is dropped individually.  Flipping a solver env var changes
the resolved solver mode and therefore the key, so entries recorded
under another solver are simply never looked up.

The service is synchronous and single-simulation by design; the asyncio
server (:mod:`repro.serve.server`) runs it on a one-thread executor and
adds in-flight coalescing and sweep batching on top.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

from repro.bench.farm import pickle_digest
from repro.bench.harness import FAMILY_SPECS, run_collective
from repro.bench.warmpool import WarmMachinePool
from repro.collectives.base import CollectiveResult
from repro.collectives.registry import algorithm_info
from repro.collectives.selection import select_protocol
from repro.hardware.machine import Machine, Mode
from repro.hardware.network import UnsupportedTopologyError, known_backends
from repro.sim.config import resolve_solver_config
from repro.telemetry.manifest import git_revision, spec_fingerprint
from repro.telemetry.runtime import MetricsRegistry, runtime_log, span

#: pinned (with the farm's pickle protocol) so cache payloads written by
#: one process byte-compare in another
_PICKLE_PROTOCOL = 4

#: the fingerprint namespace: one query == a one-point campaign
_FINGERPRINT_TASK = "serve-predict"

#: on-disk cache format version (bumped on incompatible layout changes)
DISK_CACHE_VERSION = 1

#: service latency samples kept for the p50/p95 stats (ring buffer)
_LATENCY_WINDOW = 2048

#: structured logger for cache lifecycle events (bare messages: these
#: lines predate the runtime plane and keep their historical shape)
_cache_log = runtime_log("serve.cache")


class QueryError(ValueError):
    """A malformed or unservable query (reported to the client, not raised
    through the server loop)."""


# -- normalization --------------------------------------------------------

#: spec fields run_point/run_collective accept, with serve defaults
_SPEC_DEFAULTS = {
    "dims": (2, 2, 2),
    "mode": "QUAD",
    "wrap": True,
    "network": "torus",
    "iters": 1,
    "seed": 1234,
    "root": 0,
    "window_caching": True,
}

#: optional fields forwarded only when the client sets them
_SPEC_OPTIONAL = ("steady_state", "analytic")

#: request fields the serving layer refuses (the service is timing-only
#: and fault-free; these would silently change what "the same query"
#: means or cannot cross the JSON boundary faithfully)
_REFUSED_FIELDS = ("verify", "payload", "deadline_us", "working_set_override",
                   "fresh_machine")

_KNOWN_FIELDS = frozenset(
    ("family", "algorithm", "x", "faults")
    + tuple(_SPEC_DEFAULTS) + _SPEC_OPTIONAL
)


def normalize_query(request: dict) -> dict:
    """Canonicalize one predict request into an executable point spec.

    The result is exactly a :func:`repro.bench.parallel.run_point` spec —
    the same dict the sweep endpoint fans through ``execute_points`` —
    with every default made explicit so the spec is its own cache
    identity.  ``algorithm: "auto"`` is resolved through the section-V
    selection table here, so the cache key is always a concrete
    protocol.  Raises :class:`QueryError` on unknown fields, refused
    fields, or unservable values.
    """
    if not isinstance(request, dict):
        raise QueryError(f"query must be a JSON object, got {type(request).__name__}")
    for fld in _REFUSED_FIELDS:
        if request.get(fld):
            raise QueryError(
                f"the prediction service is timing-only and fault-free; "
                f"field {fld!r} is not servable"
            )
    if request.get("faults") not in (None, [], {}):
        raise QueryError(
            "fault schedules are not servable; run `repro chaos` for "
            "fault campaigns"
        )
    unknown = set(request) - _KNOWN_FIELDS - {"op", "id", "jobs", "measure"}
    if unknown:
        raise QueryError(f"unknown query field(s): {sorted(unknown)}")

    family = request.get("family")
    if family not in FAMILY_SPECS:
        raise QueryError(
            f"unknown collective family {family!r}; known: "
            f"{sorted(FAMILY_SPECS)}"
        )
    try:
        x = int(request.get("x", 0))
    except (TypeError, ValueError):
        raise QueryError(f"x must be an integer, got {request.get('x')!r}")
    if x < 0:
        raise QueryError(f"x must be >= 0, got {x}")

    spec = {"family": family, "algorithm": request.get("algorithm", "auto"),
            "x": x}
    for fld, default in _SPEC_DEFAULTS.items():
        spec[fld] = request.get(fld, default)
    for fld in _SPEC_OPTIONAL:
        if fld in request and request[fld] is not None:
            spec[fld] = bool(request[fld])

    dims = spec["dims"]
    if isinstance(dims, str):
        try:
            dims = tuple(int(part) for part in dims.lower().split("x"))
        except ValueError:
            raise QueryError(f"dims must look like 4x4x4, got {dims!r}")
    try:
        dims = tuple(int(d) for d in dims)
    except (TypeError, ValueError):
        raise QueryError(f"dims must be three integers, got {spec['dims']!r}")
    if len(dims) != 3 or any(d < 1 for d in dims):
        raise QueryError(f"dims must be three positive integers, got {dims}")
    spec["dims"] = dims

    mode = str(spec["mode"]).upper()
    if mode not in Mode.__members__:
        raise QueryError(
            f"mode must be one of {sorted(Mode.__members__)}, got "
            f"{spec['mode']!r}"
        )
    spec["mode"] = mode
    spec["wrap"] = bool(spec["wrap"])
    if spec["network"] not in known_backends():
        raise QueryError(
            f"unknown network {spec['network']!r}; known: {known_backends()}"
        )
    try:
        spec["iters"] = int(spec["iters"])
        spec["seed"] = int(spec["seed"])
        spec["root"] = int(spec["root"])
    except (TypeError, ValueError):
        raise QueryError("iters, seed and root must be integers")
    if spec["iters"] < 1:
        raise QueryError(f"iters must be >= 1, got {spec['iters']}")
    spec["window_caching"] = bool(spec["window_caching"])

    if spec["algorithm"] == "auto":
        fam_spec = FAMILY_SPECS[family]
        if fam_spec.select_nbytes is None:
            raise QueryError(f"family {family!r} has no auto-selection policy")
        ppn = Mode[mode].value
        # The select_nbytes adapters only consult geometry-free fields;
        # a lightweight stand-in keeps normalization machine-free.
        proxy = SimpleNamespace(ppn=ppn, nprocs=ppn * dims[0] * dims[1] * dims[2])
        spec["algorithm"] = select_protocol(
            family, fam_spec.select_nbytes(proxy, x), ppn,
            network=spec["network"],
        )
    else:
        # Surface lookup typos at normalize time, not deep in a worker.
        algorithm_info(family, spec["algorithm"])
    return spec


def query_key(spec: dict) -> str:
    """The cache identity of a normalized spec.

    A :func:`spec_fingerprint` (the ``CampaignManifest`` identity,
    collapsed to one point) over the executable spec *plus* the resolved
    solver mode — two processes running different solver configurations
    never share a key, so a cache can never serve a vectorized answer to
    a slowpath client (they are bit-identical by construction, but the
    manifest's ``solver_mode`` attribution would lie).
    """
    keyed = dict(spec)
    keyed["solver_mode"] = resolve_solver_config().mode
    keyed["faults"] = None
    return spec_fingerprint(_FINGERPRINT_TASK, [keyed])


# -- caches ---------------------------------------------------------------

@dataclass
class CachedAnswer:
    """One memoized answer: the result plus its byte-identity digest."""

    result: CollectiveResult
    digest: str
    spec: dict


class MemoCache:
    """A bounded LRU of :class:`CachedAnswer` keyed by query fingerprint."""

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedAnswer]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[CachedAnswer]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, answer: CachedAnswer) -> None:
        self._entries[key] = answer
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class DiskCache:
    """Manifest-keyed persistent cache: restarts serve warm, stale refused.

    Layout: append-only JSONL.  The first line is a header carrying the
    cache version and the **git revision** that computed the entries;
    each following line is one entry::

        {"kind": "result", "key": <spec fingerprint>, "spec": {...},
         "digest": sha256(pickle), "data": base64(pickle)}

    Loading re-derives every entry's fingerprint from its stored spec and
    re-hashes its payload; an entry whose key or digest does not match is
    **dropped, never served** — same for the whole file when the header's
    git revision differs from the running code's (the file is truncated
    so it cannot shadow fresh entries forever).  A torn trailing line (a
    crash mid-append) is tolerated and dropped.
    """

    def __init__(self, path: str):
        self.path = path
        self._entries: Dict[str, Tuple[str, bytes, dict]] = {}
        self.loaded = 0
        self.dropped = 0
        self.stale_git_rev: Optional[str] = None
        self._header_written = False
        self._load()

    # -- loading ----------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        lines = raw.split(b"\n")
        if raw.endswith(b"\n"):
            lines = lines[:-1]
        elif lines:
            # Newline-less tail == torn final append: drop it.
            lines = lines[:-1]
            self.dropped += 1
        if not lines:
            return
        try:
            header = json.loads(lines[0])
            assert header.get("kind") == "header"
        except (ValueError, AssertionError):
            _cache_log.warning(
                "cache_header_unreadable",
                f"serve cache {self.path}: unreadable header; refusing "
                f"the whole file",
                legacy=True, path=self.path, dropped=len(lines),
            )
            self.dropped += len(lines)
            return
        if header.get("version") != DISK_CACHE_VERSION:
            _cache_log.warning(
                "cache_version_mismatch",
                f"serve cache {self.path}: version "
                f"{header.get('version')!r} != {DISK_CACHE_VERSION}; "
                f"refusing the whole file",
                legacy=True, path=self.path,
                found=header.get("version"), expected=DISK_CACHE_VERSION,
            )
            self.dropped += len(lines) - 1
            return
        rev = git_revision()
        if header.get("git_rev") != rev:
            # Stale manifests are refused, never silently served: results
            # recorded by other code may not be byte-identical to ours.
            self.stale_git_rev = header.get("git_rev")
            self.dropped += len(lines) - 1
            _cache_log.warning(
                "cache_stale_git_rev",
                f"serve cache {self.path}: recorded at git rev "
                f"{self.stale_git_rev!r}, running {rev!r}; refusing "
                f"{len(lines) - 1} stale entr(ies)",
                legacy=True, path=self.path,
                recorded_rev=self.stale_git_rev, running_rev=rev,
                dropped=len(lines) - 1,
            )
            return
        self._header_written = True
        for line in lines[1:]:
            if self._load_entry(line):
                self.loaded += 1
            else:
                self.dropped += 1

    def _load_entry(self, line: bytes) -> bool:
        try:
            record = json.loads(line)
            if record.get("kind") != "result":
                return False
            key = record["key"]
            spec = record["spec"]
            data = base64.b64decode(record["data"].encode("ascii"))
            if hashlib.sha256(data).hexdigest() != record["digest"]:
                return False
        except (ValueError, KeyError, TypeError):
            return False
        # The spec hash is the entry's identity: recompute it from the
        # stored spec so a tampered or mislabeled entry cannot be served
        # under a key it does not own.
        spec = dict(spec)
        if "dims" in spec:
            spec["dims"] = tuple(spec["dims"])
        expected = dict(spec)
        expected.pop("solver_mode", None)
        expected.pop("faults", None)
        if query_key(expected) != key:
            return False
        self._entries[key] = (record["digest"], data, expected)
        return True

    # -- serving ----------------------------------------------------------
    def get(self, key: str) -> Optional[CachedAnswer]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        digest, data, spec = entry
        try:
            result = _restricted_loads(data)
        except Exception:
            del self._entries[key]
            self.dropped += 1
            return None
        return CachedAnswer(result=result, digest=digest, spec=spec)

    def __len__(self) -> int:
        return len(self._entries)

    # -- storing ----------------------------------------------------------
    def put(self, key: str, answer: CachedAnswer) -> None:
        data = pickle.dumps(answer.result, protocol=_PICKLE_PROTOCOL)
        spec = dict(answer.spec)
        spec["solver_mode"] = resolve_solver_config().mode
        spec["faults"] = None
        record = {
            "kind": "result",
            "key": key,
            "spec": spec,
            "digest": hashlib.sha256(data).hexdigest(),
            "data": base64.b64encode(data).decode("ascii"),
        }
        mode = "a" if self._header_written else "w"
        with open(self.path, mode) as handle:
            if not self._header_written:
                json.dump({
                    "kind": "header",
                    "version": DISK_CACHE_VERSION,
                    "git_rev": git_revision(),
                }, handle, sort_keys=True, separators=(",", ":"))
                handle.write("\n")
                self._header_written = True
            json.dump(record, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[key] = (
            record["digest"], base64.b64decode(record["data"]), answer.spec,
        )

    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "entries": len(self._entries),
            "loaded": self.loaded,
            "dropped": self.dropped,
            "stale_git_rev": self.stale_git_rev,
        }


#: modules/classes the disk cache's unpickler will construct — results
#: are CollectiveResult + RunManifest + builtin containers, nothing else
_UNPICKLE_ALLOWED = {
    ("repro.collectives.base", "CollectiveResult"),
    ("repro.telemetry.manifest", "RunManifest"),
}


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler for on-disk cache payloads: result types only.

    A serve cache file lives on disk between runs; refusing arbitrary
    globals keeps a doctored file from escalating a cache read into code
    execution (the farm accepts this risk on its *authenticated* wire;
    an unauthenticated file on disk should not).
    """

    def find_class(self, module, name):
        if (module, name) in _UNPICKLE_ALLOWED:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"serve cache payloads may not reference {module}.{name}"
        )


def _restricted_loads(data: bytes):
    return _RestrictedUnpickler(io.BytesIO(data)).load()


# -- stats ----------------------------------------------------------------

def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    rank = max(0, min(len(samples) - 1, int(round(q * (len(samples) - 1)))))
    return samples[rank]


def _summarize_latencies(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
        "mean_ms": round(sum(ordered) / len(ordered) * 1e3, 3),
    }


@dataclass
class ServiceStats:
    """Observable behaviour of the service: tier hits and latencies.

    Mutators are written from the server's compute worker thread while
    ``stats_snapshot`` reads on the asyncio thread, so every mutation
    and every read goes through one lock.  Callers mutate via the
    ``record_*`` methods only — never touch the fields directly.

    Besides the global latency ring, each tier keeps its own window
    (``tier_latencies_s``): a memo hit and a cold DES run differ by
    orders of magnitude, and one shared ring hides that behind a
    meaningless blended p95.  When a :class:`MetricsRegistry` is
    attached, latencies are also observed into histograms live (ring
    buffers forget; histograms don't).
    """

    tiers: Dict[str, int] = field(default_factory=lambda: {
        "analytic": 0, "memo": 0, "disk": 0, "warm": 0, "cold": 0,
        "batch": 0,
    })
    coalesced: int = 0
    errors: int = 0
    requests: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    tier_latencies_s: Dict[str, List[float]] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False,
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False,
    )

    def record_tier(self, tier: str) -> None:
        with self._lock:
            self.tiers[tier] = self.tiers.get(tier, 0) + 1

    def record_request(self, op: str, n: int = 1) -> None:
        with self._lock:
            self.requests[op] = self.requests.get(op, 0) + n

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def _observe_tier(self, seconds: float, tier: Optional[str]) -> None:
        # Caller holds the lock.
        if tier is not None:
            ring = self.tier_latencies_s.setdefault(tier, [])
            ring.append(seconds)
            if len(ring) > _LATENCY_WINDOW:
                del ring[: len(ring) - _LATENCY_WINDOW]
        if self.registry is not None:
            self.registry.histogram(
                "serve_request_latency_seconds",
                "end-to-end serve latency per request",
            ).observe(seconds)
            if tier is not None:
                self.registry.histogram(
                    "serve_tier_latency_seconds",
                    "serve latency split by answering tier",
                ).observe(seconds, tier=tier)

    def record_latency(self, seconds: float,
                       tier: Optional[str] = None) -> None:
        with self._lock:
            self.latencies_s.append(seconds)
            if len(self.latencies_s) > _LATENCY_WINDOW:
                del self.latencies_s[: len(self.latencies_s) - _LATENCY_WINDOW]
            self._observe_tier(seconds, tier)

    def record_tier_latency(self, seconds: float, tier: str) -> None:
        """A per-tier sample that is *not* an end-to-end request (the
        server records request latency separately at the dispatch loop)."""
        with self._lock:
            self._observe_tier(seconds, tier)

    def latency_summary(self) -> Dict[str, float]:
        with self._lock:
            samples = list(self.latencies_s)
        return _summarize_latencies(samples)

    def latency_by_tier(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            windows = {
                tier: list(ring)
                for tier, ring in self.tier_latencies_s.items()
            }
        return {
            tier: _summarize_latencies(samples)
            for tier, samples in sorted(windows.items())
        }

    def snapshot(self) -> dict:
        """A consistent copy of every counter under one lock acquisition."""
        with self._lock:
            return {
                "tiers": dict(self.tiers),
                "coalesced": self.coalesced,
                "errors": self.errors,
                "requests": dict(self.requests),
                "latencies_s": list(self.latencies_s),
                "tier_latencies_s": {
                    tier: list(ring)
                    for tier, ring in self.tier_latencies_s.items()
                },
            }


# -- the service ----------------------------------------------------------

class PredictionService:
    """Tier walker: memo -> disk -> (analytic | warm | cold) -> store.

    ``use_pool=False`` builds a fresh machine per computation (the
    benchmark's cold tier); ``max_memo``/``cache_path`` size the memo LRU
    and enable the on-disk cache; ``analytic_default=True`` opts every
    query into the analytic fast path unless it explicitly says
    ``"analytic": false``.

    The service itself is synchronous and runs one simulation at a time;
    thread-safety of the *caches* is the caller's concern (the asyncio
    server funnels every compute through a one-thread executor).
    """

    def __init__(
        self,
        *,
        max_memo: int = 1024,
        max_machines: Optional[int] = None,
        cache_path: Optional[str] = None,
        use_pool: bool = True,
        use_memo: bool = True,
        analytic_default: bool = False,
    ):
        self.memo = MemoCache(max_memo)
        self.disk = DiskCache(cache_path) if cache_path else None
        self.pool = (
            WarmMachinePool(max_machines)
            if use_pool and max_machines is not None
            else (WarmMachinePool() if use_pool else None)
        )
        self.use_memo = use_memo
        self.analytic_default = analytic_default
        # Per-instance registry (tests build many services; a process
        # global would blend their counts and break exposition == stats).
        self.registry = MetricsRegistry()
        self.stats = ServiceStats(registry=self.registry)
        self.started_at = time.time()

    # -- lookup (cheap; safe on the event-loop thread) --------------------
    def normalize(self, request: dict) -> Tuple[dict, str]:
        spec = normalize_query(request)
        if self.analytic_default and "analytic" not in spec:
            spec["analytic"] = True
        return spec, query_key(spec)

    def lookup(self, key: str) -> Optional[Tuple[CachedAnswer, str]]:
        """A cached answer and the tier it came from, or None."""
        if not self.use_memo:
            return None
        answer = self.memo.get(key)
        if answer is not None:
            return answer, "memo"
        if self.disk is not None:
            answer = self.disk.get(key)
            if answer is not None:
                # Promote: repeat queries stay O(dict) after a restart.
                self.memo.put(key, answer)
                return answer, "disk"
        return None

    # -- compute (expensive; the server calls this off-loop) --------------
    def compute(self, spec: dict) -> Tuple[CachedAnswer, str]:
        """Run the point through analytic/warm/cold; returns (answer, tier)."""
        dims, mode = spec["dims"], spec["mode"]
        wrap, network = spec["wrap"], spec["network"]
        # A barrier installs no working set, so a pooled machine would
        # leak the previous point's memory regime into it — always fresh
        # (the same rule run_point applies).
        if self.pool is not None and spec["family"] != "barrier":
            machine, warm = self.pool.checkout(
                dims, mode=mode, wrap=wrap, network=network,
            )
        else:
            machine = Machine(
                torus_dims=tuple(dims), mode=Mode[mode], wrap=wrap,
                network=network,
            )
            warm = False
        kwargs = {
            key: spec[key]
            for key in ("root", "iters", "seed", "window_caching",
                        "steady_state", "analytic")
            if key in spec
        }
        result = run_collective(
            machine, spec["family"], spec["algorithm"], spec["x"], **kwargs
        )
        served_analytic = (
            result.manifest is not None and result.manifest.analytic
        )
        tier = "analytic" if served_analytic else ("warm" if warm else "cold")
        answer = CachedAnswer(
            result=result, digest=pickle_digest(result), spec=spec,
        )
        return answer, tier

    def store(self, key: str, answer: CachedAnswer) -> None:
        if not self.use_memo:
            return
        self.memo.put(key, answer)
        if self.disk is not None:
            self.disk.put(key, answer)

    # -- one-call convenience (benchmark, tests, serial callers) ----------
    def serve(self, request: dict, *,
              trace_parent: Optional[dict] = None) -> dict:
        """Normalize, look up, compute-and-store; returns the response dict."""
        start = time.perf_counter()
        with span("serve.predict", "serve", parent=trace_parent,
                  family=request.get("family"),
                  algorithm=request.get("algorithm", "auto"),
                  x=request.get("x")) as sp:
            spec, key = self.normalize(request)
            cached = self.lookup(key)
            if cached is not None:
                answer, tier = cached
            else:
                answer, tier = self.compute(spec)
                self.store(key, answer)
            sp.set(tier=tier, key=key)
        self.stats.record_tier(tier)
        self.stats.record_latency(time.perf_counter() - start, tier=tier)
        return answer_response(answer, tier, key)

    # -- stats ------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        snap = self.stats.snapshot()
        total = sum(snap["tiers"].values())
        return {
            "tiers": snap["tiers"],
            "hit_rates": {
                tier: (round(count / total, 4) if total else 0.0)
                for tier, count in snap["tiers"].items()
            },
            "coalesced": snap["coalesced"],
            "errors": snap["errors"],
            "requests": snap["requests"],
            "memo": self.memo.stats() if self.use_memo else None,
            "disk": self.disk.stats() if self.disk is not None else None,
            "pool": self.pool.stats() if self.pool is not None else None,
            "latency": _summarize_latencies(snap["latencies_s"]),
            "latency_by_tier": {
                tier: _summarize_latencies(samples)
                for tier, samples in sorted(snap["tier_latencies_s"].items())
            },
            "uptime_s": round(time.time() - self.started_at, 3),
            "solver_mode": resolve_solver_config().mode,
            "git_rev": git_revision(),
        }

    # -- metrics ----------------------------------------------------------
    def _sync_metrics(self) -> None:
        """Sync the registry's counters/gauges to the authoritative stats.

        Latency histograms are observed live; everything countable is
        synced here at exposition time from one locked stats snapshot,
        so a scrape can never disagree with ``stats_snapshot``.
        """
        snap = self.stats.snapshot()
        reg = self.registry
        tier_answers = reg.counter(
            "serve_tier_answers_total", "answers served, split by tier",
        )
        for tier, count in snap["tiers"].items():
            tier_answers.set_total(count, tier=tier)
        requests = reg.counter(
            "serve_requests_total", "requests received, split by op",
        )
        for op, count in snap["requests"].items():
            requests.set_total(count, op=op)
        reg.counter(
            "serve_coalesced_total",
            "duplicate in-flight queries coalesced onto one computation",
        ).set_total(snap["coalesced"])
        reg.counter(
            "serve_errors_total", "requests answered with an error",
        ).set_total(snap["errors"])
        if self.use_memo:
            memo = self.memo.stats()
            reg.counter(
                "serve_memo_hits_total", "memo LRU hits",
            ).set_total(memo["hits"])
            reg.counter(
                "serve_memo_misses_total", "memo LRU misses",
            ).set_total(memo["misses"])
            reg.gauge(
                "serve_memo_entries", "entries resident in the memo LRU",
            ).set(memo["entries"])
        if self.disk is not None:
            reg.gauge(
                "serve_disk_entries", "entries resident in the disk cache",
            ).set(len(self.disk))
        if self.pool is not None:
            pool = self.pool.stats()
            reg.gauge(
                "serve_pool_machines", "machines resident in the warm pool",
            ).set(pool["machines"])
        reg.gauge(
            "serve_uptime_seconds", "seconds since service start",
        ).set(round(time.time() - self.started_at, 3))

    def metrics_snapshot(self) -> dict:
        self._sync_metrics()
        return self.registry.snapshot()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the synced registry."""
        self._sync_metrics()
        return self.registry.dump_metrics()


def answer_response(answer: CachedAnswer, tier: str, key: str) -> dict:
    """The JSON body of one served prediction."""
    result = answer.result
    manifest = result.manifest
    return {
        "ok": True,
        "tier": tier,
        "key": key,
        "family": answer.spec["family"],
        "algorithm": result.algorithm,
        "x": answer.spec["x"],
        "nbytes": result.nbytes,
        "nprocs": result.nprocs,
        "elapsed_us": result.elapsed_us,
        "bandwidth_mbs": result.bandwidth_mbs,
        "iterations_us": list(result.iterations_us),
        "digest": answer.digest,
        "manifest": manifest.to_dict() if manifest is not None else None,
        "spec": {**answer.spec, "dims": list(answer.spec["dims"])},
    }


__all__ = [
    "CachedAnswer",
    "DiskCache",
    "MemoCache",
    "PredictionService",
    "QueryError",
    "ServiceStats",
    "answer_response",
    "normalize_query",
    "query_key",
    "UnsupportedTopologyError",
]
