"""The multi-color rectangle network schedule over the torus.

All torus broadcast variants share the same *inter-node* data movement (the
six-color rectangle algorithm of section V-A-1, Fig 2); they differ only in
the intra-node "fourth dimension".  :class:`TorusBcastNetwork` runs the
network side and exposes a per-chunk arrival hook that each variant's
intra-node scheme subscribes to.

Structure per color:

* the message is partitioned across colors (each color carries an exclusive
  contiguous byte range) and each partition is pipelined in chunks;
* every node that receives in phase *p* relays along the remaining phase
  dimensions; a dedicated *forwarder* service coroutine per (node, color,
  relay-dim) posts one line broadcast per chunk, in order, modelling the
  DMA's in-order injection FIFO per connection;
* chunk arrival at a node bumps that node's per-color and aggregate byte
  counters (the objects the paper's software message counters mirror) and
  fires the intra-node hook.

Everything is armed at construction but waits for :attr:`start` so that the
measured window begins at the post-barrier start of the collective.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.collectives.base import InvocationBase
from repro.msg.color import Color, partition_bytes, torus_colors
from repro.msg.pipeline import ChunkPlan
from repro.msg.routes import RectangleSchedule
from repro.sim.events import Event
from repro.sim.sync import SimCounter

#: hook signature: (node_index, color_id, global_offset, size)
ChunkHook = Callable[[int, int, int, int], None]


class TorusBcastNetwork:
    """Runs the rectangle schedule; variants hook intra-node handling."""

    def __init__(
        self,
        inv: InvocationBase,
        ncolors: int,
        chunk_bytes: int,
        external_root_feed: bool = False,
        align: int = 1,
    ):
        machine = inv.machine
        #: when True, the root's data becomes available color by color as an
        #: external producer (e.g. the allreduce's ring reduction) feeds it
        #: via :meth:`feed_root`, pipelining reduction into broadcast.
        self.external_root_feed = external_root_feed
        self.inv = inv
        self.machine = machine
        self.torus = machine.torus
        self.engine = machine.engine
        self.root_node = machine.rank_to_node(inv.root)
        # A mesh supports only three edge-disjoint routes (section V-A-1).
        if not machine.torus.wrap:
            ncolors = min(ncolors, 3)
        self.colors: List[Color] = torus_colors(ncolors)
        parts = partition_bytes(inv.nbytes, ncolors, align=align)
        offsets = [sum(parts[:i]) for i in range(ncolors)]
        self.plans: List[Tuple[int, ChunkPlan]] = [
            (offsets[i], ChunkPlan.build(parts[i], chunk_bytes))
            for i in range(ncolors)
        ]
        self.total_chunks_per_node = sum(
            plan.nchunks for _off, plan in self.plans
        )
        #: gate opened by the harness when the measured window starts
        self.start = Event(self.engine)
        #: per-node aggregate bytes landed (all colors)
        self.node_received: List[SimCounter] = [
            SimCounter(self.engine, name=f"n{n}.rcvd")
            for n in range(machine.nnodes)
        ]
        #: per-(color, node) bytes of that color's partition landed
        self._color_received: Dict[Tuple[int, int], SimCounter] = {}
        self._hooks: List[ChunkHook] = []
        self._deliveries: Dict[Tuple[int, int, int], Event] = {}
        self._build()

    # -- public -----------------------------------------------------------
    def on_chunk(self, hook: ChunkHook) -> None:
        """Subscribe an intra-node hook fired at every chunk arrival."""
        self._hooks.append(hook)

    def open(self) -> None:
        """Open the start gate (called once, at measured-window start)."""
        self.start.trigger(None)

    def feed_root(self, color_id: int, nbytes: int) -> None:
        """External producer: ``nbytes`` more of this color's partition are
        now available at the root node (only with ``external_root_feed``)."""
        if not self.external_root_feed:
            raise RuntimeError("network was not built with external_root_feed")
        self._color_received[(color_id, self.root_node)].add(nbytes)

    # -- construction ----------------------------------------------------
    def _build(self) -> None:
        machine = self.machine
        for color, (color_off, plan) in zip(self.colors, self.plans):
            if plan.nchunks == 0:
                continue
            sched = RectangleSchedule(self.torus, self.root_node, color)
            for node in range(machine.nnodes):
                self._color_received[(color.id, node)] = SimCounter(
                    self.engine, name=f"c{color.id}.n{node}.rcvd"
                )
            for node in range(machine.nnodes):
                role = sched.role(node)
                if role.receive_phase >= 0:
                    for k in range(plan.nchunks):
                        self._deliveries[(color.id, k, node)] = Event(self.engine)
                    machine.spawn(
                        self._receiver(color, color_off, plan, node),
                        name=f"rx.c{color.id}.n{node}",
                    )
                else:
                    machine.spawn(
                        self._root_source(color, color_off, plan, node),
                        name=f"src.c{color.id}.n{node}",
                    )
                for _phase, dim in role.relays:
                    machine.spawn(
                        self._forwarder(color, sched, plan, node, dim),
                        name=f"fw.c{color.id}.n{node}.d{dim}",
                    )

    # -- service coroutines --------------------------------------------------
    def _announce(self, node: int, color: Color, goff: int, size: int) -> None:
        self.node_received[node].add(size)
        for hook in self._hooks:
            hook(node, color.id, goff, size)

    def _root_source(self, color: Color, color_off: int, plan: ChunkPlan,
                     node: int):
        """Announce the root's partition: all at start (broadcast), or chunk
        by chunk as an external producer feeds it (pipelined allreduce)."""
        yield self.start
        received = self._color_received[(color.id, node)]
        if self.external_root_feed:
            for _k, off, size in plan.slices():
                yield received.wait_for(off + size)
                self._announce(node, color, color_off + off, size)
        else:
            received.add(plan.total)
            for _k, off, size in plan.slices():
                self._announce(node, color, color_off + off, size)

    def _receiver(self, color: Color, color_off: int, plan: ChunkPlan,
                  node: int):
        """Marks chunk arrivals at a non-root node for one color."""
        yield self.start
        master = self.machine.node_ranks(node)[0]
        for k, off, size in plan.slices():
            yield self._deliveries[(color.id, k, node)]
            self._color_received[(color.id, node)].add(size)
            data = self.inv.payload_slice(color_off + off, size)
            if data is not None:
                self.inv.write_result(master, color_off + off, data)
            self._announce(node, color, color_off + off, size)

    def _forwarder(self, color: Color, sched: RectangleSchedule,
                   plan: ChunkPlan, node: int, dim: int):
        """Posts this node's line broadcasts along ``dim``, chunk by chunk.

        On a torus one deposit broadcast per chunk covers the ring line; on
        a mesh the relay issues one in each direction.
        """
        yield self.start
        received = self._color_received[(color.id, node)]
        params = self.machine.params
        signs = sched.relay_signs()
        for k, off, size in plan.slices():
            yield received.wait_for(off + size)
            done_events = []
            for sign in signs:
                # DMA descriptor injection for this connection.
                yield self.engine.timeout(params.dma_startup)
                transfer = self.torus.line_broadcast(
                    color.id, node, dim, sign, size,
                    name=f"lb.k{k}.n{node}.d{dim}",
                )
                for receiver, event in transfer.delivered.items():
                    key = (color.id, k, receiver)
                    event.on_trigger(
                        lambda _v, key=key:
                        self._deliveries[key].trigger(None)
                    )
                done_events.append(transfer.done)
            # In-order injection per connection: wait for the injections to
            # finish before posting the next chunk on this dimension.
            for done in done_events:
                yield done
