"""Torus broadcast, proposed: ``Torus + FIFO`` (sections IV-B, V-A-2).

"Shared Memory Broadcast using Bcast FIFO: ... once a chunk of data is
received from the Torus network into the application buffer, the master
process enqueues the data element into the Bcast FIFO ... The data is
packetized if it is more than the FIFO slot size.  Apart from the actual
data, metadata information associated with the data is also copied into the
same FIFO slot.  The metadata includes the number of data bytes copied into
the slot and the connection id of the global broadcast flow.  In this
fashion broadcast streams from multiple connections can be multiplexed into
the same FIFO."

Intra-node movement is done by the *cores* (staging copies through the
FIFO), freeing the DMA for the network — "concurrent data transfers
intra-node by the processing cores and the DMA moving the data from the
node to the Torus network" — at the price of funnelling every byte through
the master core's staging copy, which runs at the cache-coherence-limited
FIFO copy rate.

Simulation granularity: the FIFO operates at slot granularity (default
8 KB); for efficiency the simulation issues one staging-copy flow per
network pipeline chunk and charges the per-slot bookkeeping (fetch-and-
increment on Tail, consumer-counter initialisation, completion flag) as an
aggregate cost for the slots the chunk packetizes into.  The
slot-granularity behaviour itself is exercised directly by the unit tests
of :class:`repro.kernel.shmem.SimBcastFifo` and of the thread-executable
:class:`repro.structures.bcast_fifo.BcastFifo`.
"""

from __future__ import annotations

from typing import List

from repro.collectives.base import BcastInvocation
from repro.collectives.bcast.torus_common import TorusBcastNetwork
from repro.collectives.registry import register
from repro.msg.pipeline import split_chunks
from repro.sim.resources import Store
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import ROLE_COPIER, ROLE_PROTOCOL


@register("bcast")
class TorusFifoBcast(BcastInvocation):
    """Quad-mode broadcast with the concurrent Bcast FIFO intra-node."""

    name = "torus-fifo"
    network = "torus"
    ncolors = 6
    trace_rows = (("bfifo.", "copy"),)

    def setup(self) -> None:
        machine = self.machine
        params = machine.params
        engine = machine.engine
        self.net = TorusBcastNetwork(self, self.ncolors, params.pipeline_width)
        # Arrival mailboxes feeding each node's master enqueue loop.
        self.arrivals: List[Store] = [
            Store(engine, name=f"n{n}.arrivals")
            for n in range(machine.nnodes)
        ]
        # The FIFO modelled at chunk granularity: elements visible / retired
        # (visible to consumers after the staging copy completes).
        self.visible: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.fifo.tail", node=n)
            for n in range(machine.nnodes)
        ]
        self.retired: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.fifo.head", node=n)
            for n in range(machine.nnodes)
        ]
        self.elements: List[list] = [[] for _ in range(machine.nnodes)]
        self.readers_left: List[List[int]] = [[] for _ in range(machine.nnodes)]
        #: FIFO capacity in elements (chunk granularity): total staging bytes
        #: divided by the chunk size, at least 1.
        capacity_bytes = params.fifo_slots * params.fifo_slot_bytes
        self.capacity = max(1, capacity_bytes // params.pipeline_width)
        self.net.on_chunk(self._on_arrival)

    def _on_arrival(self, node: int, color_id: int, goff: int, size: int) -> None:
        self.arrivals[node].put((color_id, goff, size))

    def _slot_costs(self, size: int) -> float:
        """Aggregate per-slot bookkeeping for one packetized chunk."""
        params = self.machine.params
        pieces = len(split_chunks(size, params.fifo_slot_bytes))
        per_slot = (
            params.atomic_op_cost  # fetch-and-increment on Tail
            + params.atomic_op_cost  # consumer-counter initialisation
            + params.flag_cost  # write-completion step
            + params.shmem_chunk_overhead
        )
        return pieces * per_slot

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.nbytes == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        root_node = machine.rank_to_node(self.root)
        is_master = rank == self.root or (
            ctx.local_rank == 0 and node != root_node
        )
        if rank == self.root:
            self.net.open()
        if machine.ppn == 1:
            yield self.net.node_received[node].wait_for(self.nbytes)
            return
        nconsumers = machine.ppn - 1
        total_chunks = self.net.total_chunks_per_node
        tel = engine.telemetry
        if is_master:
            # Master loop: observe the DMA counter, packetize each arrived
            # chunk into FIFO slots (staging copy at the FIFO copy rate).
            if tel is not None:
                tel.set_role(rank, node, ROLE_PROTOCOL)
            for seq in range(total_chunks):
                color_id, goff, size = yield self.arrivals[node].get()
                yield engine.timeout(params.dma_counter_poll)
                # Space check: wait until the FIFO has room.
                contended = seq - self.retired[node].value >= self.capacity
                if tel is not None:
                    tel.fifo_fai(engine.now, f"n{node}.fifo", node, seq,
                                 contended)
                if contended:
                    t0 = engine.now
                    yield self.retired[node].wait_for(seq - self.capacity + 1)
                    if tel is not None:
                        tel.stall(t0, engine.now, rank, node,
                                  "waiting-on-slot")
                yield engine.timeout(self._slot_costs(size))
                t0 = engine.now
                yield from ctx.node.fifo_copy(size, name="bfifo.in")
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_PROTOCOL,
                               "fifo.stage-in", size)
                self.elements[node].append((color_id, goff, size))
                self.readers_left[node].append(nconsumers)
                self.visible[node].add(1)
                if tel is not None:
                    tel.fifo_depth(
                        engine.now, f"n{node}.fifo", node,
                        self.visible[node].value - self.retired[node].value,
                    )
        else:
            # Consumer loop: read every multiplexed element in order.
            if tel is not None:
                tel.set_role(rank, node, ROLE_COPIER)
            for seq in range(total_chunks):
                if self.visible[node].value < seq + 1:
                    t0 = engine.now
                    yield self.visible[node].wait_for(seq + 1)
                    if tel is not None:
                        tel.stall(t0, engine.now, rank, node,
                                  "waiting-on-counter")
                _color_id, goff, size = self.elements[node][seq]
                yield engine.timeout(params.atomic_op_cost)
                t0 = engine.now
                yield from ctx.node.fifo_copy(size, name="bfifo.out")
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_COPIER,
                               "fifo.copy-out", size)
                data = self.payload_slice(goff, size)
                if data is not None:
                    self.write_result(rank, goff, data)
                # Decrement the slot counter; last reader retires.
                self.readers_left[node][seq] -= 1
                if self.readers_left[node][seq] == 0:
                    yield engine.timeout(params.atomic_op_cost)
                    self.retired[node].add(1)
