"""Collective-network broadcast, SMP-mode reference (section V-B-1).

"The current algorithms use the fast hardware allreduce feature (math
units) of the collective network.  The root node injects data while other
nodes inject zeros in a global OR operation.  In SMP mode, two cores within
a node are required to fully saturate the collective network throughput.
Hence, two threads (the main application MPI thread and a helper
communication thread) inject and receive the broadcast packets on the
collective network."

Model: per node, the *helper thread* (a service coroutine, representing the
second core) injects — the root injects payload, everyone else zeros — and
the main thread drains the combined stream into the application buffer.
This is the hardware envelope: the ``CollectiveNetwork (SMP)`` curves of
Figures 6 and 7.
"""

from __future__ import annotations

from typing import List

from repro.collectives.base import BcastInvocation
from repro.collectives.registry import register
from repro.hardware.tree import TreeOperation
from repro.sim.events import Event
from repro.telemetry.recorder import ROLE_RECEIVER


@register("bcast", modes=(1,))
class TreeSmpBcast(BcastInvocation):
    """SMP-mode hardware broadcast (main thread + helper comm thread)."""

    name = "tree-smp"
    network = "tree"

    def setup(self) -> None:
        machine = self.machine
        if machine.ppn != 1:
            raise ValueError(
                f"{self.name} requires SMP mode, machine has ppn={machine.ppn}"
            )
        params = machine.params
        self.op: TreeOperation = machine.tree.operation(
            self.nbytes, params.pipeline_width
        )
        # Per-node gates opened when that node's rank enters the collective.
        self.node_entered: List[Event] = [
            Event(machine.engine) for _ in range(machine.nnodes)
        ]
        for node in range(machine.nnodes):
            machine.spawn(self._helper(node), name=f"tree-helper.n{node}")

    def _helper(self, node: int):
        """The helper communication thread: injects on the second core."""
        yield self.node_entered[node]
        yield self.machine.engine.timeout(
            self.machine.params.tree_inject_startup
        )
        for k in range(self.op.nchunks):
            yield from self.op.inject(node, k)

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        engine = machine.engine
        yield engine.timeout(machine.params.mpi_overhead)
        node = ctx.node_index
        tel = engine.telemetry
        if tel is not None:
            # The main MPI thread drains; the helper coroutine injects.
            tel.set_role(rank, node, ROLE_RECEIVER)
        self.node_entered[node].trigger(None)
        offset = 0
        for k in range(self.op.nchunks):
            size = self.op.chunks[k]
            t0 = engine.now
            yield from self.op.receive(node, k)
            if tel is not None:
                tel.copied(t0, engine.now, rank, node, ROLE_RECEIVER,
                           "tree.receive", size)
            if rank != self.root:
                data = self.payload_slice(offset, size)
                if data is not None:
                    self.write_result(rank, offset, data)
            offset += size
