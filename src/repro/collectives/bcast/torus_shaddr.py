"""Torus broadcast, proposed: ``Torus + Shaddr`` (sections IV-C, V-A-2, Fig 3).

"Shared Address Broadcast using Message Counters: ... receive the broadcast
data from the network in one of the processes application data buffer.  We
designate this process as the master process.  The master after receiving
the network data notifies other processes about the arrival of data.  The
arrived data is copied out directly from the application buffer of the
master process ... by using the System Memory Map calls."

Mechanics modelled here, following Fig 3:

* the master mirrors the DMA byte counters into software counters — one
  observation (poll + flag write) per arrived chunk;
* each peer maintains a local counter, watches the shared one, and copies
  newly arrived bytes straight out of the master's mapped buffer (a single
  core copy per byte — no staging);
* an atomic completion counter, incremented by each peer when done, returns
  buffer ownership to the master ("once this counter equals n-1 ... the
  master can go ahead and start using his buffer");
* peers pay the two map system calls per master buffer on first use; the
  window cache makes repeats free (Fig 8 measures exactly this knob via
  ``window_caching=False``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.collectives.base import BcastInvocation
from repro.collectives.bcast.torus_common import TorusBcastNetwork
from repro.collectives.registry import register
from repro.sim.resources import Store
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import ROLE_COPIER, ROLE_PROTOCOL


@register("bcast", shared_address=True, analytic="torus-color-lattice")
class TorusShaddrBcast(BcastInvocation):
    """Quad-mode broadcast over shared address space + message counters."""

    name = "torus-shaddr"
    network = "torus"
    ncolors = 6
    trace_rows = (("shaddr.", "copy"),)

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        self.net = TorusBcastNetwork(
            self, self.ncolors, machine.params.pipeline_width
        )
        nnodes = machine.nnodes
        # Software message counters: per node, the published chunk count and
        # the arrival records peers read (offset, size per chunk index).
        self.sw_published: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.swcnt", node=n)
            for n in range(nnodes)
        ]
        self.arrived: List[List[Tuple[int, int]]] = [[] for _ in range(nnodes)]
        # Master-side mailboxes carrying raw DMA-counter observations.
        self.mailbox: List[Store] = [
            Store(engine, name=f"n{n}.mbox") for n in range(nnodes)
        ]
        # Completion counters (peers -> master buffer ownership).
        self.completion: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.done", node=n)
            for n in range(nnodes)
        ]
        self.net.on_chunk(
            lambda node, _c, goff, size: self.mailbox[node].put((goff, size))
        )

    def _master_rank(self, node: int) -> int:
        if node == self.machine.rank_to_node(self.root):
            return self.root
        return self.machine.node_ranks(node)[0]

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.nbytes == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        if rank == self.root:
            self.net.open()
        if machine.ppn == 1:
            yield self.net.node_received[node].wait_for(self.nbytes)
            return
        master = self._master_rank(node)
        npeers = machine.ppn - 1
        tel = engine.telemetry
        if rank == master:
            # Master: mirror the DMA counters into the shared S/W counter.
            if tel is not None:
                tel.set_role(rank, node, ROLE_PROTOCOL)
            total_chunks = self.net.total_chunks_per_node
            for _ in range(total_chunks):
                goff, size = yield self.mailbox[node].get()
                # Poll the DMA counter, then publish to the S/W counter.
                yield engine.timeout(
                    params.dma_counter_poll + params.flag_cost
                )
                self.arrived[node].append((goff, size))
                self.sw_published[node].add(1)
            # Wait for the completion counter before reusing the buffer.
            t0 = engine.now
            yield self.completion[node].wait_for(npeers)
            if tel is not None:
                tel.stall(t0, engine.now, rank, node, "waiting-on-counter")
        else:
            # Peer: chase the software counter, copying directly out of the
            # master's mapped application buffer.  The buffer is mapped at
            # every access — two system calls each time unless the window
            # service caches the mapping (the Fig-8 knob).
            if tel is not None:
                tel.set_role(rank, node, ROLE_COPIER)
            master_local = machine.rank_to_local(master)
            total_chunks = self.net.total_chunks_per_node
            for i in range(total_chunks):
                if self.sw_published[node].value < i + 1:
                    t0 = engine.now
                    yield self.sw_published[node].wait_for(i + 1)
                    if tel is not None:
                        tel.stall(t0, engine.now, rank, node,
                                  "waiting-on-counter")
                    # Observation latency of the peer's local poll loop.
                    yield engine.timeout(params.flag_cost)
                goff, size = self.arrived[node][i]
                yield from ctx.windows.map_buffer(
                    master_local, ("bcast-buf", master), self.nbytes
                )
                t0 = engine.now
                yield from ctx.node.core_copy(size, name=f"shaddr.r{rank}")
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_COPIER,
                               "shaddr.copy-out", size)
                data = self.payload_slice(goff, size)
                if data is not None:
                    self.write_result(rank, goff, data)
            # Signal the completion counter (atomic increment).
            yield engine.timeout(params.atomic_op_cost)
            self.completion[node].add(1)
