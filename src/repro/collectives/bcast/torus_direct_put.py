"""Torus broadcast, current approach: ``Torus Direct Put`` (section V-A-1).

The DMA moves the data both across the network *and* within the node ("an
extra fourth dimension is added to these multi-color spanning tree
algorithms ... note that DMA is involved in moving the data across the
different phases").  Every chunk that lands at a node is direct-put by the
DMA into the three peer processes' application buffers — three additional
2-raw-bytes-per-byte DMA transfers that overcommit the engine; "though the
DMA is capable of keeping all the six links busy of a 3D torus node, it is
not enough to concurrently transfer the data within the node along with the
network transfers".

``TorusDirectPutSmpBcast`` is the same algorithm in SMP mode (one process
per node, no intra-node stage): the reference curve of Fig 10.
"""

from __future__ import annotations

from typing import Dict

from repro.collectives.base import BcastInvocation
from repro.collectives.bcast.torus_common import TorusBcastNetwork
from repro.collectives.common import DmaDirectPutDistributor
from repro.collectives.registry import register
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import ROLE_DMA_WAIT


@register("bcast")
class TorusDirectPutBcast(BcastInvocation):
    """Quad-mode baseline: DMA direct put for the intra-node dimension."""

    name = "torus-direct-put"
    network = "torus"
    ncolors = 6

    def setup(self) -> None:
        machine = self.machine
        chunk = machine.params.pipeline_width
        self.net = TorusBcastNetwork(self, self.ncolors, chunk)
        # Per-rank bytes delivered into the rank's application buffer.
        self.rank_received: Dict[int, SimCounter] = {
            rank: SimCounter(machine.engine, name=f"r{rank}.rcvd")
            for rank in range(machine.nprocs)
        }
        self.distributor = DmaDirectPutDistributor(
            self, self.net.total_chunks_per_node, self._peer_landed
        )
        self.net.on_chunk(self._distribute)

    # -- intra-node: DMA chains local direct puts -------------------------
    def _distribute(self, node: int, color_id: int, goff: int, size: int) -> None:
        master = self.machine.node_ranks(node)[0]
        self.rank_received[master].add(size)
        self.distributor.push(node, goff, size)

    def _peer_landed(self, peer: int, goff: int, size: int) -> None:
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(peer, goff, data)
        self.rank_received[peer].add(size)

    # -- per-rank coroutine --------------------------------------------------
    def proc(self, rank: int):
        ctx = self.context(rank)
        if self.nbytes == 0:
            return
        engine = self.machine.engine
        tel = engine.telemetry
        if tel is not None:
            tel.set_role(rank, ctx.node_index, ROLE_DMA_WAIT)
        yield engine.timeout(self.machine.params.mpi_overhead)
        if rank == self.root:
            self.net.open()
            # The root's own buffer is complete, but its peers still pull
            # through the DMA; the root returns once its local reception
            # state is consistent (counter poll).
            self.rank_received[rank].set_at_least(self.nbytes)
        t0 = engine.now
        yield self.rank_received[rank].wait_for(self.nbytes)
        if tel is not None:
            tel.stall(t0, engine.now, rank, ctx.node_index,
                      "waiting-on-counter")
        yield ctx.machine.engine.timeout(
            self.machine.params.dma_counter_poll
        )


@register("bcast", modes=(1,))
class TorusDirectPutSmpBcast(TorusDirectPutBcast):
    """SMP-mode reference: one process per node, so the inherited intra-node
    loop over peers is empty and the DMA only serves the network — the peak
    curve of Fig 10.  Registered separately so experiment configs can select
    it by name while asserting the machine really is in SMP mode."""

    name = "torus-direct-put-smp"
    network = "torus"

    def setup(self) -> None:
        if self.machine.ppn != 1:
            raise ValueError(
                f"{self.name} requires SMP mode, machine has ppn="
                f"{self.machine.ppn}"
            )
        super().setup()
