"""Collective-network broadcast, current quad-mode baselines (section V-B-1).

"In QUAD mode, the DMA moves the data among the cores of each node.  This
can occur using the memory FIFO and direct put DMA schemes."

Both variants share the tree stage: the node's local rank 0 drives the
collective network alone — injecting its contribution (data at the root,
zeros elsewhere) and draining the combined result with the *same* core, so
injection and reception serialize (the single-core half-throughput effect
the SMP algorithm avoids with its helper thread).

``tree-dma-fifo``
    The DMA delivers each received chunk into the three peers' reception
    memory FIFOs; each peer's core then copies the payload from its FIFO to
    the application buffer (one extra staging copy, plus FIFO bookkeeping).

``tree-dma-direct-put``
    The DMA direct-puts each chunk straight into the peers' application
    buffers (no staging copy, but all intra-node bytes still ride the DMA).
"""

from __future__ import annotations

from typing import Dict, List

from repro.collectives.base import BcastInvocation
from repro.collectives.registry import register
from repro.hardware.tree import TreeOperation
from repro.sim.events import Event
from repro.telemetry.recorder import ROLE_COPIER, ROLE_DMA_WAIT, ROLE_MASTER


class _TreeDmaBase(BcastInvocation):
    """Shared structure of the two DMA intra-node variants."""

    network = "tree"
    #: subclass knob: True = memory-FIFO delivery, False = direct put
    use_memory_fifo = True

    def setup(self) -> None:
        machine = self.machine
        if machine.ppn < 2:
            raise ValueError(
                f"{self.name} needs >= 2 processes per node (got {machine.ppn})"
            )
        params = machine.params
        self.op: TreeOperation = machine.tree.operation(
            self.nbytes, params.pipeline_width
        )
        engine = machine.engine
        # Per-rank: chunks landed in the rank's reception stage.
        self.chunk_landed: Dict[int, List[Event]] = {
            rank: [Event(engine) for _ in range(self.op.nchunks)]
            for rank in range(machine.nprocs)
        }

    def _master_rank(self, node: int) -> int:
        return self.machine.node_ranks(node)[0]

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = self._master_rank(node)
        peers = [r for r in machine.node_ranks(node) if r != master]
        tel = engine.telemetry
        if tel is not None:
            if rank == master:
                tel.set_role(rank, node, ROLE_MASTER)
            else:
                tel.set_role(
                    rank, node,
                    ROLE_COPIER if self.use_memory_fifo else ROLE_DMA_WAIT,
                )
        if rank == master:
            yield engine.timeout(params.tree_inject_startup)
            offset = 0
            for k in range(self.op.nchunks):
                size = self.op.chunks[k]
                # One core drives the tree: inject, then drain, serially.
                yield from self.op.inject(node, k)
                yield from self.op.receive(node, k)
                if rank != self.root:
                    data = self.payload_slice(offset, size)
                    if data is not None:
                        self.write_result(rank, offset, data)
                # Hand the chunk to the DMA for intra-node distribution.
                yield from ctx.dma.post()
                for peer in peers:
                    if self.use_memory_fifo:
                        flow = ctx.dma.fifo_deliver_flow(size)
                    else:
                        flow = ctx.dma.local_copy_flow(size)
                    flow.event.on_trigger(
                        lambda _v, peer=peer, k=k:
                        self.chunk_landed[peer][k].trigger(None)
                    )
                offset += size
        else:
            offset = 0
            for k in range(self.op.nchunks):
                size = self.op.chunks[k]
                t0 = engine.now
                yield self.chunk_landed[rank][k]
                if tel is not None:
                    tel.stall(t0, engine.now, rank, node, "waiting-on-counter")
                if self.use_memory_fifo:
                    # Copy the payload out of the reception memory FIFO.
                    yield engine.timeout(params.dma_fifo_overhead)
                    t0 = engine.now
                    yield from ctx.node.fifo_copy(size, name="fifo-out")
                    if tel is not None:
                        tel.copied(t0, engine.now, rank, node, ROLE_COPIER,
                                   "fifo.copy-out", size)
                else:
                    # Direct put: data is already in place; observe counter.
                    yield engine.timeout(params.dma_counter_poll)
                data = self.payload_slice(offset, size)
                if data is not None:
                    self.write_result(rank, offset, data)
                offset += size


@register("bcast", modes=(2, 4))
class TreeDmaFifoBcast(_TreeDmaBase):
    """Current approach: DMA to reception memory FIFOs (+ core copy out)."""

    name = "tree-dma-fifo"
    use_memory_fifo = True
    trace_rows = (("fifo-out", "copy"),)


@register("bcast", modes=(2, 4))
class TreeDmaDirectPutBcast(_TreeDmaBase):
    """Current approach: DMA direct put into peers' application buffers."""

    name = "tree-dma-direct-put"
    use_memory_fifo = False
