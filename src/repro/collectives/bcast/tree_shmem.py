"""Collective-network broadcast, proposed latency scheme (section V-B-2).

"Shared Memory broadcast over Collective network: In this simple and basic
design the data from the tree is transferred into a buffer shared across
all [the processes of] the node.  The same core accessing the collective
network does both the injection and reception of the data.  The received
data is placed in a shared memory segment from where it is copied over by
the other processes on the node.  This optimization works for short
messages where the copy cost is not a dominating factor."

This is the ``CollectiveNetwork + Shmem`` series of Fig 6: it adds only a
fraction of a microsecond (flag + tiny copy) over the raw SMP-mode hardware
latency, versus several microseconds for the DMA path.
"""

from __future__ import annotations

from typing import List

from repro.collectives.base import BcastInvocation
from repro.collectives.registry import register
from repro.hardware.tree import TreeOperation
from repro.kernel.shmem import SharedSegment
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import ROLE_COPIER, ROLE_MASTER


@register("bcast", modes=(2, 4))
class TreeShmemBcast(BcastInvocation):
    """Quad-mode latency-optimized broadcast through a shared segment."""

    name = "tree-shmem"
    network = "tree"
    trace_rows = (("shmem-", "copy"),)

    def setup(self) -> None:
        machine = self.machine
        if machine.ppn < 2:
            raise ValueError(
                f"{self.name} needs >= 2 processes per node (got {machine.ppn})"
            )
        params = machine.params
        self.op: TreeOperation = machine.tree.operation(
            self.nbytes, params.pipeline_width
        )
        engine = machine.engine
        self.segments: List[SharedSegment] = [
            SharedSegment(machine, max(1, self.nbytes), name=f"n{n}.seg")
            for n in range(machine.nnodes)
        ]
        #: per-node count of chunks staged into the shared segment
        self.staged: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.staged", node=n)
            for n in range(machine.nnodes)
        ]

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        tel = engine.telemetry
        if rank == master:
            if tel is not None:
                tel.set_role(rank, node, ROLE_MASTER)
            yield engine.timeout(params.tree_inject_startup)
            offset = 0
            for k in range(self.op.nchunks):
                size = self.op.chunks[k]
                yield from self.op.inject(node, k)
                # Drain into the shared segment (same core).
                yield from self.op.receive(node, k)
                data = self.payload_slice(offset, size)
                if data is not None:
                    self.segments[node].buffer[offset:offset + size] = data
                # Publish the staging flag.
                yield engine.timeout(params.flag_cost)
                self.staged[node].add(1)
                # The master's own buffer also needs the payload (a short
                # copy out of the segment — it received into staging).
                t0 = engine.now
                yield from ctx.node.core_copy(size, name="shmem-self")
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_MASTER,
                               "shmem.copy-self", size)
                if data is not None and rank != self.root:
                    self.write_result(rank, offset, data)
                offset += size
        else:
            if tel is not None:
                tel.set_role(rank, node, ROLE_COPIER)
            offset = 0
            for k in range(self.op.nchunks):
                size = self.op.chunks[k]
                if self.staged[node].value < k + 1:
                    t0 = engine.now
                    yield self.staged[node].wait_for(k + 1)
                    if tel is not None:
                        tel.stall(t0, engine.now, rank, node,
                                  "waiting-on-counter")
                    yield engine.timeout(params.flag_cost)
                yield engine.timeout(params.shmem_chunk_overhead)
                t0 = engine.now
                yield from ctx.node.core_copy(size, name="shmem-out")
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_COPIER,
                               "shmem.copy-out", size)
                if self.carry_data:
                    self.write_result(
                        rank,
                        offset,
                        self.segments[node].buffer[offset:offset + size],
                    )
                offset += size
