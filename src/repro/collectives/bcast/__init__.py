"""Broadcast algorithms (torus, collective-network, and ring families)."""

from repro.collectives.bcast.ring import RingPipelinedBcast
from repro.collectives.bcast.torus_direct_put import (
    TorusDirectPutBcast,
    TorusDirectPutSmpBcast,
)
from repro.collectives.bcast.torus_fifo import TorusFifoBcast
from repro.collectives.bcast.torus_shaddr import TorusShaddrBcast
from repro.collectives.bcast.tree_smp import TreeSmpBcast
from repro.collectives.bcast.tree_dma import (
    TreeDmaDirectPutBcast,
    TreeDmaFifoBcast,
)
from repro.collectives.bcast.tree_shmem import TreeShmemBcast
from repro.collectives.bcast.tree_shaddr import TreeShaddrBcast

__all__ = [
    "RingPipelinedBcast",
    "TorusDirectPutBcast",
    "TorusDirectPutSmpBcast",
    "TorusFifoBcast",
    "TorusShaddrBcast",
    "TreeSmpBcast",
    "TreeDmaFifoBcast",
    "TreeDmaDirectPutBcast",
    "TreeShmemBcast",
    "TreeShaddrBcast",
]
