"""Collective-network broadcast, proposed bandwidth scheme (section V-B-2,
Fig 4): shared address space + core specialization.

"An injection process injects data into the collective network and a
separate reception process copies the network output into the application
buffer. ... We designate all the processes with local rank zero from all
the nodes as the injection processes.  All the processes with local rank
one would be the reception processes.  However, unlike the Shared Memory
approach, the data buffers involved in the operation are directly the
application buffers. ... Once a chunk of data is copied into its
application buffer, it [rank 1] notifies the other two processes ... using
a software shared counter ... These two processes copy the data directly
from the application buffer of [the] process with local rank one.  Further,
the process with local rank two makes an additional copy into the
application buffer of the injection process ... The extra copy is not a
problem as the memory bandwidth is at least twice that of the collective
network."
"""

from __future__ import annotations

from typing import List

from repro.collectives.base import BcastInvocation
from repro.collectives.registry import register
from repro.hardware.tree import TreeOperation
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import (
    ROLE_COPIER,
    ROLE_INJECTOR,
    ROLE_RECEIVER,
)


@register("bcast", modes=(4,), shared_address=True, analytic="tree-lattice")
class TreeShaddrBcast(BcastInvocation):
    """Quad-mode core-specialized broadcast over mapped application buffers."""

    name = "tree-shaddr"
    network = "tree"
    trace_rows = (("shaddr.", "copy"),)

    def setup(self) -> None:
        machine = self.machine
        if machine.ppn != 4:
            raise ValueError(
                f"{self.name} is a quad-mode algorithm (ppn=4), machine has "
                f"ppn={machine.ppn}"
            )
        if machine.rank_to_local(self.root) != 0:
            raise ValueError(
                f"{self.name} expects the global root at local rank 0 "
                f"(the injection process), got local rank "
                f"{machine.rank_to_local(self.root)}"
            )
        params = machine.params
        self.op: TreeOperation = machine.tree.operation(
            self.nbytes, params.pipeline_width
        )
        engine = machine.engine
        #: rank-1's software counter: chunks landed in its application buffer
        self.sw_counter: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.swcnt", node=n)
            for n in range(machine.nnodes)
        ]
        #: chunks copied into the injection process's buffer by local rank 2
        self.injector_filled: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.injfill", node=n)
            for n in range(machine.nnodes)
        ]

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.nbytes == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        local = ctx.local_rank
        nchunks = self.op.nchunks
        tel = engine.telemetry
        if local == 0:
            # Injection process: drives the tree from its application buffer
            # (the global root injects payload; everyone else zeros).
            if tel is not None:
                tel.set_role(rank, node, ROLE_INJECTOR)
            yield engine.timeout(params.tree_inject_startup)
            for k in range(nchunks):
                t0 = engine.now
                yield from self.op.inject(node, k)
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_INJECTOR,
                               "tree.inject", self.op.chunks[k])
            if rank != self.root:
                # Its own copy arrives via rank 2's extra copy.
                t0 = engine.now
                yield self.injector_filled[node].wait_for(nchunks)
                if tel is not None:
                    tel.stall(t0, engine.now, rank, node, "waiting-on-counter")
        elif local == 1:
            # Reception process: drains straight into its application
            # buffer and publishes the software counter.
            if tel is not None:
                tel.set_role(rank, node, ROLE_RECEIVER)
            offset = 0
            for k in range(nchunks):
                size = self.op.chunks[k]
                t0 = engine.now
                yield from self.op.receive(node, k)
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_RECEIVER,
                               "tree.receive", size)
                data = self.payload_slice(offset, size)
                if data is not None:
                    self.write_result(rank, offset, data)
                yield engine.timeout(params.flag_cost)
                self.sw_counter[node].add(1)
                offset += size
        else:
            # Copy processes: rank 2 copies to itself and to rank 0;
            # rank 3 copies to itself only.
            if tel is not None:
                tel.set_role(rank, node, ROLE_COPIER)
            reception_rank = machine.node_ranks(node)[1]
            injection_rank = machine.node_ranks(node)[0]
            offset = 0
            for k in range(nchunks):
                size = self.op.chunks[k]
                if self.sw_counter[node].value < k + 1:
                    t0 = engine.now
                    yield self.sw_counter[node].wait_for(k + 1)
                    if tel is not None:
                        tel.stall(t0, engine.now, rank, node,
                                  "waiting-on-counter")
                    yield engine.timeout(params.flag_cost)
                # Map the reception (and, for rank 2, the injection) buffer
                # at every access; the window cache makes repeats free.
                yield from ctx.windows.map_buffer(
                    1, ("bcast-buf", reception_rank), self.nbytes
                )
                if local == 2:
                    yield from ctx.windows.map_buffer(
                        0, ("bcast-buf", injection_rank), self.nbytes
                    )
                t0 = engine.now
                yield from ctx.node.core_copy(size, name=f"shaddr.l{local}")
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node, ROLE_COPIER,
                               "shaddr.copy-out", size)
                data = self.payload_slice(offset, size)
                if data is not None:
                    self.write_result(rank, offset, data)
                if local == 2:
                    # The additional copy into the injection process.
                    t0 = engine.now
                    yield from ctx.node.core_copy(size, name="shaddr.inj")
                    if tel is not None:
                        tel.copied(t0, engine.now, rank, node, ROLE_COPIER,
                                   "shaddr.extra-copy", size)
                    if data is not None:
                        self.write_result(injection_rank, offset, data)
                    self.injector_filled[node].add(1)
                offset += size
