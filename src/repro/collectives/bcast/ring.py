"""Ring-pipelined broadcast for switched point-to-point fabrics.

Fat-tree and leaf-spine backends have neither the collective tree nor
the torus' deposit-bit line broadcasts, so their broadcast rides plain
point-to-point sends: nodes form a ring starting at the root's node, the
message is cut into pipeline chunks, and every node forwards chunk ``c``
to its ring successor as soon as the chunk has fully arrived — after the
pipeline fills, all ring links stream concurrently.

The intra-node stage is the paper's baseline: every chunk landing at a
node is DMA-direct-put into the peer processes' buffers
(:class:`~repro.collectives.common.DmaDirectPutDistributor`), i.e. the
"current" scheme generalized off the torus.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.collectives.base import BcastInvocation
from repro.collectives.common import DmaDirectPutDistributor
from repro.collectives.registry import register
from repro.hardware.tree import split_chunks
from repro.msg.color import torus_colors
from repro.sim.events import Event
from repro.sim.sync import SimCounter

#: pipeline chunk size; large enough to amortize per-send DMA startup,
#: small enough that the ring pipeline fills quickly
CHUNK_BYTES = 64 * 1024


@register("bcast")
class RingPipelinedBcast(BcastInvocation):
    """Chunked ring broadcast over ``ptp_send`` (any backend)."""

    name = "ring-pipelined"
    network = "ptp"

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        self.color = torus_colors(1)[0]
        self.root_node = machine.rank_to_node(self.root)
        self.ring: List[int] = machine.network.ring_order(
            self.color, self.root_node
        )
        self.nnodes = machine.nnodes
        self.chunks: List[int] = split_chunks(self.nbytes, CHUNK_BYTES)
        #: byte offset of each chunk in the message
        self.offsets: List[int] = []
        off = 0
        for size in self.chunks:
            self.offsets.append(off)
            off += size
        self.start = Event(engine)
        #: root's chunk c is staged and may enter the ring
        self.root_ready: List[Event] = [
            Event(engine) for _ in self.chunks
        ]
        #: (ring_position, chunk) -> chunk fully arrived at that node
        self._arrive: Dict[Tuple[int, int], Event] = {
            (i, c): Event(engine)
            for i in range(1, self.nnodes)
            for c in range(len(self.chunks))
        }
        #: per-rank delivered bytes
        self.rank_received: Dict[int, SimCounter] = {
            rank: SimCounter(engine, name=f"r{rank}.rbc")
            for rank in range(machine.nprocs)
        }
        self.distributor = DmaDirectPutDistributor(
            self, len(self.chunks), self._peer_landed
        )
        if self.nnodes > 1 and self.chunks:
            for position in range(self.nnodes - 1):
                machine.spawn(
                    self._ring_position(position), name=f"rbc.p{position}"
                )

    # -- intra-node landing ------------------------------------------------
    def _node_has_chunk(self, node: int, c: int) -> None:
        """Chunk ``c`` is present at ``node``: hand it to the master rank
        and queue the DMA direct-puts to the node's peers."""
        offset, size = self.offsets[c], self.chunks[c]
        master = self.machine.node_ranks(node)[0]
        if master != self.root:
            data = self.payload_slice(offset, size)
            if data is not None:
                self.write_result(master, offset, data)
            self.rank_received[master].add(size)
        self.distributor.push(node, offset, size)

    def _peer_landed(self, peer: int, goff: int, size: int) -> None:
        if peer == self.root:
            # the root already owns the payload; keep its buffer pristine
            return
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(peer, goff, data)
        self.rank_received[peer].add(size)

    # -- ring --------------------------------------------------------------
    def _ring_position(self, i: int):
        """Forward every chunk from ring position ``i`` to ``i + 1``."""
        yield self.start
        machine = self.machine
        engine = machine.engine
        node = self.ring[i]
        successor = self.ring[i + 1]
        for c, size in enumerate(self.chunks):
            if i == 0:
                yield self.root_ready[c]
            else:
                yield self._arrive[(i, c)]
            yield engine.timeout(machine.params.dma_startup)
            delivered = machine.network.ptp_send(
                self.color.id, node, successor, size,
                name=f"rbc.p{i}.s{c}",
            )
            delivered.on_trigger(
                lambda _v, position=i + 1, c=c:
                self._chunk_arrived(position, c)
            )
            yield delivered

    def _chunk_arrived(self, position: int, c: int) -> None:
        self._arrive[(position, c)].trigger(None)
        self._node_has_chunk(self.ring[position], c)

    # -- per-rank process --------------------------------------------------
    def proc(self, rank: int):
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.nbytes == 0 or machine.nprocs == 1:
            return
        yield engine.timeout(params.mpi_overhead)
        if rank == self.root:
            self.start.trigger(None)
            # Stage the chunks into the ring (and to this node's peers).
            for c in range(len(self.chunks)):
                self._node_has_chunk(self.root_node, c)
                self.root_ready[c].trigger(None)
            return
        yield self.rank_received[rank].wait_for(self.nbytes)
        yield engine.timeout(params.dma_counter_poll)
