"""Gather algorithms — second half of the paper's future work (section VII).

``MPI_Gather`` moves every rank's block to the root.  The network protocol
(a pipelined node-level ring toward the root node) is common; the variants
apply the paper's intra-node contrast:

``gather-ring-current``
    The DMA stages the local peers' blocks into the master's send buffer
    before the node block enters the ring.

``gather-ring-shaddr``
    The master maps the peers' application buffers and the network sends
    straight out of them — no staging copies, and an unloaded DMA.
"""

from repro.collectives.gather.base import GatherInvocation
from repro.collectives.gather.ring import (
    RingCurrentGather,
    RingShaddrGather,
)

__all__ = ["GatherInvocation", "RingCurrentGather", "RingShaddrGather"]
