"""Pipelined ring gather toward the root node.

The snake ring is traversed from the far end toward the root (ring
position 0): position ``i`` forwards, in order, its own node block followed
by every block relayed from position ``i+1``.  Transfers pipeline — while
position ``i`` forwards block ``k``, position ``i+1`` is already sending
block ``k+1`` — and the near-root links carry the aggregate, as in any
gather.

The variants differ only in how the node block becomes sendable:
DMA-staged (current) or read in place from mapped buffers (shaddr).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.collectives.gather.base import GatherInvocation
from repro.collectives.registry import register
from repro.msg.color import torus_colors
from repro.sim.events import AllOf, Event


class _RingGatherBase(GatherInvocation):
    """Common ring machinery for both gather variants."""

    network = "ptp"
    #: subclass knob: stage the node block through the DMA first?
    stage_with_dma = True

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        self.color = torus_colors(1)[0]
        self.ring: List[int] = machine.network.ring_order(self.color, 0)
        self.nnodes = machine.nnodes
        self.start = Event(engine)
        self.own_ready: List[Event] = [
            Event(engine) for _ in range(self.nnodes)
        ]
        # arrival events at ring position i of relayed block number j
        # (j counts blocks arriving from downstream, 0-based)
        self._arrive: Dict[Tuple[int, int], Event] = {
            (i, j): Event(engine)
            for i in range(self.nnodes)
            for j in range(self.nnodes)
        }
        #: triggered when the root holds everything
        self.root_done = Event(engine)
        self._root_blocks_received = 0
        for position in range(self.nnodes):
            machine.spawn(self._ring_position(position), name=f"g.p{position}")

    def _ring_position(self, i: int):
        yield self.start
        machine = self.machine
        engine = machine.engine
        node = self.ring[i]
        block = self.block_bytes * machine.ppn
        if block == 0:
            if i == 0:
                self.root_done.trigger(None)
            return
        if i == 0:
            # The root: record its own node block, then collect the rest.
            yield self.own_ready[node]
            offset, size = self.node_block_range(node)
            data = self.payload_slice(offset, size)
            if data is not None:
                self.write_root(offset, data)
            self._root_blocks_received += 1
            if self._root_blocks_received == self.nnodes:
                self.root_done.trigger(None)
            return
        predecessor = self.ring[i - 1]
        # Forward own block first, then everything arriving from behind.
        blocks_to_forward = self.nnodes - i  # own + downstream ones
        for j in range(blocks_to_forward):
            if j == 0:
                yield self.own_ready[node]
                src_node = node
            else:
                yield self._arrive[(i, j - 1)]
                src_node = self.ring[i + j]
            yield engine.timeout(machine.params.dma_startup)
            delivered = machine.network.ptp_send(
                self.color.id, node, predecessor, block,
                name=f"g.p{i}.b{j}",
            )
            delivered.on_trigger(
                lambda _v, i=i, j=j, src_node=src_node:
                self._block_arrived(i - 1, j, src_node)
            )
            yield delivered

    def _block_arrived(self, position: int, j: int, src_node: int) -> None:
        self._arrive[(position, j)].trigger(None)
        if position == 0:
            offset, size = self.node_block_range(src_node)
            data = self.payload_slice(offset, size)
            if data is not None:
                self.write_root(offset, data)
            self._root_blocks_received += 1
            if self._root_blocks_received == self.nnodes:
                self.root_done.trigger(None)

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.block_bytes == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        if rank == 0:
            self.start.trigger(None)
        if rank == master:
            yield from self._prepare_node_block(ctx)
            self.own_ready[node].trigger(None)
        if rank == 0:
            # The root returns once its receive buffer is complete.
            yield self.root_done
            yield engine.timeout(params.dma_counter_poll)
        # Non-root ranks return once their contribution is sendable
        # (standard MPI_Gather local-completion semantics).

    def _prepare_node_block(self, ctx):
        """Make the node's aggregated block sendable (variant-specific)."""
        raise NotImplementedError


@register("gather")
class RingCurrentGather(_RingGatherBase):
    """Baseline: DMA stages the peers' blocks before sending."""

    name = "gather-ring-current"

    def _prepare_node_block(self, ctx):
        machine = self.machine
        peers = machine.node_ranks(ctx.node_index)[1:]
        if peers:
            flows = [
                ctx.dma.local_copy_flow(self.block_bytes, name="g.stage")
                for _ in peers
            ]
            yield AllOf(machine.engine, [f.event for f in flows])


@register("gather", shared_address=True)
class RingShaddrGather(_RingGatherBase):
    """Proposed: send in place from mapped peer buffers (no staging)."""

    name = "gather-ring-shaddr"

    def _prepare_node_block(self, ctx):
        machine = self.machine
        node = ctx.node_index
        for peer_local in range(1, machine.ppn):
            peer_rank = machine.node_ranks(node)[peer_local]
            yield from ctx.windows.map_buffer(
                peer_local, ("gather-block", peer_rank), self.block_bytes
            )
