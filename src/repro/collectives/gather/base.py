"""Base class for gather invocations.

Every rank contributes ``block_bytes``; the root ends with the
concatenation of all contributions in rank order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collectives.base import InvocationBase
from repro.hardware.machine import Machine


class GatherInvocation(InvocationBase):
    """One ``MPI_Gather`` call (root = rank 0)."""

    def __init__(
        self,
        machine: Machine,
        block_bytes: int,
        blocks: Optional[np.ndarray] = None,
        window_caching: bool = True,
    ):
        if block_bytes < 0:
            raise ValueError(f"block_bytes must be >= 0, got {block_bytes}")
        super().__init__(
            machine, 0, block_bytes * machine.nprocs, window_caching
        )
        self.block_bytes = block_bytes
        self.carry_data = blocks is not None
        self.blocks = blocks
        if self.carry_data:
            if blocks.shape != (machine.nprocs, block_bytes):
                raise ValueError(
                    f"blocks must have shape ({machine.nprocs}, "
                    f"{block_bytes}), got {blocks.shape}"
                )
            self.expected = blocks.reshape(-1)
            self.root_buffer = np.zeros(self.nbytes, dtype=np.uint8)
        self.setup()

    def payload_slice(self, offset: int, size: int) -> Optional[np.ndarray]:
        if not self.carry_data:
            return None
        return self.expected[offset:offset + size]

    def write_root(self, offset: int, data: np.ndarray) -> None:
        if self.carry_data:
            self.root_buffer[offset:offset + data.nbytes] = data

    def node_block_range(self, node: int):
        """(offset, size) of one node's aggregated contribution."""
        ppn = self.machine.ppn
        return node * ppn * self.block_bytes, ppn * self.block_bytes

    def verify(self) -> None:
        if not self.carry_data:
            raise RuntimeError("verify() requires carry_data=True")
        if not np.array_equal(self.root_buffer, self.expected):
            mismatch = int(np.argmax(self.root_buffer != self.expected))
            raise AssertionError(f"gather mismatch at byte {mismatch}")
