"""Allgather algorithms — the paper's future-work extension (section VII).

"In our future work, we intend to extend the mechanism to other collectives
such as MPI Gather and MPI Allgather which can also potentially move large
volumes of data."

Two quad-mode algorithms over a node-level ring (following the shared-
memory-vs-direct-access contrast of reference [7], Mamidala et al.,
"Efficient Shared Memory and RDMA based design for MPI Allgather"):

``allgather-ring-current``
    DMA-driven baseline: the node block is staged by DMA-gathering the
    local peers' blocks into the master, the ring circulates node blocks,
    and every arriving block is DMA-direct-put to the three peers.

``allgather-ring-shaddr``
    Shared-address scheme: the network sends straight out of the mapped
    peer buffers (no local gather), arrivals are published through software
    message counters, and peers copy arrived blocks directly out of the
    master's receive buffer with their own cores.
"""

from repro.collectives.allgather.base import AllgatherInvocation
from repro.collectives.allgather.ring import (
    RingCurrentAllgather,
    RingShaddrAllgather,
)

__all__ = [
    "AllgatherInvocation",
    "RingCurrentAllgather",
    "RingShaddrAllgather",
]
