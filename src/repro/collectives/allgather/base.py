"""Base class for allgather invocations.

Every rank contributes ``block_bytes``; every rank ends with the
concatenation of all contributions in rank order (``nprocs x block_bytes``
bytes).  When verifying, contributions are pseudo-random byte blocks and
every rank's assembled buffer is checked bit-exactly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.collectives.base import InvocationBase
from repro.hardware.machine import Machine
from repro.util.buffers import same_bytes


class AllgatherInvocation(InvocationBase):
    """One ``MPI_Allgather`` call."""

    def __init__(
        self,
        machine: Machine,
        block_bytes: int,
        blocks: Optional[np.ndarray] = None,
        window_caching: bool = True,
    ):
        if block_bytes < 0:
            raise ValueError(f"block_bytes must be >= 0, got {block_bytes}")
        super().__init__(
            machine, 0, block_bytes * machine.nprocs, window_caching
        )
        self.block_bytes = block_bytes
        self.carry_data = blocks is not None
        self.blocks = blocks
        if self.carry_data:
            if blocks.shape != (machine.nprocs, block_bytes):
                raise ValueError(
                    f"blocks must have shape ({machine.nprocs}, "
                    f"{block_bytes}), got {blocks.shape}"
                )
            #: the expected assembled buffer (same at every rank)
            self.expected = blocks.reshape(-1)
            self.result_buffers: Dict[int, np.ndarray] = {
                rank: np.zeros(self.nbytes, dtype=np.uint8)
                for rank in range(machine.nprocs)
            }
        self.setup()

    # -- data hooks -------------------------------------------------------
    def payload_slice(self, offset: int, size: int) -> Optional[np.ndarray]:
        if not self.carry_data:
            return None
        return self.expected[offset:offset + size]

    def write_result(self, rank: int, offset: int, data: np.ndarray) -> None:
        if self.carry_data:
            self.result_buffers[rank][offset:offset + data.nbytes] = data

    def node_block_range(self, node: int):
        """(offset, size) of a node's aggregated contribution."""
        ppn = self.machine.ppn
        return (
            node * ppn * self.block_bytes,
            ppn * self.block_bytes,
        )

    def verify(self) -> None:
        if not self.carry_data:
            raise RuntimeError("verify() requires carry_data=True")
        for rank in range(self.machine.nprocs):
            if not same_bytes(self.result_buffers[rank], self.expected):
                mismatch = int(
                    np.argmax(self.result_buffers[rank] != self.expected)
                )
                raise AssertionError(
                    f"rank {rank}: allgather mismatch at byte {mismatch}"
                )
