"""Node-level ring allgather: DMA baseline and shared-address variants.

Ring structure (both variants): nodes form a snake ring; at step ``s`` each
node sends the node-block it obtained at step ``s-1`` (starting with its
own) to its ring successor, so after ``N-1`` steps every node holds every
node's block.  Steps are pipelined — a node forwards a block as soon as it
has fully arrived.

The variants differ exactly where the paper's broadcast variants differ:

* **current**: the node block must first be staged (the DMA copies the
  three peers' blocks into the master), and every arriving node-block is
  then DMA-direct-put into the three peers' buffers — all intra-node bytes
  ride the already-busy DMA;
* **shaddr**: the network protocol reads contributions straight from the
  peers' mapped application buffers (no staging gather); the master
  publishes arrivals through a software message counter and the peer cores
  copy arrived blocks directly out of the master's receive buffer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.collectives.allgather.base import AllgatherInvocation
from repro.collectives.common import DmaDirectPutDistributor
from repro.collectives.registry import register
from repro.msg.color import torus_colors
from repro.sim.events import AllOf, Event
from repro.sim.resources import Store
from repro.sim.sync import SimCounter


class _RingAllgatherBase(AllgatherInvocation):
    """Shared ring machinery; subclasses plug the intra-node stages."""

    network = "ptp"

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        self.color = torus_colors(1)[0]
        self.ring: List[int] = machine.network.ring_order(self.color, 0)
        self.nnodes = machine.nnodes
        self.start = Event(engine)
        #: per node: its own aggregated block is ready to enter the ring
        self.own_ready: List[Event] = [
            Event(engine) for _ in range(self.nnodes)
        ]
        #: arrival events: (ring_position, step) -> block fully received
        self._arrive: Dict[Tuple[int, int], Event] = {
            (i, s): Event(engine)
            for i in range(self.nnodes)
            for s in range(self.nnodes - 1)
        }
        #: per-rank bytes of the assembled result present in its buffer
        self.rank_received: Dict[int, SimCounter] = {
            rank: SimCounter(engine, name=f"r{rank}.ag")
            for rank in range(machine.nprocs)
        }
        for position in range(self.nnodes):
            machine.spawn(
                self._ring_position(position), name=f"ag.p{position}"
            )

    # hooks ------------------------------------------------------------
    def _on_node_block(self, node: int, src_node: int) -> None:
        """A node now holds ``src_node``'s aggregated block."""
        raise NotImplementedError

    # ring -----------------------------------------------------------------
    def _ring_position(self, i: int):
        yield self.start
        machine = self.machine
        engine = machine.engine
        node = self.ring[i]
        ppn = machine.ppn
        block = self.block_bytes * ppn  # one node's aggregated block
        if block == 0 or self.nnodes == 1:
            return
        successor = self.ring[(i + 1) % self.nnodes]
        for step in range(self.nnodes - 1):
            # Which node's block do we forward at this step?
            src_position = (i - step) % self.nnodes
            src_node = self.ring[src_position]
            if step == 0:
                yield self.own_ready[node]
            else:
                yield self._arrive[(i, step - 1)]
            yield engine.timeout(machine.params.dma_startup)
            delivered = machine.network.ptp_send(
                self.color.id, node, successor, block,
                name=f"ag.p{i}.s{step}",
            )
            next_i = (i + 1) % self.nnodes
            delivered.on_trigger(
                lambda _v, next_i=next_i, step=step, src_node=src_node:
                self._block_arrived(next_i, step, src_node)
            )
            yield delivered

    def _block_arrived(self, position: int, step: int, src_node: int) -> None:
        node = self.ring[position]
        self._arrive[(position, step)].trigger(None)
        offset, size = self.node_block_range(src_node)
        master = self.machine.node_ranks(node)[0]
        data = self.payload_slice(offset, size)
        if data is not None:
            self.write_result(master, offset, data)
        self.rank_received[master].add(size)
        self._on_node_block(node, src_node)


@register("allgather")
class RingCurrentAllgather(_RingAllgatherBase):
    """DMA-staged baseline."""

    name = "allgather-ring-current"

    def setup(self) -> None:
        super().setup()
        # Every node distributes all N node blocks (including its own
        # staged one) to its peers through the DMA.
        self.distributor = DmaDirectPutDistributor(
            self, self.nnodes, self._peer_landed
        )

    def _on_node_block(self, node: int, src_node: int) -> None:
        offset, _size = self.node_block_range(src_node)
        self.distributor.push(node, offset, self.node_block_range(src_node)[1])

    def _peer_landed(self, peer: int, goff: int, size: int) -> None:
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(peer, goff, data)
        self.rank_received[peer].add(size)

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.block_bytes == 0 or machine.nprocs == 1:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        own_off = rank * self.block_bytes
        data = self.payload_slice(own_off, self.block_bytes)
        if data is not None:
            self.write_result(rank, own_off, data)
        if rank == machine.node_ranks(0)[0]:
            self.start.trigger(None)
        if rank == master:
            # Stage the node block: DMA gathers the peers' contributions.
            peers = machine.node_ranks(node)[1:]
            if peers:
                flows = [
                    ctx.dma.local_copy_flow(self.block_bytes, name="ag.gather")
                    for _ in peers
                ]
                yield AllOf(engine, [f.event for f in flows])
            node_off, node_size = self.node_block_range(node)
            block = self.payload_slice(node_off, node_size)
            if block is not None:
                self.write_result(rank, node_off, block)
            self.rank_received[rank].add(node_size)
            self.own_ready[node].trigger(None)
            # The staged node block is also distributed back to the peers.
            self.distributor.push(node, node_off, node_size)
        yield self.rank_received[rank].wait_for(self.nbytes)
        yield engine.timeout(params.dma_counter_poll)


@register("allgather", shared_address=True)
class RingShaddrAllgather(_RingAllgatherBase):
    """Shared-address variant with message-counter publication."""

    name = "allgather-ring-shaddr"

    def setup(self) -> None:
        super().setup()
        machine = self.machine
        engine = machine.engine
        #: master-published arrivals per node: list of (offset, size)
        self.records: List[List[Tuple[int, int]]] = [
            [] for _ in range(machine.nnodes)
        ]
        self.published: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.ag.pub", node=n)
            for n in range(machine.nnodes)
        ]
        self.mailbox: List[Store] = [
            Store(engine, name=f"n{n}.ag.mbox")
            for n in range(machine.nnodes)
        ]

    def _on_node_block(self, node: int, src_node: int) -> None:
        self.mailbox[node].put(self.node_block_range(src_node))

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.block_bytes == 0 or machine.nprocs == 1:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        own_off = rank * self.block_bytes
        data = self.payload_slice(own_off, self.block_bytes)
        if data is not None:
            self.write_result(rank, own_off, data)
        if rank == machine.node_ranks(0)[0]:
            self.start.trigger(None)
        npeers = machine.ppn - 1
        if rank == master:
            # No staging: the send flows read the peers' mapped buffers.
            # Map each peer's contribution once (cached across steps).
            for peer_local in range(1, machine.ppn):
                peer_rank = machine.node_ranks(node)[peer_local]
                yield from ctx.windows.map_buffer(
                    peer_local, ("ag-block", peer_rank), self.block_bytes
                )
            node_off, node_size = self.node_block_range(node)
            block = self.payload_slice(node_off, node_size)
            if block is not None:
                self.write_result(rank, node_off, block)
            self.rank_received[rank].add(node_size)
            self.own_ready[node].trigger(None)
            # Publish ring arrivals to the peers via the S/W counter.
            for _ in range(self.nnodes - 1):
                offset, size = yield self.mailbox[node].get()
                yield engine.timeout(
                    params.dma_counter_poll + params.flag_cost
                )
                self.records[node].append((offset, size))
                self.published[node].add(1)
        else:
            # Copy the local node block pieces directly from the local
            # contributors (all buffers mapped), then chase the master's
            # published counter for remote node blocks.
            for peer_local in range(machine.ppn):
                if peer_local == ctx.local_rank:
                    continue
                peer_rank = machine.node_ranks(node)[peer_local]
                yield from ctx.windows.map_buffer(
                    peer_local, ("ag-block", peer_rank), self.block_bytes
                )
                yield from ctx.node.core_copy(
                    self.block_bytes, name="ag.local"
                )
                poff = peer_rank * self.block_bytes
                pdata = self.payload_slice(poff, self.block_bytes)
                if pdata is not None:
                    self.write_result(rank, poff, pdata)
            for i in range(self.nnodes - 1):
                if self.published[node].value < i + 1:
                    yield self.published[node].wait_for(i + 1)
                    yield engine.timeout(params.flag_cost)
                offset, size = self.records[node][i]
                yield from ctx.windows.map_buffer(
                    0, ("ag-recv", master), self.nbytes
                )
                yield from ctx.node.core_copy(size, name="ag.remote")
                rdata = self.payload_slice(offset, size)
                if rdata is not None:
                    self.write_result(rank, offset, rdata)
