"""Collective algorithms: the paper's baselines and proposed schemes.

Broadcast over the 3D torus (large messages, section V-A):

========================  ====================================================
``torus-direct-put``      current best DMA algorithm (baseline; the DMA also
                          moves data intra-node — the "fourth dimension")
``torus-direct-put-smp``  the SMP-mode reference (one process per node)
``torus-fifo``            proposed: shared-memory Bcast FIFO intra-node
``torus-shaddr``          proposed: shared-address + software message counters
========================  ====================================================

Broadcast over the collective network (short/medium, section V-B):

==========================  ==================================================
``tree-smp``                SMP-mode reference (hardware envelope)
``tree-dma-fifo``           current: DMA delivers to peers' memory FIFOs
``tree-dma-direct-put``     current: DMA direct-puts into peers' buffers
``tree-shmem``              proposed latency scheme: shared staging segment
``tree-shaddr``             proposed bandwidth scheme: core specialization
==========================  ==================================================

Allreduce over the torus (section V-C):

===========================  =================================================
``allreduce-torus-current``  baseline ring+bcast, DMA moves everything
``allreduce-torus-shaddr``   proposed: one network core + three reduce/bcast
                             cores (one per color), counter-pipelined
===========================  =================================================

Plus the future-work extension (section VII): shared-memory/-address
allgather algorithms.
"""

from repro.collectives.base import (
    BcastInvocation,
    CollectiveResult,
    InvocationSession,
    ProcContext,
)
from repro.collectives.registry import (
    AlgorithmInfo,
    allreduce_algorithm,
    bcast_algorithm,
    families,
    get_algorithm,
    iter_algorithms,
    list_algorithms,
    list_allreduce_algorithms,
    list_bcast_algorithms,
    register,
    select_protocol,
)

__all__ = [
    "AlgorithmInfo",
    "BcastInvocation",
    "CollectiveResult",
    "InvocationSession",
    "ProcContext",
    "families",
    "get_algorithm",
    "iter_algorithms",
    "list_algorithms",
    "register",
    "select_protocol",
    # deprecated shims
    "bcast_algorithm",
    "allreduce_algorithm",
    "list_bcast_algorithms",
    "list_allreduce_algorithms",
]
