"""Barrier algorithms.

BG/P has a dedicated *global interrupt network* that completes a barrier in
a few microseconds (the reason the paper's Fig-5 loop can afford a barrier
per iteration).  For context — and because software barriers matter on
partitions where the GI network is unavailable — three algorithms:

``barrier-gi``
    The global interrupt network: a fixed-latency hardware AND-tree.

``barrier-tree``
    A 1-packet allreduce on the collective network: local ranks flag the
    master, masters inject/drain one packet, masters flag the peers.

``barrier-torus``
    Dissemination over the torus: ``ceil(log2 N)`` rounds; in round ``k``
    node ``i`` signals node ``(i + 2^k) mod N`` with a single packet, plus
    the same intra-node flag fan-in/fan-out.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.collectives.base import InvocationBase
from repro.collectives.registry import register
from repro.hardware.machine import Machine
from repro.sim.events import Event
from repro.sim.sync import SimBarrier, SimCounter


class BarrierInvocation(InvocationBase):
    """Base class: a barrier moves no payload, only synchronisation."""

    def __init__(self, machine: Machine, window_caching: bool = True):
        super().__init__(machine, 0, 0, window_caching)
        self.setup()

    def verify(self) -> None:
        """A barrier's correctness is its synchronisation property, which
        the tests check from the recorded release times."""


@register("barrier", data_carrying=False)
class GiBarrier(BarrierInvocation):
    """The global-interrupt-network hardware barrier."""

    name = "barrier-gi"
    network = "gi"

    def setup(self) -> None:
        self._barrier = SimBarrier(
            self.machine.engine,
            self.machine.nprocs,
            latency=self.machine.params.barrier_latency,
        )

    def proc(self, rank: int):
        yield self.machine.engine.timeout(
            self.machine.params.mpi_overhead
        )
        yield self._barrier.wait()


@register("barrier", data_carrying=False)
class TreeBarrier(BarrierInvocation):
    """A one-packet combining-tree barrier."""

    name = "barrier-tree"
    network = "tree"

    def setup(self) -> None:
        machine = self.machine
        params = machine.params
        self.op = machine.tree.operation(
            params.tree_packet_bytes, params.tree_packet_bytes
        )
        engine = machine.engine
        #: local fan-in: peers arrived at the barrier
        self.arrived: List[SimCounter] = [
            SimCounter(engine, name=f"n{n}.bar.in")
            for n in range(machine.nnodes)
        ]
        #: local fan-out: master observed the global release
        self.released: List[Event] = [
            Event(engine) for _ in range(machine.nnodes)
        ]

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        npeers = machine.ppn - 1
        if rank == master:
            if npeers:
                yield self.arrived[node].wait_for(npeers)
            yield engine.timeout(params.tree_inject_startup)
            yield from self.op.inject(node, 0)
            yield from self.op.receive(node, 0)
            yield engine.timeout(params.flag_cost)
            self.released[node].trigger(None)
        else:
            yield engine.timeout(params.flag_cost)
            self.arrived[node].add(1)
            yield self.released[node]
            yield engine.timeout(params.flag_cost)


@register("barrier", data_carrying=False)
class TorusDisseminationBarrier(BarrierInvocation):
    """Dissemination barrier over the torus (log2 N rounds of packets)."""

    name = "barrier-torus"
    network = "ptp"

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        n = machine.nnodes
        self.rounds = max(0, math.ceil(math.log2(n))) if n > 1 else 0
        #: per (node, round): the round-k notification has arrived
        self.notified: Dict[tuple, Event] = {
            (node, k): Event(engine)
            for node in range(n)
            for k in range(self.rounds)
        }
        self.arrived: List[SimCounter] = [
            SimCounter(engine, name=f"n{i}.bar.in") for i in range(n)
        ]
        self.released: List[Event] = [Event(engine) for _ in range(n)]

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        npeers = machine.ppn - 1
        yield engine.timeout(params.mpi_overhead)
        if rank != master:
            yield engine.timeout(params.flag_cost)
            self.arrived[node].add(1)
            yield self.released[node]
            yield engine.timeout(params.flag_cost)
            return
        if npeers:
            yield self.arrived[node].wait_for(npeers)
        n = machine.nnodes
        for k in range(self.rounds):
            partner = (node + (1 << k)) % n
            yield from ctx.dma.post()
            delivered = machine.network.ptp_send(
                0, node, partner, params.torus_packet_bytes,
                name=f"bar.n{node}.k{k}",
            )
            delivered.on_trigger(
                lambda _v, partner=partner, k=k:
                self.notified[(partner, k)].trigger(None)
            )
            yield self.notified[(node, k)]
        yield engine.timeout(params.flag_cost)
        self.released[node].trigger(None)
