"""Shared machinery for collective-algorithm invocations.

Every algorithm follows the same shape:

* an **invocation** object holds the per-call shared state (message
  counters, FIFOs, delivery registries, payload buffers) for one collective
  on one machine;
* per MPI rank, :meth:`proc` returns the coroutine that rank's core runs;
  background helpers (DMA forwarders, comm threads) are spawned by the
  invocation as *service* coroutines;
* the invocation optionally carries **real payload bytes** so tests can
  assert bit-exact delivery; large benchmark runs disable this and simulate
  timing only.

Timing follows the paper's Fig-5 microbenchmark: the harness barriers, then
measures each rank's elapsed time through the collective; the reported
elapsed time of one iteration is the maximum over ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.machine import Machine
from repro.kernel.windows import ProcessWindows
from repro.util.buffers import same_bytes
from repro.util.units import bandwidth_mbs


@dataclass
class CollectiveResult:
    """Outcome of one measured collective run."""

    algorithm: str
    nbytes: int
    nprocs: int
    #: mean over iterations of (max over ranks) elapsed µs — Fig-5 style
    elapsed_us: float
    #: per-iteration elapsed times (µs)
    iterations_us: List[float] = field(default_factory=list)
    #: transient-fault retries absorbed inside the run (window remaps etc.)
    retries: int = 0
    #: protocols abandoned mid-run, in fallback order (empty when healthy)
    fallbacks: List[str] = field(default_factory=list)
    #: µs of simulated time spent on failed attempts before the protocol
    #: that finally completed (0.0 when the first choice succeeded)
    recovery_time: float = 0.0
    #: :class:`repro.telemetry.manifest.RunManifest` attached by
    #: :func:`repro.bench.harness.run_collective` (plain picklable data, so
    #: results survive the parallel executor)
    manifest: Optional["object"] = None

    @property
    def bandwidth_mbs(self) -> float:
        """Throughput in MB/s, as in the paper's bandwidth figures.

        Zero-byte collectives (a barrier, an empty broadcast) and
        zero-elapsed runs move no measurable bytes per second: 0.0, not a
        ZeroDivisionError.
        """
        if self.nbytes <= 0 or self.elapsed_us <= 0:
            return 0.0
        return bandwidth_mbs(self.nbytes, self.elapsed_us)

    def __str__(self) -> str:
        text = (
            f"{self.algorithm}: {self.nbytes} B in {self.elapsed_us:.2f} us "
            f"({self.bandwidth_mbs:.1f} MB/s) on {self.nprocs} procs"
        )
        if self.retries or self.fallbacks:
            text += (
                f" [retries={self.retries}"
                f" fallbacks={'>'.join(self.fallbacks) or '-'}"
                f" recovery={self.recovery_time:.2f} us]"
            )
        return text


class InvocationSession:
    """Window-service lifecycle shared across repeated invocations.

    The Fig-8 "caching" behaviour: shared-address mapping caches live in
    per-rank :class:`ProcessWindows` services, and those services must
    persist across the iterations of a measurement loop so only the first
    iteration pays mapping system calls.  A session owns that per-rank
    dict; :meth:`adopt` installs it into each fresh invocation, so every
    invocation adopted by the same session sees (and extends) the same
    caches.
    """

    def __init__(self) -> None:
        self.windows_by_rank: Dict[int, "ProcessWindows"] = {}

    def adopt(self, invocation: "InvocationBase") -> "InvocationBase":
        """Install this session's window services into ``invocation``."""
        invocation.install_windows(self.windows_by_rank)
        return invocation


class ProcContext:
    """Everything one MPI rank needs during an invocation."""

    def __init__(self, machine: Machine, rank: int,
                 windows: Optional[ProcessWindows] = None):
        self.machine = machine
        self.rank = rank
        self.node_index = machine.rank_to_node(rank)
        self.node = machine.nodes[self.node_index]
        self.local_rank = machine.rank_to_local(rank)
        self.dma = machine.dma[self.node_index]
        #: per-process window service (present for shared-address schemes)
        self.windows = windows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcContext rank={self.rank} node={self.node_index}>"


class InvocationBase:
    """Common state of one collective call: windows, contexts, data hooks.

    Subclasses (broadcast, allreduce, allgather families) implement
    :meth:`setup` and :meth:`proc` and define what the payload means.  The
    torus/tree network engines only rely on this interface: ``machine``,
    ``root``, ``nbytes``, ``carry_data``, :meth:`payload_slice` and
    :meth:`write_result`.
    """

    #: registry name, set by concrete algorithms
    name: str = "?"
    #: "torus" or "tree"
    network: str = "?"

    def __init__(self, machine: Machine, root: int, nbytes: int,
                 window_caching: bool = True):
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        machine.check_rank(root)
        self.machine = machine
        self.root = root
        self.nbytes = nbytes
        self.window_caching = window_caching
        self.carry_data = False
        self._windows: Dict[int, ProcessWindows] = {}

    # -- to implement ---------------------------------------------------
    def setup(self) -> None:
        """Build shared state and spawn service coroutines."""
        raise NotImplementedError

    def proc(self, rank: int):
        """Return the coroutine executed by ``rank``'s core."""
        raise NotImplementedError

    def verify(self) -> None:
        """Assert delivered data is correct (requires carry_data)."""
        raise NotImplementedError

    # -- data hooks (overridden by data-carrying subclasses) ----------------
    def payload_slice(self, offset: int, size: int) -> Optional[np.ndarray]:
        """A byte slice of the logical payload (None when timing-only)."""
        return None

    def write_result(self, rank: int, offset: int, data: np.ndarray) -> None:
        """Record delivered payload bytes for ``rank`` (no-op by default)."""

    # -- window services -------------------------------------------------
    def context(self, rank: int) -> ProcContext:
        """Build the :class:`ProcContext` for a rank (window services are
        cached per rank for the lifetime of the invocation)."""
        windows = self._windows.get(rank)
        if windows is None:
            windows = ProcessWindows(
                self.machine, caching=self.window_caching,
                node=self.machine.rank_to_node(rank),
            )
            self._windows[rank] = windows
        return ProcContext(self.machine, rank, windows)

    def install_windows(self, windows_by_rank: Dict[int, ProcessWindows]) -> None:
        """Share window services across iterations (mapping caches persist,
        which is exactly the Fig-8 'caching' behaviour).  The dict is shared
        by reference: services this invocation creates are visible to later
        invocations installed with the same dict."""
        self._windows = windows_by_rank

    @property
    def windows_by_rank(self) -> Dict[int, ProcessWindows]:
        return self._windows

    @staticmethod
    def session() -> InvocationSession:
        """Start an :class:`InvocationSession` (Fig-8 cache lifecycle)."""
        return InvocationSession()


class BcastInvocation(InvocationBase):
    """Base class for one broadcast call.

    ``payload`` is the root's message; when carried, ``result_buffers[rank]``
    receives the delivered bytes for verification.
    """

    def __init__(
        self,
        machine: Machine,
        root: int,
        nbytes: int,
        payload: Optional[np.ndarray] = None,
        window_caching: bool = True,
    ):
        super().__init__(machine, root, nbytes, window_caching)
        self.carry_data = payload is not None
        if self.carry_data and payload.nbytes != nbytes:
            raise ValueError(
                f"payload is {payload.nbytes} B but nbytes={nbytes}"
            )
        self.payload = payload
        #: rank -> delivered bytes (filled when carry_data).  The root
        #: starts with the payload itself *by reference* — copy-on-write,
        #: so a verify-carrying attempt pays no O(nbytes) copy unless an
        #: algorithm actually writes into the root's buffer.
        self.result_buffers: Dict[int, np.ndarray] = {}
        if self.carry_data:
            for rank in range(machine.nprocs):
                if rank == root:
                    self.result_buffers[rank] = payload
                else:
                    self.result_buffers[rank] = np.zeros(nbytes, dtype=np.uint8)
        self.setup()

    def write_result(self, rank: int, offset: int, data: np.ndarray) -> None:
        if self.carry_data:
            buffer = self.result_buffers[rank]
            if buffer is self.payload:
                # First write into the root's buffer: materialize the copy
                # now so the caller-owned payload stays pristine.
                buffer = np.array(self.payload, copy=True)
                self.result_buffers[rank] = buffer
            buffer[offset:offset + data.nbytes] = data

    def payload_slice(self, offset: int, size: int) -> Optional[np.ndarray]:
        if not self.carry_data:
            return None
        return self.payload[offset:offset + size]

    def verify(self) -> None:
        """Assert every rank holds the root's bytes (requires carry_data)."""
        if not self.carry_data:
            raise RuntimeError("verify() requires carry_data=True")
        for rank in range(self.machine.nprocs):
            # memoryview-based: zero-copy, and O(1) for the root when no
            # write ever displaced its shared reference to the payload.
            if not same_bytes(self.result_buffers[rank], self.payload):
                mismatch = int(
                    np.argmax(self.result_buffers[rank] != self.payload)
                )
                raise AssertionError(
                    f"rank {rank}: payload mismatch at byte {mismatch}"
                )
