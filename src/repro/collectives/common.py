"""Helpers shared by several collective algorithms."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.events import AllOf
from repro.sim.resources import Store


class DmaDirectPutDistributor:
    """The intra-node 'fourth dimension' of the current (baseline) schemes.

    Every chunk that arrives at a node is direct-put by the DMA into each
    peer process's application buffer.  The DMA processes descriptors in
    FIFO order per injection queue, so one service coroutine per node drains
    the copies in arrival order (this also keeps the number of simultaneously
    active flows — and hence the fluid solver's component sizes — small).

    ``on_landed(peer_rank, goff, size)`` fires when a peer's copy completes.
    """

    def __init__(
        self,
        inv,  # any invocation (duck-typed: machine, net with total_chunks)
        total_chunks_per_node: int,
        on_landed: Callable[[int, int, int], None],
    ):
        self.inv = inv
        self.machine = inv.machine
        self.on_landed = on_landed
        self.total = total_chunks_per_node
        self._queues: Dict[int, Store] = {}
        machine = self.machine
        for node in range(machine.nnodes):
            peers = machine.node_ranks(node)[1:]
            if not peers:
                continue
            queue = Store(machine.engine, name=f"n{node}.dput")
            self._queues[node] = queue
            machine.spawn(
                self._copier(node, queue, peers), name=f"dput.n{node}"
            )

    def push(self, node: int, goff: int, size: int) -> None:
        """Enqueue a chunk for DMA distribution on ``node``."""
        queue = self._queues.get(node)
        if queue is not None:
            queue.put((goff, size))

    def _copier(self, node: int, queue: Store, peers: List[int]):
        machine = self.machine
        dma = machine.dma[node]
        for _ in range(self.total):
            goff, size = yield queue.get()
            flows = [
                dma.local_copy_flow(size, name=f"dput.r{peer}")
                for peer in peers
            ]
            for peer, flow in zip(peers, flows):
                flow.event.on_trigger(
                    lambda _v, peer=peer, goff=goff, size=size:
                    self.on_landed(peer, goff, size)
                )
            yield AllOf(machine.engine, [f.event for f in flows])
