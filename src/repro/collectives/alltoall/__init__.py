"""Alltoall algorithms (extension).

``MPI_Alltoall`` gives every rank a distinct block from every other rank —
the communication backbone of distributed FFTs and transposes, and the
heaviest-traffic collective (N² blocks).  The network protocol is the
classic *shift* algorithm at node level: in round ``s`` every node sends
the block-set destined for node ``(i + s) mod N`` and receives from
``(i - s) mod N``, so all rounds keep every link busy without hot spots.

The intra-node contrast follows the paper:

``alltoall-shift-current``
    The DMA stages outgoing node block-sets from the four local ranks and
    direct-puts each arriving set's sub-blocks to the peers.

``alltoall-shift-shaddr``
    Outgoing sets are read in place from mapped peer buffers; arriving
    sets are published through software counters and the peer cores copy
    their own sub-blocks directly out of the master's receive buffer.
"""

from repro.collectives.alltoall.base import AlltoallInvocation
from repro.collectives.alltoall.shift import (
    ShiftCurrentAlltoall,
    ShiftShaddrAlltoall,
)

__all__ = [
    "AlltoallInvocation",
    "ShiftCurrentAlltoall",
    "ShiftShaddrAlltoall",
]
