"""Node-level shift alltoall: DMA-staged vs shared-address variants.

Round structure: for ``s = 1 .. N-1``, node ``i`` sends the block-set
destined for node ``(i + s) mod N``.  All nodes send concurrently with
distinct destinations, so rounds use disjoint node pairs; the torus routes
them dimension-ordered and the flow network charges any link sharing
honestly.  Rounds are pipelined per node — a node starts round ``s+1`` as
soon as its round-``s`` injection completes.

The intra-node stages are the paper's contrast:

* staging the *outgoing* node set (gathering the four local ranks' blocks
  for one destination node) — DMA copies vs in-place mapped reads;
* distributing each *arriving* set's sub-blocks to the local ranks — DMA
  direct puts vs counter-published direct core copies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.collectives.alltoall.base import AlltoallInvocation
from repro.collectives.registry import register
from repro.msg.color import torus_colors
from repro.sim.events import AllOf, Event
from repro.sim.sync import SimCounter


class _ShiftAlltoallBase(AlltoallInvocation):
    """Common shift-round machinery."""

    network = "ptp"

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        self.nnodes = machine.nnodes
        self.color = torus_colors(1)[0]
        self.start = Event(engine)
        #: per-rank: number of source blocks present in the rank's buffer
        self.rank_blocks: Dict[int, SimCounter] = {
            rank: SimCounter(engine, name=f"r{rank}.a2a")
            for rank in range(machine.nprocs)
        }
        for node in range(self.nnodes):
            machine.spawn(self._node_engine(node), name=f"a2a.n{node}")

    # -- hooks ----------------------------------------------------------
    def _stage_outgoing(self, node: int, dst_node: int):
        """Sub-generator: make the node set for ``dst_node`` sendable."""
        raise NotImplementedError

    def _distribute_arrival(self, node: int, src_node: int):
        """Sub-generator: hand an arrived node set to the local ranks."""
        raise NotImplementedError

    # -- the shift rounds ----------------------------------------------------
    def _node_engine(self, node: int):
        yield self.start
        machine = self.machine
        engine = machine.engine
        set_bytes = self.node_set_bytes()
        if set_bytes == 0:
            return
        # Local (same-node) exchange first: handled as an "arrival" from
        # ourselves so the variant's distribution stage applies.
        yield from self._stage_outgoing(node, node)
        yield from self._distribute_arrival(node, node)
        for s in range(1, self.nnodes):
            dst_node = (node + s) % self.nnodes
            yield from self._stage_outgoing(node, dst_node)
            yield engine.timeout(machine.params.dma_startup)
            delivered = machine.network.ptp_send(
                self.color.id, node, dst_node, set_bytes,
                name=f"a2a.n{node}.s{s}",
            )
            arrival_handler = self._arrival_process(dst_node, node)
            delivered.on_trigger(
                lambda _v, handler=arrival_handler, dst=dst_node:
                self.machine.spawn(handler, name=f"a2a.arr.n{dst}")
            )
            # In-order injection per node; rounds pipeline across nodes.
            yield delivered

    def _arrival_process(self, node: int, src_node: int):
        yield from self._distribute_arrival(node, src_node)

    # -- per-rank coroutine --------------------------------------------------
    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.block_bytes == 0 or machine.nprocs == 1:
            if self.carry_data and machine.nprocs == 1:
                self.deliver(rank, rank)
            return
        yield engine.timeout(params.mpi_overhead)
        if rank == 0:
            self.start.trigger(None)
        yield self.rank_blocks[rank].wait_for(machine.nprocs)
        yield engine.timeout(params.dma_counter_poll)

    # -- shared accounting ---------------------------------------------------
    def _mark_delivered(self, src_node: int, dst_node: int) -> None:
        self.deliver_node_set(src_node, dst_node)
        ppn = self.machine.ppn
        for dst_rank in self.machine.node_ranks(dst_node):
            self.rank_blocks[dst_rank].add(ppn)


@register("alltoall")
class ShiftCurrentAlltoall(_ShiftAlltoallBase):
    """Baseline: DMA stages outgoing sets and direct-puts arrivals."""

    name = "alltoall-shift-current"

    def _stage_outgoing(self, node: int, dst_node: int):
        machine = self.machine
        ppn = machine.ppn
        if ppn > 1:
            # DMA copies each local peer's ppn destination blocks into the
            # master's staging buffer.
            dma = machine.dma[node]
            flows = [
                dma.local_copy_flow(
                    ppn * self.block_bytes, name="a2a.stage"
                )
                for _ in range(ppn - 1)
            ]
            yield AllOf(machine.engine, [f.event for f in flows])

    def _distribute_arrival(self, node: int, src_node: int):
        machine = self.machine
        ppn = machine.ppn
        if ppn > 1:
            dma = machine.dma[node]
            flows = [
                dma.local_copy_flow(
                    ppn * self.block_bytes, name="a2a.dput"
                )
                for _ in range(ppn - 1)
            ]
            yield AllOf(machine.engine, [f.event for f in flows])
        yield machine.engine.timeout(machine.params.dma_counter_poll)
        self._mark_delivered(src_node, node)


@register("alltoall", shared_address=True)
class ShiftShaddrAlltoall(_ShiftAlltoallBase):
    """Proposed: mapped in-place reads out, counter-published copies in."""

    name = "alltoall-shift-shaddr"

    def setup(self) -> None:
        super().setup()
        self._mapped: set = set()

    def _stage_outgoing(self, node: int, dst_node: int):
        # No staging: sends read the local ranks' mapped buffers in place.
        # Charge the mapping system calls once per peer buffer.
        machine = self.machine
        if machine.ppn > 1 and node not in self._mapped:
            self._mapped.add(node)
            yield machine.engine.timeout(
                2 * machine.params.syscall_cost * (machine.ppn - 1)
            )
        return
        yield  # pragma: no cover

    def _distribute_arrival(self, node: int, src_node: int):
        machine = self.machine
        engine = machine.engine
        params = machine.params
        ppn = machine.ppn
        # Master publishes the arrival; each peer core copies its own ppn
        # sub-blocks straight out of the receive buffer.  The copies run
        # concurrently on distinct cores: model as parallel core flows.
        yield engine.timeout(params.dma_counter_poll + params.flag_cost)
        if ppn > 1:
            node_obj = machine.nodes[node]
            flows = [
                machine.flownet.transfer(
                    {node_obj.mem: 2.0},
                    ppn * self.block_bytes,
                    cap=node_obj.regime.core_copy_cap,
                    name="a2a.copy",
                )
                for _ in range(ppn - 1)
            ]
            yield AllOf(engine, [f.event for f in flows])
        self._mark_delivered(src_node, node)
