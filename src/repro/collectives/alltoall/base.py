"""Base class for alltoall invocations.

``blocks[src, dst]`` is the block rank ``src`` sends to rank ``dst``; rank
``r`` must end with the column ``blocks[:, r]`` assembled in source order.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.collectives.base import InvocationBase
from repro.hardware.machine import Machine


class AlltoallInvocation(InvocationBase):
    """One ``MPI_Alltoall`` call."""

    def __init__(
        self,
        machine: Machine,
        block_bytes: int,
        blocks: Optional[np.ndarray] = None,
        window_caching: bool = True,
    ):
        if block_bytes < 0:
            raise ValueError(f"block_bytes must be >= 0, got {block_bytes}")
        # Total bytes each rank receives (= sends).
        super().__init__(
            machine, 0, block_bytes * machine.nprocs, window_caching
        )
        self.block_bytes = block_bytes
        self.carry_data = blocks is not None
        self.blocks = blocks
        if self.carry_data:
            expected_shape = (machine.nprocs, machine.nprocs, block_bytes)
            if blocks.shape != expected_shape:
                raise ValueError(
                    f"blocks must have shape {expected_shape}, got "
                    f"{blocks.shape}"
                )
            self.result_buffers: Dict[int, np.ndarray] = {
                rank: np.zeros(
                    (machine.nprocs, block_bytes), dtype=np.uint8
                )
                for rank in range(machine.nprocs)
            }
        self.setup()

    def deliver(self, src_rank: int, dst_rank: int) -> None:
        """Record that ``src_rank``'s block reached ``dst_rank``'s buffer."""
        if self.carry_data:
            self.result_buffers[dst_rank][src_rank] = (
                self.blocks[src_rank, dst_rank]
            )

    def deliver_node_set(self, src_node: int, dst_node: int) -> None:
        """All blocks from ``src_node``'s ranks to ``dst_node``'s ranks."""
        if not self.carry_data:
            return
        for src_rank in self.machine.node_ranks(src_node):
            for dst_rank in self.machine.node_ranks(dst_node):
                self.deliver(src_rank, dst_rank)

    def node_set_bytes(self) -> int:
        """Bytes of one node->node block set (ppn x ppn blocks)."""
        ppn = self.machine.ppn
        return ppn * ppn * self.block_bytes

    def verify(self) -> None:
        if not self.carry_data:
            raise RuntimeError("verify() requires carry_data=True")
        for rank in range(self.machine.nprocs):
            expected = self.blocks[:, rank]
            if not np.array_equal(self.result_buffers[rank], expected):
                src = int(
                    np.argmax(
                        (self.result_buffers[rank] != expected).any(axis=1)
                    )
                )
                raise AssertionError(
                    f"rank {rank}: alltoall missing/incorrect block from "
                    f"rank {src}"
                )
