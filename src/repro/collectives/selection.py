"""Data-driven protocol selection (the paper's CCMI-style policy).

The BG/P stack picks a protocol per collective by message size and mode
("depending on the message size, either the Torus or the Collective
network based algorithms perform optimally", section V).  Instead of one
hand-written ``if`` ladder per collective, the policy lives in a single
table: per family, a list of mode rules, each carrying ordered
``(max_nbytes, algorithm)`` crossovers.

Semantics
---------

* A rule matches when the caller's ``ppn`` is in its mode tuple; ``None``
  is a wildcard that matches any remaining ppn (rules are tried in
  order).
* Within a rule, the first crossover with ``nbytes <= max_nbytes`` wins;
  ``None`` means "no upper bound" and terminates the ladder.
* ``nbytes`` is the family's natural size argument expressed in bytes:
  the message size for bcast, ``count * 8`` for the double-sum
  reductions, the per-rank block size for allgather.

The bcast column reproduces the historical ``select_bcast`` exactly:
short messages take the latency-optimized shared-memory tree scheme,
medium messages the core-specialized shared-address tree scheme, large
messages move to the torus where six links beat the single tree link;
SMP mode has no intra-node stage and uses the plain hardware protocols.
The allreduce and reduce columns encode section V-C (the shared-address
torus schemes are quad-mode algorithms and need large messages to
amortize the reduce-scatter pipeline); the allgather column follows the
section VII extension (the shared-address ring pays window mapping, so
tiny blocks stay on the current DMA scheme).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.network import UnsupportedTopologyError
from repro.util.units import KIB

#: one crossover: (inclusive upper bound in bytes or None, algorithm name)
Crossover = Tuple[Optional[int], str]
#: one mode rule: (ppn values or None = any remaining, crossover ladder)
ModeRule = Tuple[Optional[Tuple[int, ...]], Tuple[Crossover, ...]]

#: family -> ordered mode rules (first matching ppn wins)
SELECTION_TABLE: Dict[str, Tuple[ModeRule, ...]] = {
    "bcast": (
        ((1,), (
            (256 * KIB, "tree-smp"),
            (None, "torus-direct-put-smp"),
        )),
        (None, (
            (8 * KIB, "tree-shmem"),
            (256 * KIB, "tree-shaddr"),
            (None, "torus-shaddr"),
        )),
    ),
    "allreduce": (
        ((4,), (
            (64 * KIB, "allreduce-tree"),
            (None, "allreduce-torus-shaddr"),
        )),
        (None, (
            (None, "allreduce-tree"),
        )),
    ),
    "allgather": (
        ((1,), (
            (None, "allgather-ring-current"),
        )),
        (None, (
            (8 * KIB, "allgather-ring-current"),
            (None, "allgather-ring-shaddr"),
        )),
    ),
    "reduce": (
        ((4,), (
            (None, "reduce-torus-shaddr"),
        )),
        (None, (
            (None, "reduce-torus-current"),
        )),
    ),
}

#: the policy for switched point-to-point fabrics (fat-tree, leaf-spine):
#: no collective tree and no deposit-bit line broadcasts exist there, so
#: every family falls back to its ring/point-to-point schemes.  The
#: intra-node split survives unchanged — quad mode still prefers the
#: shared-address schemes once their window-mapping cost amortizes.
_PTP_SELECTION_TABLE: Dict[str, Tuple[ModeRule, ...]] = {
    "bcast": (
        (None, (
            (None, "ring-pipelined"),
        )),
    ),
    # The rectangle-schedule allreduces ride the torus wire; switched
    # fabrics get the ring-reduction + ring-broadcast pipeline instead.
    "allreduce": (
        (None, (
            (None, "allreduce-ring-pipelined"),
        )),
    ),
    "allgather": (
        ((1,), (
            (None, "allgather-ring-current"),
        )),
        (None, (
            (8 * KIB, "allgather-ring-current"),
            (None, "allgather-ring-shaddr"),
        )),
    ),
    "reduce": (
        ((4,), (
            (None, "reduce-torus-shaddr"),
        )),
        (None, (
            (None, "reduce-torus-current"),
        )),
    ),
}

#: network backend -> its selection table
SELECTION_TABLES: Dict[str, Dict[str, Tuple[ModeRule, ...]]] = {
    "torus": SELECTION_TABLE,
    "fattree": _PTP_SELECTION_TABLE,
    "leafspine": _PTP_SELECTION_TABLE,
}


#: family -> algorithm -> next protocol to try when it faults out.
#: The ladder exploits that the tiers fail independently: the
#: shared-address schemes die with window-mapping (TLB-slot) exhaustion,
#: the FIFO/shmem schemes ride software message counters and stall with
#: the publishing core, and the DMA/direct-put schemes use hardware byte
#: counters that keep counting through both — so walking
#: Shaddr -> FIFO -> DMA always ends on a protocol the fault cannot touch.
FALLBACK_TABLE: Dict[str, Dict[str, str]] = {
    "bcast": {
        "tree-shaddr": "tree-shmem",
        "tree-shmem": "tree-dma-fifo",
        "tree-dma-fifo": "tree-dma-direct-put",
        "torus-shaddr": "torus-fifo",
        "torus-fifo": "torus-direct-put",
        "tree-smp": "torus-direct-put-smp",
    },
    "allreduce": {
        "allreduce-torus-shaddr": "allreduce-tree",
        "allreduce-tree": "allreduce-torus-current",
    },
    "allgather": {
        "allgather-ring-shaddr": "allgather-ring-current",
    },
    "alltoall": {
        "alltoall-shift-shaddr": "alltoall-shift-current",
    },
    "gather": {
        "gather-ring-shaddr": "gather-ring-current",
    },
    "reduce": {
        "reduce-torus-shaddr": "reduce-torus-current",
    },
    "scatter": {
        "scatter-ring-shaddr": "scatter-ring-current",
    },
}


def selectable_families() -> List[str]:
    """Families with a selection policy (``select_protocol`` targets)."""
    return sorted(SELECTION_TABLE)


def candidate_algorithms(family: str, ppn: int,
                         network: str = "torus") -> List[str]:
    """Registered algorithms of ``family`` runnable at ``ppn`` on ``network``.

    The measured tie-break of the prediction service's ``select``
    endpoint (:mod:`repro.serve`) measures exactly this set and picks
    the fastest — the selection table above states the paper's *policy*,
    this lists the *candidates* the policy chose among.  Filtering
    mirrors the harness's own gates: the algorithm's registered modes
    must include ``ppn`` and its wire must exist on the network backend.
    """
    from repro.collectives.registry import iter_algorithms
    from repro.hardware.network import backend_class

    wires = backend_class(network).wires
    return [
        info.name
        for info in iter_algorithms(family)
        if info.supports_ppn(ppn) and info.network in wires
    ]


def next_fallback(family: str, name: str) -> Optional[str]:
    """The protocol to degrade to when ``family``/``name`` faults out.

    Returns ``None`` at the bottom of the ladder (nothing hardier left).
    Mode filtering is the caller's job — see
    :func:`repro.collectives.registry.fallback_chain`.
    """
    return FALLBACK_TABLE.get(family, {}).get(name)


def select_protocol(family: str, nbytes: int, ppn: int,
                    network: str = "torus") -> str:
    """Pick the algorithm name for ``family`` at ``nbytes`` under ``ppn``.

    Walks the ``network``'s table in :data:`SELECTION_TABLES`; see the
    module docstring for the matching semantics.  An unknown family is a
    :class:`KeyError` (a lookup typo); a known family with no candidates
    on the requested network — or an unknown network — is an
    :class:`~repro.hardware.network.UnsupportedTopologyError` (a
    configuration statement, never to be swallowed by KeyError handlers).
    """
    if network not in SELECTION_TABLES:
        raise UnsupportedTopologyError(
            f"no selection policy for network {network!r}; "
            f"known: {sorted(SELECTION_TABLES)}"
        )
    if family not in SELECTION_TABLE:
        raise KeyError(
            f"no selection policy for family {family!r}; "
            f"known: {selectable_families()}"
        )
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if ppn < 1:
        raise ValueError(f"ppn must be >= 1, got {ppn}")
    table = SELECTION_TABLES[network]
    if family not in table:
        raise UnsupportedTopologyError(
            f"family {family!r} has no registered candidates on network "
            f"{network!r}; families there: {sorted(table)}"
        )
    for modes, ladder in table[family]:
        if modes is not None and ppn not in modes:
            continue
        for max_nbytes, algorithm in ladder:
            if max_nbytes is None or nbytes <= max_nbytes:
                return algorithm
    raise AssertionError(
        f"selection table for {family!r} has no terminal rule"
    )  # pragma: no cover - table invariant
