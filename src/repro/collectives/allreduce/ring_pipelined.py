"""Ring allreduce for switched point-to-point fabrics.

Fat-tree and leaf-spine backends have no deposit-bit line broadcasts, so
the rectangle-schedule allreduce variants cannot run there.  This
algorithm keeps the paper's V-C pipeline structure — a multi-color ring
reduction toward the root feeding a pipelined broadcast of the reduced
data — but rides plain ``ptp_send`` end to end:

1. **local gather + reduce** per node (the baseline scheme: DMA-staged
   copies of every peer's slice, then the cores sum the staged buffers);
2. :class:`~repro.collectives.allreduce.ring.RingReduce` per color over
   ``machine.network.ring_order`` — exactly the reduction the torus
   variants use, which is already point-to-point;
3. a chunked **ring broadcast** per color from the root (the
   ring-pipelined bcast scheme), fed chunk by chunk as the ring
   reduction produces results, with every arrived chunk DMA-direct-put
   into the node's peer buffers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.collectives.allreduce.base import DOUBLE, AllreduceInvocation
from repro.collectives.allreduce.ring import RingReduce
from repro.collectives.common import DmaDirectPutDistributor
from repro.collectives.registry import register
from repro.msg.color import partition_bytes, torus_colors
from repro.msg.pipeline import ChunkPlan
from repro.sim.events import AllOf, Event
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import ROLE_DMA_WAIT


@register("allreduce")
class RingPipelinedAllreduce(AllreduceInvocation):
    """Multi-color ring reduction + pipelined ring broadcast (any backend)."""

    name = "allreduce-ring-pipelined"
    network = "ptp"
    ncolors = 3

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        chunk = machine.params.pipeline_width
        self.colors = torus_colors(self.ncolors)
        self.parts = partition_bytes(self.nbytes, self.ncolors, align=DOUBLE)
        self.offsets = [sum(self.parts[:i]) for i in range(self.ncolors)]
        self.plans: List[ChunkPlan] = [
            ChunkPlan.build(self.parts[c], chunk)
            for c in range(self.ncolors)
        ]
        root_node = machine.rank_to_node(self.root)
        self.root_node = root_node
        self.start = Event(engine)
        # One protocol-core resource per node: the master core performs
        # every ring addition (baseline scheme, as in the torus variants).
        self.proto_cores = [
            machine.flownet.add_resource(
                f"n{n}.proto.rar{id(self)}",
                machine.nodes[n].regime.core_reduce_cap,
            )
            for n in range(machine.nnodes)
        ]
        self.contrib_ready: List[List[SimCounter]] = [
            [
                SimCounter(engine, name=f"c{c}.n{n}.contrib")
                for n in range(machine.nnodes)
            ]
            for c in range(self.ncolors)
        ]
        self.rank_received: Dict[int, SimCounter] = {
            rank: SimCounter(engine, name=f"r{rank}.result")
            for rank in range(machine.nprocs)
        }
        self.distributor = DmaDirectPutDistributor(
            self, sum(plan.nchunks for plan in self.plans),
            self._peer_landed,
        )
        #: per-color broadcast ring (position 0 is the root's node)
        self.rings_order: List[List[int]] = [
            machine.network.ring_order(color, root_node)
            for color in self.colors
        ]
        #: reduced chunk k of color c is staged at the root
        self._bc_ready: Dict[Tuple[int, int], Event] = {}
        #: (color, ring position, chunk) fully arrived at that position
        self._bc_arrive: Dict[Tuple[int, int, int], Event] = {}
        #: next chunk index the ring reduction will deliver, per color
        self._next_chunk = [0] * self.ncolors
        self.rings: List[RingReduce] = []
        for c, color in enumerate(self.colors):
            if self.parts[c] == 0:
                continue
            nchunks = self.plans[c].nchunks
            ring = self.rings_order[c]
            for k in range(nchunks):
                self._bc_ready[(c, k)] = Event(engine)
                for i in range(1, len(ring)):
                    self._bc_arrive[(c, i, k)] = Event(engine)
            for node in range(machine.nnodes):
                machine.spawn(
                    self._local_prepare(c, node, self.parts[c], chunk),
                    name=f"lprep.c{c}.n{node}",
                )
            self.rings.append(
                RingReduce(
                    self,
                    color,
                    ring,
                    self.offsets[c],
                    self.parts[c],
                    chunk,
                    self.contrib_ready[c],
                    self.proto_cores,
                    self.start,
                    lambda goff, size, c=c: self._root_ready(c, goff, size),
                )
            )
            for i in range(len(ring) - 1):
                machine.spawn(
                    self._bcast_position(c, i), name=f"rarb.c{c}.p{i}"
                )

    # -- stage 1: DMA gather + parallel local reduce ------------------------
    def _local_prepare(self, c: int, node: int, part_bytes: int, chunk: int):
        machine = self.machine
        dma = machine.dma[node]
        node_obj = machine.nodes[node]
        ppn = machine.ppn
        yield self.start
        plan = ChunkPlan.build(part_bytes, chunk)
        for _k, _off, size in plan.slices():
            if ppn > 1:
                gathers = [
                    dma.local_copy_flow(size, name=f"gather.c{c}")
                    for _ in range(ppn - 1)
                ]
                yield AllOf(machine.engine, [f.event for f in gathers])
                share = (size + ppn - 1) // ppn
                flows = [
                    machine.flownet.transfer(
                        {node_obj.mem: float(ppn + 1)},
                        share,
                        cap=node_obj.regime.core_reduce_cap,
                        name=f"lred.c{c}.n{node}",
                    )
                    for _ in range(ppn)
                ]
                yield AllOf(machine.engine, [f.event for f in flows])
            self.contrib_ready[c][node].add(size)

    # -- stage 2 -> 3 handoff ------------------------------------------------
    def _root_ready(self, c: int, goff: int, size: int) -> None:
        """The ring delivered a reduced chunk at the root: hand it to the
        root node's ranks and stage it into this color's broadcast ring
        (position 0 delivers chunks strictly in plan order)."""
        self._node_has_chunk(self.root_node, goff, size)
        k = self._next_chunk[c]
        self._next_chunk[c] += 1
        self._bc_ready[(c, k)].trigger(None)

    # -- stage 3: pipelined ring broadcast ----------------------------------
    def _bcast_position(self, c: int, i: int):
        """Forward color ``c``'s chunks from ring position ``i`` to ``i+1``."""
        yield self.start
        machine = self.machine
        engine = machine.engine
        ring = self.rings_order[c]
        node, successor = ring[i], ring[i + 1]
        for k, off, size in self.plans[c].slices():
            goff = self.offsets[c] + off
            if i == 0:
                yield self._bc_ready[(c, k)]
            else:
                yield self._bc_arrive[(c, i, k)]
            yield engine.timeout(machine.params.dma_startup)
            delivered = machine.network.ptp_send(
                self.colors[c].id, node, successor, size,
                name=f"rarb.c{c}.p{i}.k{k}",
            )
            delivered.on_trigger(
                lambda _v, c=c, position=i + 1, k=k, goff=goff, size=size:
                self._chunk_arrived(c, position, k, goff, size)
            )
            # In-order injection per connection.
            yield delivered

    def _chunk_arrived(self, c: int, position: int, k: int, goff: int,
                       size: int) -> None:
        self._bc_arrive[(c, position, k)].trigger(None)
        self._node_has_chunk(self.rings_order[c][position], goff, size)

    # -- intra-node landing --------------------------------------------------
    def _node_has_chunk(self, node: int, goff: int, size: int) -> None:
        master = self.machine.node_ranks(node)[0]
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(master, goff, data)
        self.rank_received[master].add(size)
        self.distributor.push(node, goff, size)

    def _peer_landed(self, peer: int, goff: int, size: int) -> None:
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(peer, goff, data)
        self.rank_received[peer].add(size)

    # -- per-rank coroutine ---------------------------------------------------
    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.count == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        tel = engine.telemetry
        if tel is not None:
            tel.set_role(rank, ctx.node_index, ROLE_DMA_WAIT)
        if rank == self.root:
            self.start.trigger(None)
        t0 = engine.now
        yield self.rank_received[rank].wait_for(self.nbytes)
        if tel is not None:
            tel.stall(t0, engine.now, rank, ctx.node_index,
                      "waiting-on-counter")
        yield engine.timeout(params.dma_counter_poll)
