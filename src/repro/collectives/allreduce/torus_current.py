"""Allreduce over the torus, current approach (section V-C-1).

"The basic idea in the algorithm used is to pipeline the reduction and
broadcast phases of the allreduce.  A ring algorithm is used in the
reduction followed by the broadcast of the reduced data from the assigned
root process. ... This scheme is not optimal as redundant copies of data
are transferred by the DMA for the reduction operation.  Also, the DMA
cannot keep pace with both the inter- and intra-node data transfers."

Concretely, per color partition:

1. **local gather + reduce** — the DMA copies the three peers' partitions
   into the master's staging area (the "redundant copies"), then the master
   core sums the four buffers;
2. **ring reduction** across nodes (master core does every addition);
3. **pipelined broadcast** of the reduced partition over the same color
   route, with the DMA direct-putting every arrived chunk into the three
   peer buffers (the intra-node "fourth dimension" again).

Everything except the cores' additions rides the DMA, so the engine is the
bottleneck — the "Current (MB/s)" column of Table I.
"""

from __future__ import annotations

from typing import Dict, List

from repro.collectives.allreduce.base import DOUBLE, AllreduceInvocation
from repro.collectives.allreduce.ring import RingReduce
from repro.collectives.bcast.torus_common import TorusBcastNetwork
from repro.collectives.common import DmaDirectPutDistributor
from repro.collectives.registry import register
from repro.msg.color import partition_bytes, torus_colors
from repro.msg.pipeline import ChunkPlan
from repro.sim.events import AllOf
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import ROLE_DMA_WAIT


@register("allreduce")
class TorusCurrentAllreduce(AllreduceInvocation):
    """Baseline multi-color ring+broadcast allreduce, DMA-driven intra-node."""

    name = "allreduce-torus-current"
    # The broadcast stage is the rectangle schedule over deposit-bit
    # line broadcasts: this algorithm needs the real torus wire.
    network = "torus"
    ncolors = 3
    trace_rows = (("lred.", "copy"), ("gather.", "dma"))

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        params = machine.params
        chunk = params.pipeline_width
        self.net = TorusBcastNetwork(
            self, self.ncolors, chunk, external_root_feed=True, align=DOUBLE
        )
        self.colors = torus_colors(self.ncolors)
        parts = partition_bytes(self.nbytes, self.ncolors, align=DOUBLE)
        offsets = [sum(parts[:i]) for i in range(self.ncolors)]
        root_node = machine.rank_to_node(self.root)
        # One protocol-core resource per node: the master core that performs
        # every reduction in this scheme.
        self.proto_cores = [
            machine.flownet.add_resource(
                f"n{n}.proto.cur{id(self)}",
                machine.nodes[n].regime.core_reduce_cap,
            )
            for n in range(machine.nnodes)
        ]
        # Per (color, node): bytes of the locally reduced contribution ready.
        self.contrib_ready: List[List[SimCounter]] = [
            [
                SimCounter(engine, name=f"c{c}.n{n}.contrib")
                for n in range(machine.nnodes)
            ]
            for c in range(self.ncolors)
        ]
        # Per-rank bytes of the final result landed in the rank's buffer.
        self.rank_received: Dict[int, SimCounter] = {
            rank: SimCounter(engine, name=f"r{rank}.result")
            for rank in range(machine.nprocs)
        }
        self.distributor = DmaDirectPutDistributor(
            self, self.net.total_chunks_per_node, self._peer_landed
        )
        self.net.on_chunk(self._distribute)
        self.rings: List[RingReduce] = []
        for c, color in enumerate(self.colors):
            if parts[c] == 0:
                continue
            for node in range(machine.nnodes):
                machine.spawn(
                    self._local_prepare(c, node, parts[c], chunk),
                    name=f"lprep.c{c}.n{node}",
                )
            self.rings.append(
                RingReduce(
                    self,
                    color,
                    machine.network.ring_order(color, root_node),
                    offsets[c],
                    parts[c],
                    chunk,
                    self.contrib_ready[c],
                    self.proto_cores,
                    self.net.start,
                    lambda goff, size, c=c: self._root_ready(c, goff, size),
                )
            )

    # -- stage 1: DMA gather (the "redundant copies") + parallel reduce -----
    def _local_prepare(self, c: int, node: int, part_bytes: int, chunk: int):
        """Before the ring, the DMA copies every peer process's slice into
        the master's staging area — "redundant copies of data are
        transferred by the DMA for the reduction operation" — after which
        the local cores sum the staged buffers in parallel shares."""
        machine = self.machine
        dma = machine.dma[node]
        node_obj = machine.nodes[node]
        ppn = machine.ppn
        yield self.net.start
        plan = ChunkPlan.build(part_bytes, chunk)
        for _k, _off, size in plan.slices():
            if ppn > 1:
                # Redundant DMA copies of every peer's slice into staging.
                gathers = [
                    dma.local_copy_flow(size, name=f"gather.c{c}")
                    for _ in range(ppn - 1)
                ]
                yield AllOf(machine.engine, [f.event for f in gathers])
                # The local cores reduce 1/ppn shares of the staged buffers.
                share = (size + ppn - 1) // ppn
                flows = [
                    machine.flownet.transfer(
                        {node_obj.mem: float(ppn + 1)},
                        share,
                        cap=node_obj.regime.core_reduce_cap,
                        name=f"lred.c{c}.n{node}",
                    )
                    for _ in range(ppn)
                ]
                yield AllOf(machine.engine, [f.event for f in flows])
            self.contrib_ready[c][node].add(size)

    # -- stage 2 -> 3 handoff -----------------------------------------------
    def _root_ready(self, c: int, goff: int, size: int) -> None:
        """Ring delivered a reduced chunk at the root: feed the broadcast."""
        master = self.machine.node_ranks(
            self.machine.rank_to_node(self.root)
        )[0]
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(master, goff, data)
        self.net.feed_root(self.colors[c].id, size)

    # -- stage 3 intra-node: DMA direct put ------------------------------
    def _distribute(self, node: int, color_id: int, goff: int, size: int
                    ) -> None:
        master = self.machine.node_ranks(node)[0]
        self.rank_received[master].add(size)
        self.distributor.push(node, goff, size)

    def _peer_landed(self, peer: int, goff: int, size: int) -> None:
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(peer, goff, data)
        self.rank_received[peer].add(size)

    # -- per-rank coroutine --------------------------------------------------
    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.count == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        tel = engine.telemetry
        if tel is not None:
            tel.set_role(rank, ctx.node_index, ROLE_DMA_WAIT)
        if rank == self.root:
            self.net.open()
        t0 = engine.now
        yield self.rank_received[rank].wait_for(self.nbytes)
        if tel is not None:
            tel.stall(t0, engine.now, rank, ctx.node_index,
                      "waiting-on-counter")
        yield engine.timeout(params.dma_counter_poll)
