"""Allreduce over the collective network (context algorithm).

The collective network's integer ALU makes short allreduces extremely fast
(section III-A); the paper's evaluation focuses on the large-message torus
algorithms, but the MPI layer still needs the short-message protocol to be
present for realistic auto-selection.  The structure mirrors the quad-mode
tree broadcast baselines: the master core locally reduces the node's
contributions (after DMA gathers them), injects the node sum, drains the
combined result, and the DMA direct-puts it to the peers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.collectives.allreduce.base import AllreduceInvocation
from repro.collectives.registry import register
from repro.hardware.tree import TreeOperation
from repro.sim.events import AllOf, Event


@register("allreduce")
class TreeAllreduce(AllreduceInvocation):
    """Short-message allreduce through the combining tree."""

    name = "allreduce-tree"
    network = "tree"

    def setup(self) -> None:
        machine = self.machine
        params = machine.params
        self.op: TreeOperation = machine.tree.operation(
            self.nbytes, params.pipeline_width
        )
        engine = machine.engine
        self.chunk_landed: Dict[int, List[Event]] = {
            rank: [Event(engine) for _ in range(self.op.nchunks)]
            for rank in range(machine.nprocs)
        }

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.count == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        peers = [r for r in machine.node_ranks(node) if r != master]
        if rank == master:
            yield engine.timeout(params.tree_inject_startup)
            offset = 0
            for k in range(self.op.nchunks):
                size = self.op.chunks[k]
                if peers:
                    # DMA gathers the peers' chunks, master core reduces.
                    flows = [
                        ctx.dma.local_copy_flow(size, name="tgather")
                        for _ in peers
                    ]
                    yield AllOf(engine, [f.event for f in flows])
                    yield from ctx.node.core_reduce(size, machine.ppn,
                                                    name="tlred")
                yield from self.op.inject(node, k)
                yield from self.op.receive(node, k)
                data = self.payload_slice(offset, size)
                if data is not None:
                    self.write_result(rank, offset, data)
                yield from ctx.dma.post()
                for peer in peers:
                    flow = ctx.dma.local_copy_flow(size, name=f"tput.r{peer}")
                    flow.event.on_trigger(
                        lambda _v, peer=peer, k=k:
                        self.chunk_landed[peer][k].trigger(None)
                    )
                offset += size
        else:
            offset = 0
            for k in range(self.op.nchunks):
                size = self.op.chunks[k]
                yield self.chunk_landed[rank][k]
                yield engine.timeout(params.dma_counter_poll)
                data = self.payload_slice(offset, size)
                if data is not None:
                    self.write_result(rank, offset, data)
                offset += size
