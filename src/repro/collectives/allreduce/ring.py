"""Pipelined ring reduction of one color's partition to the root node.

The network protocol of both allreduce variants (section V-C): "A ring
algorithm is used in the reduction followed by the broadcast of the reduced
data from the assigned root process.  Similar to the broadcast algorithm, a
multicolor scheme is used to select three edge-disjoint routes in the 3D
torus both for reduction and broadcast."

Per color, the snake ring (``repro.msg.routes.ring_order``) is traversed
from the far end toward the root: ring position ``i`` receives the running
partial from position ``i+1``, folds in its own (locally pre-reduced)
contribution on the node's *protocol core*, and forwards to position
``i-1``; position ``0`` (the root) produces the final partition, chunk by
chunk, feeding the pipelined broadcast stage.

The protocol core is a flow resource with a single core's reduction
throughput: all three colors' ring additions contend on it, which models
one dedicated core doing the whole network protocol (proposed scheme) or
the lone master core doing everything (current scheme).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.msg.color import Color
from repro.msg.pipeline import ChunkPlan
from repro.sim.events import Event
from repro.sim.flownet import FlowResource
from repro.sim.sync import SimCounter


class RingReduce:
    """One color's ring reduction; spawned entirely as service coroutines."""

    def __init__(
        self,
        inv,  # AllreduceInvocation (duck-typed)
        color: Color,
        ring: List[int],
        part_off: int,
        part_bytes: int,
        chunk_bytes: int,
        contrib_ready: List[SimCounter],
        proto_cores: List[FlowResource],
        start: Event,
        on_root_chunk: Callable[[int, int], None],
        reception_extra: Optional[Callable[[int, int], object]] = None,
    ):
        #: optional per-chunk reception work (a sub-generator factory taking
        #: (node, size)) run on the protocol core before the addition — the
        #: current scheme's memory-FIFO staging copy goes here; the proposed
        #: scheme direct-puts into the application buffer and passes None.
        self.reception_extra = reception_extra
        self.inv = inv
        self.machine = inv.machine
        self.color = color
        self.ring = ring
        self.part_off = part_off
        self.plan = ChunkPlan.build(part_bytes, chunk_bytes)
        self.contrib_ready = contrib_ready
        self.proto_cores = proto_cores
        self.start = start
        self.on_root_chunk = on_root_chunk
        engine = self.machine.engine
        n = len(ring)
        # arrival of the running partial at position i for chunk k
        self._arrive: Dict[Tuple[int, int], Event] = {
            (i, k): Event(engine)
            for i in range(n)
            for k in range(self.plan.nchunks)
        }
        # partial payload in flight (only when carrying data)
        self._partials: Dict[Tuple[int, int], np.ndarray] = {}
        for i in range(n):
            self.machine.spawn(
                self._position(i), name=f"ring.c{color.id}.p{i}"
            )

    # -- data helpers -----------------------------------------------------
    def _contribution(self, node: int, off: int, size: int):
        return self.inv.local_contribution(node, self.part_off + off, size)

    def _position(self, i: int):
        """Service coroutine for ring position ``i`` (0 = root)."""
        yield self.start
        machine = self.machine
        engine = machine.engine
        params = machine.params
        n = len(self.ring)
        node = self.ring[i]
        node_obj = machine.nodes[node]
        for k, off, size in self.plan.slices():
            # Wait for this node's locally reduced contribution.
            counter = self.contrib_ready[node]
            if counter.value < off + size:
                yield counter.wait_for(off + size)
            incoming: Optional[np.ndarray] = None
            if i < n - 1:
                yield self._arrive[(i, k)]
                incoming = self._partials.pop((i, k), None)
                if self.reception_extra is not None:
                    yield from self.reception_extra(node, size)
                # Fold the partial into this node's contribution on the
                # protocol core (read partial + read own + write = 3 raw
                # bytes per byte).
                yield machine.flownet.transfer(
                    {node_obj.mem: 3.0, self.proto_cores[node]: 1.0},
                    size,
                    cap=node_obj.regime.core_reduce_cap,
                    name=f"ringadd.c{self.color.id}.p{i}.k{k}",
                )
            partial = None
            if self.inv.carry_data:
                own = self._contribution(node, off, size)
                partial = own if incoming is None else incoming + own
            if i > 0:
                # Forward to the predecessor (toward the root).
                yield engine.timeout(params.dma_startup)
                delivered = machine.network.ptp_send(
                    self.color.id, node, self.ring[i - 1], size,
                    name=f"ringsend.c{self.color.id}.p{i}.k{k}",
                )
                if partial is not None:
                    self._partials[(i - 1, k)] = partial
                delivered.on_trigger(
                    lambda _v, i=i, k=k: self._arrive[(i - 1, k)].trigger(None)
                )
                # In-order injection per connection.
                yield delivered
            else:
                if partial is not None:
                    expected = self.inv.expected_slice_f64(
                        self.part_off + off, size
                    )
                    if not np.array_equal(partial, expected):
                        raise AssertionError(
                            f"ring c{self.color.id}: bad partial at root, "
                            f"chunk {k}"
                        )
                self.on_root_chunk(self.part_off + off, size)
