"""Allreduce over the torus, proposed approach (section V-C-2).

"The allreduce operation can be decomposed into the following tasks:
a) network allreduce b) local reduce and c) local broadcast. ... The
central idea of the new approach is to delegate one core to do the network
allreduce operation and the remaining three cores to do the local reduce
and broadcast operation.  Since there are three independent allreduce
operations or three colors occurring at the same time, each of the three
cores is delegated to handle one color each.  The data buffers are
uniformly split three way and each of the cores works on its partition.
... All the application buffers are mapped using the system call
interfaces, and no extra copy operations are necessary.  The cores then
inform the master core doing the network allreduce protocol via shared
software message counters. ... Once the network data arrives in the
application receive buffer of the master core, it notifies the three
cores.  The other three cores start copying the data into their own
respective buffers after they are done with reducing all the buffer
partitions assigned to them."
"""

from __future__ import annotations

from typing import List, Tuple

from repro.collectives.allreduce.base import DOUBLE, AllreduceInvocation
from repro.collectives.allreduce.ring import RingReduce
from repro.collectives.bcast.torus_common import TorusBcastNetwork
from repro.collectives.registry import register
from repro.msg.color import partition_bytes, torus_colors
from repro.msg.pipeline import ChunkPlan
from repro.sim.resources import Store
from repro.sim.sync import SimCounter
from repro.telemetry.recorder import ROLE_PROTOCOL, reduce_core_role


@register("allreduce", modes=(4,), shared_address=True, analytic="allreduce-m0")
class TorusShaddrAllreduce(AllreduceInvocation):
    """Core-specialized shared-address allreduce (the 'New' column)."""

    name = "allreduce-torus-shaddr"
    # The broadcast stage is the rectangle schedule over deposit-bit
    # line broadcasts: this algorithm needs the real torus wire.
    network = "torus"
    ncolors = 3
    trace_rows = (("lred.", "copy"), ("lbcast.", "copy"))

    def setup(self) -> None:
        machine = self.machine
        if machine.ppn != 4:
            raise ValueError(
                f"{self.name} is a quad-mode algorithm (ppn=4), machine has "
                f"ppn={machine.ppn}"
            )
        engine = machine.engine
        params = machine.params
        chunk = params.pipeline_width
        self.net = TorusBcastNetwork(
            self, self.ncolors, chunk, external_root_feed=True, align=DOUBLE
        )
        self.colors = torus_colors(self.ncolors)
        self.parts = partition_bytes(self.nbytes, self.ncolors, align=DOUBLE)
        self.offsets = [sum(self.parts[:i]) for i in range(self.ncolors)]
        root_node = machine.rank_to_node(self.root)
        # The dedicated network-protocol core (local rank 0) per node.
        self.proto_cores = [
            machine.flownet.add_resource(
                f"n{n}.proto.sha{id(self)}",
                machine.nodes[n].regime.core_reduce_cap,
            )
            for n in range(machine.nnodes)
        ]
        self.contrib_ready: List[List[SimCounter]] = [
            [
                SimCounter(engine, name=f"c{c}.n{n}.contrib")
                for n in range(machine.nnodes)
            ]
            for c in range(self.ncolors)
        ]
        # Result-arrival publication (master core -> worker cores).
        self.mailbox: List[Store] = [
            Store(engine, name=f"n{n}.mbox") for n in range(machine.nnodes)
        ]
        self.published: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.pub", node=n)
            for n in range(machine.nnodes)
        ]
        self.records: List[List[Tuple[int, int]]] = [
            [] for _ in range(machine.nnodes)
        ]
        self.completion: List[SimCounter] = [
            machine.make_counter(name=f"n{n}.done", node=n)
            for n in range(machine.nnodes)
        ]
        self.net.on_chunk(
            lambda node, _c, goff, size: self.mailbox[node].put((goff, size))
        )
        self.rings: List[RingReduce] = []
        for c, color in enumerate(self.colors):
            if self.parts[c] == 0:
                continue
            self.rings.append(
                RingReduce(
                    self,
                    color,
                    machine.network.ring_order(color, root_node),
                    self.offsets[c],
                    self.parts[c],
                    chunk,
                    self.contrib_ready[c],
                    self.proto_cores,
                    self.net.start,
                    lambda goff, size, c=c: self._root_ready(c, goff, size),
                )
            )

    def _root_ready(self, c: int, goff: int, size: int) -> None:
        master = self.machine.node_ranks(
            self.machine.rank_to_node(self.root)
        )[0]
        data = self.payload_slice(goff, size)
        if data is not None:
            self.write_result(master, goff, data)
        self.net.feed_root(self.colors[c].id, size)

    # -- per-rank coroutine --------------------------------------------------
    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.count == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        local = ctx.local_rank
        tel = engine.telemetry
        if rank == self.root:
            self.net.open()
        if local == 0:
            # Master core: runs the network protocol (the ring additions are
            # charged to this node's protocol-core resource by RingReduce)
            # and publishes result arrivals to the worker cores.
            if tel is not None:
                tel.set_role(rank, node, ROLE_PROTOCOL)
            total = self.net.total_chunks_per_node
            for _ in range(total):
                goff, size = yield self.mailbox[node].get()
                yield engine.timeout(
                    params.dma_counter_poll + params.flag_cost
                )
                self.records[node].append((goff, size))
                self.published[node].add(1)
            t0 = engine.now
            yield self.completion[node].wait_for(machine.ppn - 1)
            if tel is not None:
                tel.stall(t0, engine.now, rank, node, "waiting-on-counter")
        else:
            # Worker core: owns color (local-1); locally reduces its
            # partition in pipeline chunks (accessing every local buffer
            # through mapped windows), then copies the full result out of
            # the master's buffer.
            c = local - 1
            if tel is not None:
                tel.set_role(rank, node, reduce_core_role(c))
            plan = ChunkPlan.build(self.parts[c], params.pipeline_width)
            for _k, off, size in plan.slices():
                # Map each peer buffer at every access (cached -> free).
                for peer_local in range(machine.ppn):
                    if peer_local != local:
                        peer_rank = machine.node_ranks(node)[peer_local]
                        yield from ctx.windows.map_buffer(
                            peer_local, ("allreduce-buf", peer_rank),
                            self.nbytes,
                        )
                # Sum the four local application buffers, no staging copies.
                t0 = engine.now
                yield from ctx.node.core_reduce(
                    size, machine.ppn, name=f"lred.c{c}"
                )
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node,
                               reduce_core_role(c), "local-reduce", size)
                yield engine.timeout(params.flag_cost)
                self.contrib_ready[c][node].add(size)
            # Local broadcast: chase the master's software counters.
            total = self.net.total_chunks_per_node
            for i in range(total):
                if self.published[node].value < i + 1:
                    t0 = engine.now
                    yield self.published[node].wait_for(i + 1)
                    if tel is not None:
                        tel.stall(t0, engine.now, rank, node,
                                  "waiting-on-counter")
                    yield engine.timeout(params.flag_cost)
                goff, size = self.records[node][i]
                t0 = engine.now
                yield from ctx.node.core_copy(size, name=f"lbcast.l{local}")
                if tel is not None:
                    tel.copied(t0, engine.now, rank, node,
                               reduce_core_role(c), "local-bcast", size)
                data = self.payload_slice(goff, size)
                if data is not None:
                    self.write_result(rank, goff, data)
            yield engine.timeout(params.atomic_op_cost)
            self.completion[node].add(1)
