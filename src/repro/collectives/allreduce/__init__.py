"""Allreduce algorithms (section V-C)."""

from repro.collectives.allreduce.base import AllreduceInvocation
from repro.collectives.allreduce.ring_pipelined import RingPipelinedAllreduce
from repro.collectives.allreduce.torus_current import TorusCurrentAllreduce
from repro.collectives.allreduce.torus_shaddr import TorusShaddrAllreduce
from repro.collectives.allreduce.tree_allreduce import TreeAllreduce

__all__ = [
    "AllreduceInvocation",
    "RingPipelinedAllreduce",
    "TorusCurrentAllreduce",
    "TorusShaddrAllreduce",
    "TreeAllreduce",
]
