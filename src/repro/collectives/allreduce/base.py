"""Base class for allreduce invocations.

The operation is the paper's benchmark case: the element-wise **sum of
doubles** over all ranks.  ``values`` (when verifying) is an
``(nprocs, count)`` float64 array; every rank must end with
``values.sum(axis=0)``.

Byte-level plumbing: the collective engines move *bytes*; the logical
payload of the broadcast stage is the final reduced vector, so
:meth:`payload_slice` views the expected result as uint8 — by the time any
byte of it is broadcast, the ring reduction has produced exactly those
bytes at the root (asserted chunk-by-chunk when data is carried).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.collectives.base import InvocationBase
from repro.hardware.machine import Machine

#: bytes per element (the benchmark reduces doubles)
DOUBLE = 8


class AllreduceInvocation(InvocationBase):
    """One ``MPI_Allreduce(..., MPI_DOUBLE, MPI_SUM)`` call."""

    def __init__(
        self,
        machine: Machine,
        count: int,
        values: Optional[np.ndarray] = None,
        window_caching: bool = True,
    ):
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        super().__init__(machine, 0, count * DOUBLE, window_caching)
        self.count = count
        self.carry_data = values is not None
        self.values = values
        if self.carry_data:
            if values.shape != (machine.nprocs, count):
                raise ValueError(
                    f"values must have shape ({machine.nprocs}, {count}), "
                    f"got {values.shape}"
                )
            self.expected = values.sum(axis=0)
            self._expected_bytes = self.expected.view(np.uint8)
            self.result_buffers: Dict[int, np.ndarray] = {
                rank: np.zeros(count, dtype=np.float64)
                for rank in range(machine.nprocs)
            }
        self.setup()

    # -- byte-level hooks used by the broadcast stage -----------------------
    def payload_slice(self, offset: int, size: int) -> Optional[np.ndarray]:
        if not self.carry_data:
            return None
        return self._expected_bytes[offset:offset + size]

    def write_result(self, rank: int, offset: int, data: np.ndarray) -> None:
        if self.carry_data:
            view = self.result_buffers[rank].view(np.uint8)
            view[offset:offset + data.nbytes] = data

    # -- element-level helpers for the reduction stage -----------------------
    def local_contribution(self, node: int, off_bytes: int, size: int
                           ) -> Optional[np.ndarray]:
        """The node's locally reduced contribution for one byte range."""
        if not self.carry_data:
            return None
        lo, hi = off_bytes // DOUBLE, (off_bytes + size) // DOUBLE
        ranks = self.machine.node_ranks(node)
        return self.values[ranks, lo:hi].sum(axis=0)

    def expected_slice_f64(self, off_bytes: int, size: int
                           ) -> Optional[np.ndarray]:
        if not self.carry_data:
            return None
        lo, hi = off_bytes // DOUBLE, (off_bytes + size) // DOUBLE
        return self.expected[lo:hi]

    def verify(self) -> None:
        """Assert every rank holds the exact element-wise sum."""
        if not self.carry_data:
            raise RuntimeError("verify() requires carry_data=True")
        for rank in range(self.machine.nprocs):
            if not np.array_equal(self.result_buffers[rank], self.expected):
                mismatch = int(
                    np.argmax(self.result_buffers[rank] != self.expected)
                )
                raise AssertionError(
                    f"rank {rank}: allreduce mismatch at element {mismatch}: "
                    f"{self.result_buffers[rank][mismatch]} != "
                    f"{self.expected[mismatch]}"
                )
