"""Base class for scatter invocations (root = rank 0)."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.collectives.base import InvocationBase
from repro.hardware.machine import Machine


class ScatterInvocation(InvocationBase):
    """One ``MPI_Scatter`` call: rank ``r`` receives block ``r``."""

    def __init__(
        self,
        machine: Machine,
        block_bytes: int,
        blocks: Optional[np.ndarray] = None,
        window_caching: bool = True,
    ):
        if block_bytes < 0:
            raise ValueError(f"block_bytes must be >= 0, got {block_bytes}")
        super().__init__(
            machine, 0, block_bytes * machine.nprocs, window_caching
        )
        self.block_bytes = block_bytes
        self.carry_data = blocks is not None
        self.blocks = blocks
        if self.carry_data:
            if blocks.shape != (machine.nprocs, block_bytes):
                raise ValueError(
                    f"blocks must have shape ({machine.nprocs}, "
                    f"{block_bytes}), got {blocks.shape}"
                )
            self.result_buffers: Dict[int, np.ndarray] = {
                rank: np.zeros(block_bytes, dtype=np.uint8)
                for rank in range(machine.nprocs)
            }
        self.setup()

    def rank_block(self, rank: int) -> Optional[np.ndarray]:
        if not self.carry_data:
            return None
        return self.blocks[rank]

    def deliver(self, rank: int) -> None:
        """Record that ``rank``'s block landed in its receive buffer."""
        if self.carry_data:
            self.result_buffers[rank][:] = self.blocks[rank]

    def node_block_size(self) -> int:
        return self.block_bytes * self.machine.ppn

    def verify(self) -> None:
        if not self.carry_data:
            raise RuntimeError("verify() requires carry_data=True")
        for rank in range(self.machine.nprocs):
            if not np.array_equal(self.result_buffers[rank],
                                  self.blocks[rank]):
                mismatch = int(
                    np.argmax(self.result_buffers[rank] != self.blocks[rank])
                )
                raise AssertionError(
                    f"rank {rank}: scatter mismatch at byte {mismatch}"
                )
