"""Scatter algorithms (extension).

``MPI_Scatter`` hands each rank its own block of the root's buffer.  The
network protocol is the ring gather run backwards: the root streams node
blocks outward, farthest destination first, and every ring position peels
off its own block while forwarding the rest — fully pipelined.  The
intra-node contrast is the usual one:

``scatter-ring-current``
    The DMA direct-puts each local peer's sub-block out of the master's
    staging buffer.

``scatter-ring-shaddr``
    Peers copy their own sub-block straight out of the master's mapped
    buffer after a software-counter notification.
"""

from repro.collectives.scatter.base import ScatterInvocation
from repro.collectives.scatter.ring import (
    RingCurrentScatter,
    RingShaddrScatter,
)

__all__ = ["ScatterInvocation", "RingCurrentScatter", "RingShaddrScatter"]
