"""Pipelined ring scatter from the root node.

Ring position 0 (the root node) sends node blocks outward in
farthest-destination-first order, so the stream pipelines: while position
1 forwards the block for position ``N-1``, the root is already injecting
the next one.  Each position keeps the final block addressed to it.

Intra-node delivery of a node block to the node's four ranks is the
variant-specific stage.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.collectives.registry import register
from repro.collectives.scatter.base import ScatterInvocation
from repro.msg.color import torus_colors
from repro.sim.events import Event
from repro.sim.sync import SimCounter


class _RingScatterBase(ScatterInvocation):
    """Common ring machinery for both scatter variants."""

    network = "ptp"

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        self.color = torus_colors(1)[0]
        self.ring: List[int] = machine.network.ring_order(self.color, 0)
        self.nnodes = machine.nnodes
        self.start = Event(engine)
        # arrival at position i of the j-th block in the stream
        self._arrive: Dict[Tuple[int, int], Event] = {
            (i, j): Event(engine)
            for i in range(self.nnodes)
            for j in range(self.nnodes)
        }
        #: per-node: its own node block is locally available (at the master)
        self.node_block_here: List[Event] = [
            Event(engine) for _ in range(self.nnodes)
        ]
        #: per-rank: this rank's block is in its receive buffer
        self.rank_done: Dict[int, Event] = {
            rank: Event(engine) for rank in range(machine.nprocs)
        }
        for position in range(self.nnodes):
            machine.spawn(self._ring_position(position), name=f"s.p{position}")

    def _ring_position(self, i: int):
        yield self.start
        machine = self.machine
        engine = machine.engine
        node = self.ring[i]
        block = self.node_block_size()
        if block == 0:
            return
        if i == 0:
            # The root node's own block is immediately available.
            self.node_block_here[node].trigger(None)
            if self.nnodes == 1:
                return
            successor = self.ring[1]
            # Farthest destination first: positions N-1 down to 1.
            for j, dest in enumerate(range(self.nnodes - 1, 0, -1)):
                yield engine.timeout(machine.params.dma_startup)
                delivered = machine.network.ptp_send(
                    self.color.id, node, successor, block,
                    name=f"s.root.b{j}",
                )
                delivered.on_trigger(
                    lambda _v, j=j, dest=dest:
                    self._block_arrived(1, j, dest)
                )
                yield delivered
            return
        # Non-root positions: receive N-i blocks; the last one is ours.
        expected = self.nnodes - i
        successor = self.ring[i + 1] if i + 1 < self.nnodes else None
        forwarded = 0
        for j in range(expected):
            yield self._arrive[(i, j)]
            dest = self.nnodes - 1 - j  # stream order is farthest-first
            if dest == i:
                self.node_block_here[node].trigger(None)
                continue
            yield engine.timeout(machine.params.dma_startup)
            delivered = machine.network.ptp_send(
                self.color.id, node, successor, block,
                name=f"s.p{i}.b{forwarded}",
            )
            delivered.on_trigger(
                lambda _v, i=i, forwarded=forwarded, dest=dest:
                self._block_arrived(i + 1, forwarded, dest)
            )
            forwarded += 1
            yield delivered

    def _block_arrived(self, position: int, j: int, dest: int) -> None:
        self._arrive[(position, j)].trigger(None)

    # -- intra-node stage (variant-specific) --------------------------------
    def proc(self, rank: int):
        raise NotImplementedError


@register("scatter")
class RingCurrentScatter(_RingScatterBase):
    """Baseline: the DMA direct-puts each peer's sub-block."""

    name = "scatter-ring-current"

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.block_bytes == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        if rank == 0:
            self.start.trigger(None)
        if rank == master:
            yield self.node_block_here[node]
            # The master's own block is already in place.
            self.deliver(rank)
            peers = machine.node_ranks(node)[1:]
            if peers:
                yield from ctx.dma.post()
                for peer in peers:
                    flow = ctx.dma.local_copy_flow(
                        self.block_bytes, name=f"s.dput.r{peer}"
                    )
                    flow.event.on_trigger(
                        lambda _v, peer=peer: self._peer_landed(peer)
                    )
        else:
            yield self.rank_done[rank]
            yield engine.timeout(params.dma_counter_poll)

    def _peer_landed(self, peer: int) -> None:
        self.deliver(peer)
        self.rank_done[peer].trigger(None)


@register("scatter", shared_address=True)
class RingShaddrScatter(_RingScatterBase):
    """Proposed: peers copy their sub-block from the master's mapped buffer."""

    name = "scatter-ring-shaddr"

    def setup(self) -> None:
        super().setup()
        engine = self.machine.engine
        self.published: List[SimCounter] = [
            self.machine.make_counter(name=f"n{n}.s.pub", node=n)
            for n in range(self.machine.nnodes)
        ]

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.block_bytes == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        node = ctx.node_index
        master = machine.node_ranks(node)[0]
        if rank == 0:
            self.start.trigger(None)
        if rank == master:
            yield self.node_block_here[node]
            self.deliver(rank)
            # Publish the arrival through the software counter.
            yield engine.timeout(params.dma_counter_poll + params.flag_cost)
            self.published[node].add(1)
        else:
            if self.published[node].value < 1:
                yield self.published[node].wait_for(1)
                yield engine.timeout(params.flag_cost)
            yield from ctx.windows.map_buffer(
                0, ("scatter-buf", master), self.node_block_size()
            )
            yield from ctx.node.core_copy(self.block_bytes, name="s.copy")
            self.deliver(rank)
