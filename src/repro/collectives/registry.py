"""One registry for every collective algorithm, with capability metadata.

The BG/P stack glues its algorithms into MPICH through a single CCMI
layer; this module is that layer's reproduction-side analogue.  Each
invocation class self-registers at import time via the :func:`register`
decorator, tagging itself with capability metadata (family, network,
supported ppn modes, whether it can carry payload bytes, whether it
needs shared-address window mappings).  Lookup goes through exactly two
functions:

* :func:`get_algorithm`\\ ``(family, name)`` -> invocation class
* :func:`list_algorithms`\\ ``(family)`` -> sorted names

plus :func:`algorithm_info` / :func:`iter_algorithms` for the metadata
itself.  Family modules are imported lazily on first lookup, so import
order stays simple and ``import repro`` stays cheap.

Protocol selection (the message-size policy of section V) lives in
:mod:`repro.collectives.selection`; :func:`select_protocol` is re-exported
here for convenience.

The historical per-family helpers (``bcast_algorithm``,
``list_bcast_algorithms``, ``select_bcast``, ...) survive as thin
deprecated shims at the bottom of this module.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.collectives.selection import (
    next_fallback,
    select_protocol,
    selectable_families,
)
from repro.hardware.network import known_networks

__all__ = [
    "ALL_MODES",
    "AlgorithmInfo",
    "register",
    "get_algorithm",
    "list_algorithms",
    "algorithm_info",
    "iter_algorithms",
    "families",
    "fallback_chain",
    "next_fallback",
    "select_protocol",
    "selectable_families",
]

#: every ppn a BG/P node supports (SMP / DUAL / QUAD)
ALL_MODES: Tuple[int, ...] = (1, 2, 4)

#: family -> module whose import registers the family's algorithms
_FAMILY_MODULES: Dict[str, str] = {
    "bcast": "repro.collectives.bcast",
    "allreduce": "repro.collectives.allreduce",
    "allgather": "repro.collectives.allgather",
    "alltoall": "repro.collectives.alltoall",
    "barrier": "repro.collectives.barrier",
    "gather": "repro.collectives.gather",
    "reduce": "repro.collectives.reduce",
    "scatter": "repro.collectives.scatter",
}


@dataclass(frozen=True)
class AlgorithmInfo:
    """Capability record of one registered algorithm."""

    family: str
    name: str
    cls: type = field(repr=False)
    #: the wire it rides: "torus", "tree", "gi" or "ptp" — validated at
    #: registration against :func:`repro.hardware.network.known_networks`
    network: str
    #: ppn values the constructor accepts
    modes: Tuple[int, ...]
    #: can carry real payload bytes for bit-exact verification
    data_carrying: bool
    #: needs kernel shared-address window mappings (Fig-8 lifecycle)
    shared_address: bool
    #: flow-name substrings this algorithm emits, mapped to trace row
    #: classes ("fault", "dma", "network", "tree", "copy", "other");
    #: consumed by :mod:`repro.sim.tracing` for chrome-trace row assignment
    trace_rows: Tuple[Tuple[str, str], ...] = ()
    #: name of the validated closed-form steady-state cost law in
    #: :mod:`repro.sim.analytic` (None = no analytic fast path; only
    #: protocols whose law is probe-validated against the DES opt in)
    analytic: Optional[str] = None

    def supports_ppn(self, ppn: int) -> bool:
        return ppn in self.modes


_REGISTRY: Dict[str, Dict[str, AlgorithmInfo]] = {}


def register(
    family: str,
    *,
    modes: Sequence[int] = ALL_MODES,
    data_carrying: bool = True,
    shared_address: bool = False,
    analytic: Optional[str] = None,
):
    """Class decorator: add an invocation class to the registry.

    The class must define ``name`` (the registry key) and ``network``.
    ``modes`` lists the ppn values its constructor accepts;
    ``shared_address`` marks schemes that map peer windows (and thus
    benefit from the Fig-8 caching session); ``data_carrying=False``
    marks synchronisation-only collectives (barrier); ``analytic`` names
    the protocol's validated steady-state cost law in
    :mod:`repro.sim.analytic` (omit it unless the law is probe-validated
    point-for-point against the DES).
    """
    if family not in _FAMILY_MODULES:
        raise ValueError(
            f"unknown collective family {family!r}; "
            f"known: {sorted(_FAMILY_MODULES)}"
        )

    def decorate(cls: type) -> type:
        name = getattr(cls, "name", None)
        if not name or name == "?":
            raise ValueError(
                f"{cls.__name__} must define a registry `name` attribute"
            )
        network = getattr(cls, "network", None)
        if not network or network == "?":
            raise ValueError(
                f"{cls.__name__} must define a `network` attribute"
            )
        if network not in known_networks():
            raise ValueError(
                f"{cls.__name__}.network = {network!r} is not a known "
                f"network backend or wire; known: {known_networks()}"
            )
        info = AlgorithmInfo(
            family=family,
            name=name,
            cls=cls,
            network=network,
            modes=tuple(modes),
            data_carrying=data_carrying,
            shared_address=shared_address,
            trace_rows=tuple(
                (str(sub), str(row))
                for sub, row in getattr(cls, "trace_rows", ())
            ),
            analytic=analytic,
        )
        bucket = _REGISTRY.setdefault(family, {})
        previous = bucket.get(name)
        if previous is not None and previous.cls is not cls:
            raise ValueError(
                f"duplicate registration for {family}/{name}: "
                f"{previous.cls.__name__} vs {cls.__name__}"
            )
        bucket[name] = info
        cls.capabilities = info
        return cls

    return decorate


def _family_bucket(family: str) -> Dict[str, AlgorithmInfo]:
    if family not in _FAMILY_MODULES:
        raise KeyError(
            f"unknown collective family {family!r}; "
            f"known: {sorted(_FAMILY_MODULES)}"
        )
    # Importing the family module runs its @register decorators.
    importlib.import_module(_FAMILY_MODULES[family])
    return _REGISTRY.setdefault(family, {})


def families() -> List[str]:
    """All collective families the registry knows."""
    return sorted(_FAMILY_MODULES)


def algorithm_info(family: str, name: str) -> AlgorithmInfo:
    """The :class:`AlgorithmInfo` for one registered algorithm."""
    bucket = _family_bucket(family)
    if name not in bucket:
        raise KeyError(
            f"unknown {family} algorithm {name!r}; known: {sorted(bucket)}"
        )
    return bucket[name]


def get_algorithm(family: str, name: str) -> type:
    """Look up an algorithm class by family and registry name."""
    return algorithm_info(family, name).cls


def list_algorithms(family: str) -> List[str]:
    """Sorted registry names of one family."""
    return sorted(_family_bucket(family))


def fallback_chain(
    family: str, name: str, ppn: int,
    wires: Optional[Sequence[str]] = None,
) -> List[str]:
    """Degradation ladder starting at ``name``, filtered to ``ppn``.

    Walks :data:`repro.collectives.selection.FALLBACK_TABLE` from ``name``
    and keeps only protocols whose registered modes include ``ppn``
    (``name`` itself is kept unconditionally — the caller already chose
    it).  When ``wires`` is given (a machine backend's supported wire
    tags), rungs riding an unsupported wire are skipped too, so the
    ladder never degrades onto a network the machine does not have.
    The resilience layer tries the entries in order, moving down one
    rung each time a :class:`~repro.sim.engine.TransientFaultError`
    escapes a run.
    """
    chain = [name]
    seen = {name}
    current = name
    while True:
        nxt = next_fallback(family, current)
        if nxt is None or nxt in seen:
            break
        seen.add(nxt)
        current = nxt
        info = algorithm_info(family, nxt)
        if not info.supports_ppn(ppn):
            continue
        if wires is not None and info.network not in wires:
            continue
        chain.append(nxt)
    return chain


def iter_algorithms(family: Optional[str] = None) -> List[AlgorithmInfo]:
    """Capability records, for one family or (sorted) for all of them."""
    picked = [family] if family is not None else families()
    out: List[AlgorithmInfo] = []
    for fam in picked:
        bucket = _family_bucket(fam)
        out.extend(bucket[name] for name in sorted(bucket))
    return out


# -- deprecated shims ---------------------------------------------------
# The pre-registry public surface.  Each is a frozen 1:1 forwarding of the
# old signature; new code should call get_algorithm / list_algorithms /
# select_protocol directly.

def bcast_algorithm(name: str) -> Type:
    """Deprecated: use ``get_algorithm("bcast", name)``."""
    return get_algorithm("bcast", name)


def list_bcast_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("bcast")``."""
    return list_algorithms("bcast")


def allreduce_algorithm(name: str) -> type:
    """Deprecated: use ``get_algorithm("allreduce", name)``."""
    return get_algorithm("allreduce", name)


def list_allreduce_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("allreduce")``."""
    return list_algorithms("allreduce")


def allgather_algorithm(name: str) -> type:
    """Deprecated: use ``get_algorithm("allgather", name)``."""
    return get_algorithm("allgather", name)


def list_allgather_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("allgather")``."""
    return list_algorithms("allgather")


def alltoall_algorithm(name: str) -> type:
    """Deprecated: use ``get_algorithm("alltoall", name)``."""
    return get_algorithm("alltoall", name)


def list_alltoall_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("alltoall")``."""
    return list_algorithms("alltoall")


def barrier_algorithm(name: str) -> type:
    """Deprecated: use ``get_algorithm("barrier", name)``."""
    return get_algorithm("barrier", name)


def list_barrier_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("barrier")``."""
    return list_algorithms("barrier")


def gather_algorithm(name: str) -> type:
    """Deprecated: use ``get_algorithm("gather", name)``."""
    return get_algorithm("gather", name)


def list_gather_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("gather")``."""
    return list_algorithms("gather")


def reduce_algorithm(name: str) -> type:
    """Deprecated: use ``get_algorithm("reduce", name)``."""
    return get_algorithm("reduce", name)


def list_reduce_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("reduce")``."""
    return list_algorithms("reduce")


def scatter_algorithm(name: str) -> type:
    """Deprecated: use ``get_algorithm("scatter", name)``."""
    return get_algorithm("scatter", name)


def list_scatter_algorithms() -> List[str]:
    """Deprecated: use ``list_algorithms("scatter")``."""
    return list_algorithms("scatter")


def select_bcast(nbytes: int, ppn: int) -> str:
    """Deprecated: use ``select_protocol("bcast", nbytes, ppn)``."""
    return select_protocol("bcast", nbytes, ppn)
