"""Algorithm registry: names -> invocation classes, plus auto-selection.

The BG/P stack glues its algorithms into MPICH through CCMI and picks a
protocol by message size ("depending on the message size, either the Torus
or the Collective network based algorithms perform optimally", section V).
``select_bcast`` implements that policy for the proposed algorithm set.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.collectives.base import BcastInvocation
from repro.util.units import KIB


def _bcast_classes() -> Dict[str, Type[BcastInvocation]]:
    # Imported lazily to keep module import order simple.
    from repro.collectives.bcast import (
        TorusDirectPutBcast,
        TorusDirectPutSmpBcast,
        TorusFifoBcast,
        TorusShaddrBcast,
        TreeDmaDirectPutBcast,
        TreeDmaFifoBcast,
        TreeShaddrBcast,
        TreeShmemBcast,
        TreeSmpBcast,
    )

    classes = [
        TorusDirectPutBcast,
        TorusDirectPutSmpBcast,
        TorusFifoBcast,
        TorusShaddrBcast,
        TreeSmpBcast,
        TreeDmaFifoBcast,
        TreeDmaDirectPutBcast,
        TreeShmemBcast,
        TreeShaddrBcast,
    ]
    return {cls.name: cls for cls in classes}


def _allreduce_classes() -> Dict[str, type]:
    from repro.collectives.allreduce import (
        TorusCurrentAllreduce,
        TorusShaddrAllreduce,
        TreeAllreduce,
    )

    classes = [TorusCurrentAllreduce, TorusShaddrAllreduce, TreeAllreduce]
    return {cls.name: cls for cls in classes}


def _allgather_classes() -> Dict[str, type]:
    from repro.collectives.allgather import (
        RingCurrentAllgather,
        RingShaddrAllgather,
    )

    classes = [RingCurrentAllgather, RingShaddrAllgather]
    return {cls.name: cls for cls in classes}


def _alltoall_classes() -> Dict[str, type]:
    from repro.collectives.alltoall import (
        ShiftCurrentAlltoall,
        ShiftShaddrAlltoall,
    )

    classes = [ShiftCurrentAlltoall, ShiftShaddrAlltoall]
    return {cls.name: cls for cls in classes}


def alltoall_algorithm(name: str) -> type:
    """Look up an alltoall algorithm class by registry name."""
    classes = _alltoall_classes()
    if name not in classes:
        raise KeyError(
            f"unknown alltoall algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def list_alltoall_algorithms() -> List[str]:
    """All registered alltoall algorithm names."""
    return sorted(_alltoall_classes())


def _barrier_classes() -> Dict[str, type]:
    from repro.collectives.barrier import (
        GiBarrier,
        TorusDisseminationBarrier,
        TreeBarrier,
    )

    classes = [GiBarrier, TreeBarrier, TorusDisseminationBarrier]
    return {cls.name: cls for cls in classes}


def barrier_algorithm(name: str) -> type:
    """Look up a barrier algorithm class by registry name."""
    classes = _barrier_classes()
    if name not in classes:
        raise KeyError(
            f"unknown barrier algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def list_barrier_algorithms() -> List[str]:
    """All registered barrier algorithm names."""
    return sorted(_barrier_classes())


def _scatter_classes() -> Dict[str, type]:
    from repro.collectives.scatter import (
        RingCurrentScatter,
        RingShaddrScatter,
    )

    classes = [RingCurrentScatter, RingShaddrScatter]
    return {cls.name: cls for cls in classes}


def scatter_algorithm(name: str) -> type:
    """Look up a scatter algorithm class by registry name."""
    classes = _scatter_classes()
    if name not in classes:
        raise KeyError(
            f"unknown scatter algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def list_scatter_algorithms() -> List[str]:
    """All registered scatter algorithm names."""
    return sorted(_scatter_classes())


def _reduce_classes() -> Dict[str, type]:
    from repro.collectives.reduce import TorusCurrentReduce, TorusShaddrReduce

    classes = [TorusCurrentReduce, TorusShaddrReduce]
    return {cls.name: cls for cls in classes}


def reduce_algorithm(name: str) -> type:
    """Look up a reduce algorithm class by registry name."""
    classes = _reduce_classes()
    if name not in classes:
        raise KeyError(
            f"unknown reduce algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def list_reduce_algorithms() -> List[str]:
    """All registered reduce algorithm names."""
    return sorted(_reduce_classes())


def _gather_classes() -> Dict[str, type]:
    from repro.collectives.gather import RingCurrentGather, RingShaddrGather

    classes = [RingCurrentGather, RingShaddrGather]
    return {cls.name: cls for cls in classes}


def gather_algorithm(name: str) -> type:
    """Look up a gather algorithm class by registry name."""
    classes = _gather_classes()
    if name not in classes:
        raise KeyError(
            f"unknown gather algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def list_gather_algorithms() -> List[str]:
    """All registered gather algorithm names."""
    return sorted(_gather_classes())


def allgather_algorithm(name: str) -> type:
    """Look up an allgather algorithm class by registry name."""
    classes = _allgather_classes()
    if name not in classes:
        raise KeyError(
            f"unknown allgather algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def list_allgather_algorithms() -> List[str]:
    """All registered allgather algorithm names."""
    return sorted(_allgather_classes())


def bcast_algorithm(name: str) -> Type[BcastInvocation]:
    """Look up a broadcast algorithm class by registry name."""
    classes = _bcast_classes()
    if name not in classes:
        raise KeyError(
            f"unknown bcast algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def allreduce_algorithm(name: str) -> type:
    """Look up an allreduce algorithm class by registry name."""
    classes = _allreduce_classes()
    if name not in classes:
        raise KeyError(
            f"unknown allreduce algorithm {name!r}; known: {sorted(classes)}"
        )
    return classes[name]


def list_bcast_algorithms() -> List[str]:
    """All registered broadcast algorithm names."""
    return sorted(_bcast_classes())


def list_allreduce_algorithms() -> List[str]:
    """All registered allreduce algorithm names."""
    return sorted(_allreduce_classes())


def select_bcast(nbytes: int, ppn: int) -> str:
    """Message-size-based protocol selection (the proposed algorithm set).

    Short messages take the latency-optimized shared-memory tree scheme;
    medium messages the core-specialized shared-address tree scheme; large
    messages move to the torus where six links beat the single tree link.
    SMP mode has no intra-node stage and uses the plain hardware protocols.
    """
    if ppn == 1:
        return "tree-smp" if nbytes <= 256 * KIB else "torus-direct-put-smp"
    if nbytes <= 8 * KIB:
        return "tree-shmem"
    if nbytes <= 256 * KIB:
        return "tree-shaddr"
    return "torus-shaddr"
