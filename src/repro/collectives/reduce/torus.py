"""Reduce-to-root over the torus: current vs shared-address variants.

Both reuse :class:`repro.collectives.allreduce.ring.RingReduce` (the
multi-color pipelined ring toward the root); they differ in how each node's
contribution is produced — exactly the §V-C contrast, minus the broadcast
stage.
"""

from __future__ import annotations

from typing import List

from repro.collectives.allreduce.ring import RingReduce
from repro.collectives.reduce.base import DOUBLE, ReduceInvocation
from repro.collectives.registry import register
from repro.msg.color import partition_bytes, torus_colors
from repro.msg.pipeline import ChunkPlan
from repro.sim.events import AllOf, Event
from repro.sim.sync import SimCounter


class _TorusReduceBase(ReduceInvocation):
    """Shared ring + bookkeeping for both reduce variants."""

    network = "ptp"
    ncolors = 3

    def setup(self) -> None:
        machine = self.machine
        engine = machine.engine
        params = machine.params
        chunk = params.pipeline_width
        self.colors = torus_colors(self.ncolors)
        self.parts = partition_bytes(self.nbytes, self.ncolors, align=DOUBLE)
        self.offsets = [sum(self.parts[:i]) for i in range(self.ncolors)]
        self.start = Event(engine)
        self.proto_cores = [
            machine.flownet.add_resource(
                f"n{n}.proto.red{id(self)}",
                machine.nodes[n].regime.core_reduce_cap,
            )
            for n in range(machine.nnodes)
        ]
        self.contrib_ready: List[List[SimCounter]] = [
            [
                SimCounter(engine, name=f"c{c}.n{n}.contrib")
                for n in range(machine.nnodes)
            ]
            for c in range(self.ncolors)
        ]
        #: bytes of the final result landed at the root
        self.root_received = SimCounter(engine, name="root.result")
        root_node = machine.rank_to_node(self.root)
        self.rings: List[RingReduce] = []
        for c, color in enumerate(self.colors):
            if self.parts[c] == 0:
                continue
            self.rings.append(
                RingReduce(
                    self,
                    color,
                    machine.network.ring_order(color, root_node),
                    self.offsets[c],
                    self.parts[c],
                    chunk,
                    self.contrib_ready[c],
                    self.proto_cores,
                    self.start,
                    self._root_chunk,
                    reception_extra=self._reception_extra(),
                )
            )
        self._spawn_services()

    # -- hooks for subclasses ---------------------------------------------
    def _reception_extra(self):
        """Per-hop reception work factory (None for direct put)."""
        return None

    def _spawn_services(self) -> None:
        """Spawn per-node contribution producers (variant-specific)."""
        raise NotImplementedError

    # -- common -------------------------------------------------------------
    def _root_chunk(self, goff: int, size: int) -> None:
        self.write_root_slice(goff, size)
        self.root_received.add(size)

    def proc(self, rank: int):
        ctx = self.context(rank)
        machine = self.machine
        params = machine.params
        engine = machine.engine
        if self.count == 0:
            return
        yield engine.timeout(params.mpi_overhead)
        if rank == self.root:
            self.start.trigger(None)
        yield from self._rank_work(ctx)
        if rank == self.root:
            yield self.root_received.wait_for(self.nbytes)
            yield engine.timeout(params.dma_counter_poll)
        else:
            # Local completion: the rank may return once its node's
            # contribution has been fully produced (buffers reusable).
            node = ctx.node_index
            for c in range(self.ncolors):
                if self.parts[c] == 0:
                    continue
                yield self.contrib_ready[c][node].wait_for(self.parts[c])

    def _rank_work(self, ctx):
        """Per-rank active duties before completion (variant-specific)."""
        return
        yield  # pragma: no cover


@register("reduce")
class TorusCurrentReduce(_TorusReduceBase):
    """Baseline: DMA-staged local reduction + memory-FIFO ring receptions."""

    name = "reduce-torus-current"

    def _reception_extra(self):
        machine = self.machine

        def reception(node: int, size: int):
            node_obj = machine.nodes[node]
            yield machine.engine.timeout(machine.params.dma_fifo_overhead)
            yield machine.flownet.transfer(
                {node_obj.mem: 2.0, self.proto_cores[node]: 1.0},
                size,
                cap=node_obj.regime.core_copy_cap,
                name=f"redfifo.n{node}",
            )

        return reception

    def _spawn_services(self) -> None:
        machine = self.machine
        for c in range(self.ncolors):
            if self.parts[c] == 0:
                continue
            for node in range(machine.nnodes):
                machine.spawn(
                    self._local_prepare(c, node),
                    name=f"rprep.c{c}.n{node}",
                )

    def _local_prepare(self, c: int, node: int):
        machine = self.machine
        dma = machine.dma[node]
        node_obj = machine.nodes[node]
        ppn = machine.ppn
        yield self.start
        plan = ChunkPlan.build(self.parts[c], machine.params.pipeline_width)
        for _k, _off, size in plan.slices():
            if ppn > 1:
                gathers = [
                    dma.local_copy_flow(size, name=f"rgather.c{c}")
                    for _ in range(ppn - 1)
                ]
                yield AllOf(machine.engine, [f.event for f in gathers])
                share = (size + ppn - 1) // ppn
                flows = [
                    machine.flownet.transfer(
                        {node_obj.mem: float(ppn + 1)},
                        share,
                        cap=node_obj.regime.core_reduce_cap,
                        name=f"rlred.c{c}.n{node}",
                    )
                    for _ in range(ppn)
                ]
                yield AllOf(machine.engine, [f.event for f in flows])
            self.contrib_ready[c][node].add(size)


@register("reduce", modes=(4,), shared_address=True)
class TorusShaddrReduce(_TorusReduceBase):
    """Proposed: worker cores reduce mapped buffers in place, one color each."""

    name = "reduce-torus-shaddr"

    def setup(self) -> None:
        if self.machine.ppn != 4:
            raise ValueError(
                f"{self.name} is a quad-mode algorithm (ppn=4), machine has "
                f"ppn={self.machine.ppn}"
            )
        super().setup()

    def _spawn_services(self) -> None:
        # Contributions are produced by the worker ranks' own coroutines.
        pass

    def _rank_work(self, ctx):
        machine = self.machine
        params = machine.params
        engine = machine.engine
        local = ctx.local_rank
        if local == 0:
            return  # the protocol core's ring work is flow-charged
        c = local - 1
        if self.parts[c] == 0:
            return
        node = ctx.node_index
        plan = ChunkPlan.build(self.parts[c], params.pipeline_width)
        for _k, _off, size in plan.slices():
            for peer_local in range(machine.ppn):
                if peer_local != local:
                    peer_rank = machine.node_ranks(node)[peer_local]
                    yield from ctx.windows.map_buffer(
                        peer_local, ("reduce-buf", peer_rank), self.nbytes
                    )
            yield from ctx.node.core_reduce(size, machine.ppn,
                                            name=f"rlred.c{c}")
            yield engine.timeout(params.flag_cost)
            self.contrib_ready[c][node].add(size)
