"""Base class for reduce-to-root invocations (sum of doubles, root 0)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collectives.base import InvocationBase
from repro.hardware.machine import Machine

DOUBLE = 8


class ReduceInvocation(InvocationBase):
    """One ``MPI_Reduce(..., MPI_DOUBLE, MPI_SUM, root=0)`` call."""

    def __init__(
        self,
        machine: Machine,
        count: int,
        values: Optional[np.ndarray] = None,
        window_caching: bool = True,
    ):
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        super().__init__(machine, 0, count * DOUBLE, window_caching)
        self.count = count
        self.carry_data = values is not None
        self.values = values
        if self.carry_data:
            if values.shape != (machine.nprocs, count):
                raise ValueError(
                    f"values must have shape ({machine.nprocs}, {count}), "
                    f"got {values.shape}"
                )
            self.expected = values.sum(axis=0)
            self.root_result = np.zeros(count, dtype=np.float64)
        self.setup()

    def local_contribution(self, node: int, off_bytes: int, size: int
                           ) -> Optional[np.ndarray]:
        """The node's locally reduced contribution for one byte range."""
        if not self.carry_data:
            return None
        lo, hi = off_bytes // DOUBLE, (off_bytes + size) // DOUBLE
        ranks = self.machine.node_ranks(node)
        return self.values[ranks, lo:hi].sum(axis=0)

    def expected_slice_f64(self, off_bytes: int, size: int
                           ) -> Optional[np.ndarray]:
        if not self.carry_data:
            return None
        lo, hi = off_bytes // DOUBLE, (off_bytes + size) // DOUBLE
        return self.expected[lo:hi]

    def write_root_slice(self, off_bytes: int, size: int) -> None:
        if self.carry_data:
            lo, hi = off_bytes // DOUBLE, (off_bytes + size) // DOUBLE
            self.root_result[lo:hi] = self.expected[lo:hi]

    def verify(self) -> None:
        if not self.carry_data:
            raise RuntimeError("verify() requires carry_data=True")
        if not np.array_equal(self.root_result, self.expected):
            mismatch = int(np.argmax(self.root_result != self.expected))
            raise AssertionError(f"reduce mismatch at element {mismatch}")
