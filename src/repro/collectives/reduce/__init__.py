"""Reduce-to-root algorithms (extension).

``MPI_Reduce`` is the allreduce (section V-C) without the broadcast stage:
locally reduce each node's contributions, then run the multi-color
pipelined ring reduction to the root.  The intra-node contrast carries
over unchanged:

``reduce-torus-current``
    DMA gathers the peers' partitions into staging (redundant copies),
    local cores sum the staged buffers, the master core runs the ring with
    memory-FIFO receptions.

``reduce-torus-shaddr``
    Three worker cores sum the mapped application buffers in place (one
    color each); the dedicated protocol core runs the ring with direct-put
    receptions.
"""

from repro.collectives.reduce.base import ReduceInvocation
from repro.collectives.reduce.torus import (
    TorusCurrentReduce,
    TorusShaddrReduce,
)

__all__ = ["ReduceInvocation", "TorusCurrentReduce", "TorusShaddrReduce"]
