"""Messaging-stack layer (the DCMF/CCMI analog).

The collective algorithms of section V are *schedules* over hardware
primitives; this subpackage holds the schedule machinery:

* :mod:`repro.msg.color` — connection colors: the (dimension-order, sign)
  identity of each edge-disjoint route, six on a 3D torus;
* :mod:`repro.msg.routes` — the multi-color rectangle broadcast schedule of
  Fig 2 (who receives in which phase, who relays along which dimension) and
  the ring orders used by the allreduce;
* :mod:`repro.msg.pipeline` — chunking helpers for software pipelining
  (message counters advance in units of the pipeline width).
"""

from repro.msg.color import Color, partition_bytes, torus_colors
from repro.msg.pipeline import ChunkPlan, split_chunks
from repro.msg.routes import NodeRole, RectangleSchedule, ring_order

__all__ = [
    "Color",
    "torus_colors",
    "partition_bytes",
    "ChunkPlan",
    "split_chunks",
    "NodeRole",
    "RectangleSchedule",
    "ring_order",
]
