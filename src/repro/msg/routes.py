"""Multi-color route schedules on the torus.

:class:`RectangleSchedule` captures Fig 2 generalized to 3D: for a color
with dimension order ``(d1, d2, d3)`` rooted at ``root``,

* phase 0 — the root line-broadcasts along ``d1`` (its "line");
* phase 1 — every node on the root's ``d1``-line (root included)
  line-broadcasts along ``d2``, covering the root's ``d1 x d2`` plane;
* phase 2 — every node in that plane line-broadcasts along ``d3``,
  covering the full torus.

A node's *role* for a color is the phase in which it first receives data
plus the list of dimensions along which it must relay.  Degenerate
dimensions (length 1) contribute no phase.

``ring_order`` builds the snake (Hamiltonian) ring used by the allreduce's
pipelined ring reduction; each color snakes through the torus in its own
dimension order so the three rings use disjoint link classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.msg.color import Color

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.torus import TorusNetwork


@dataclass(frozen=True)
class NodeRole:
    """One node's duties for one color of a rectangle broadcast."""

    #: phase in which this node first holds the data (-1 for the root)
    receive_phase: int
    #: dimensions along which the node must line-broadcast, with the phase
    #: index each relay belongs to: list of (phase, dim)
    relays: Tuple[Tuple[int, int], ...]


class RectangleSchedule:
    """The rectangle (multi-color spanning) broadcast schedule for one color."""

    def __init__(self, torus: "TorusNetwork", root: int, color: Color):
        self.torus = torus
        self.root = root
        self.color = color
        # Effective phases: skip dimensions of length 1.
        self.phase_dims: List[int] = [
            d for d in color.dim_order if torus.dims[d] > 1
        ]
        self.sign = color.sign

    def relay_signs(self) -> List[int]:
        """Directions a relay must broadcast in to cover its line.

        On a torus one deposit broadcast covers the whole ring line; on a
        mesh the walk stops at the boundary, so a relay issues broadcasts
        in *both* directions (which is why a mesh supports only three
        edge-disjoint routes where a torus supports six).
        """
        if self.torus.wrap:
            return [self.sign]
        return [1, -1]

    @property
    def nphases(self) -> int:
        return len(self.phase_dims)

    def _matches_root_through(self, node: int, upto: int) -> bool:
        """True if node and root agree on every dim *not* traversed in
        phases ``0..upto`` (i.e. the node is reached by phase ``upto``)."""
        nc = self.torus.coords(node)
        rc = self.torus.coords(self.root)
        traversed = set(self.phase_dims[: upto + 1])
        return all(
            nc[d] == rc[d] for d in range(3) if d not in traversed
        )

    def role(self, node: int) -> NodeRole:
        """Compute the :class:`NodeRole` of ``node`` for this color."""
        if node == self.root:
            relays = tuple(
                (phase, dim) for phase, dim in enumerate(self.phase_dims)
            )
            return NodeRole(receive_phase=-1, relays=relays)
        for phase in range(self.nphases):
            if self._matches_root_through(node, phase):
                relays = tuple(
                    (p, self.phase_dims[p])
                    for p in range(phase + 1, self.nphases)
                )
                return NodeRole(receive_phase=phase, relays=relays)
        raise AssertionError(
            f"node {node} unreachable by color {self.color.id}"
        )

    def all_roles(self) -> List[NodeRole]:
        """Roles for every node (indexed by node index)."""
        return [self.role(n) for n in range(self.torus.nnodes)]


def ring_order(torus: "TorusNetwork", color: Color, root: int) -> List[int]:
    """Snake (boustrophedon) ring through every node, starting at ``root``.

    The snake traverses the color's first dimension fastest, reversing
    direction on alternate rows/planes so that consecutive ring positions
    are torus neighbours (except for occasional wrap edges, which are still
    single hops on the torus).  The ring is rotated so ``root`` sits at
    position 0.
    """
    d1, d2, d3 = color.dim_order
    dims = torus.dims
    order: List[int] = []
    for k in range(dims[d3]):
        for j_step in range(dims[d2]):
            j = j_step if k % 2 == 0 else dims[d2] - 1 - j_step
            row_reversed = (j_step + k) % 2 == 1
            for i_step in range(dims[d1]):
                i = i_step if not row_reversed else dims[d1] - 1 - i_step
                coords = [0, 0, 0]
                coords[d1], coords[d2], coords[d3] = i, j, k
                order.append(torus.index(tuple(coords)))
    # Rotate so the root is first.
    pivot = order.index(root)
    return order[pivot:] + order[:pivot]
