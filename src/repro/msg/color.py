"""Connection colors.

"The collective algorithms on BG/P are designed in a manner to keep all the
links busy ... by assigning unique connection ids to each of the links and
scheduling the data movement on each connection. Specifically, these are
referred to as the multi-color algorithms." (section V-A-1)

A color on the 3D torus is a dimension order plus a traversal sign; the six
colors (three rotations x two signs) correspond to the six edge-disjoint
spanning routes the hardware layer guarantees (see
:mod:`repro.hardware.torus` for how disjointness is modelled).  The message
is split across colors, so six colors aggregate to six links' bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Color:
    """One connection color: a route identity for multi-color collectives."""

    #: connection id (0..ncolors-1)
    id: int
    #: dimension traversal order, a permutation of (0, 1, 2)
    dim_order: Tuple[int, int, int]
    #: traversal direction along every phase (+1 or -1)
    sign: int

    def __post_init__(self) -> None:
        if sorted(self.dim_order) != [0, 1, 2]:
            raise ValueError(
                f"dim_order must be a permutation of (0,1,2), got {self.dim_order}"
            )
        if self.sign not in (1, -1):
            raise ValueError(f"sign must be +-1, got {self.sign}")


def torus_colors(ncolors: int) -> List[Color]:
    """The standard color set for a 3D torus.

    ``ncolors`` may be:

    * 6 — the full torus set (three rotations x two signs), peak 6 links;
    * 3 — the mesh/reduced set (three rotations, positive sign), used by the
      multi-color allreduce ("three edge-disjoint routes ... both for
      reduction and broadcast", section V-C-1);
    * 1 — a single-route schedule, useful for tests and debugging.
    """
    rotations: List[Tuple[int, int, int]] = [(0, 1, 2), (1, 2, 0), (2, 0, 1)]
    if ncolors == 1:
        return [Color(0, rotations[0], 1)]
    if ncolors == 3:
        return [Color(i, rotations[i], 1) for i in range(3)]
    if ncolors == 6:
        colors = []
        for i in range(3):
            colors.append(Color(2 * i, rotations[i], 1))
            colors.append(Color(2 * i + 1, rotations[i], -1))
        return colors
    raise ValueError(f"ncolors must be 1, 3 or 6, got {ncolors}")


def partition_bytes(nbytes: int, ncolors: int, align: int = 1) -> List[int]:
    """Split a message across colors (earlier colors get the remainder).

    Every color gets a contiguous partition; concatenated in color order the
    partitions reconstruct the message.  With ``align > 1`` every partition
    boundary falls on a multiple of ``align`` (the allreduce aligns to the
    8-byte double so partitions stay element-addressable); ``nbytes`` must
    then be a multiple of ``align``.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if ncolors < 1:
        raise ValueError(f"ncolors must be >= 1, got {ncolors}")
    if align < 1:
        raise ValueError(f"align must be >= 1, got {align}")
    if nbytes % align:
        raise ValueError(f"nbytes={nbytes} not a multiple of align={align}")
    units = nbytes // align
    base, rest = divmod(units, ncolors)
    return [(base + (1 if i < rest else 0)) * align for i in range(ncolors)]
