"""Chunking helpers for software pipelining.

The shared-address schemes pipeline in units of the *pipeline width*
(``Pwidth`` in section V-C-2): the network stage hands off to the intra-node
stage chunk by chunk through message counters.  A :class:`ChunkPlan` gives
both the chunk sizes and their byte offsets, so algorithms can slice real
payload buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


def split_chunks(nbytes: int, chunk_bytes: int) -> List[int]:
    """Split ``nbytes`` into pipeline chunks of at most ``chunk_bytes``."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be > 0, got {chunk_bytes}")
    if nbytes == 0:
        return []
    full, rest = divmod(nbytes, chunk_bytes)
    chunks = [chunk_bytes] * full
    if rest:
        chunks.append(rest)
    return chunks


@dataclass(frozen=True)
class ChunkPlan:
    """Chunk sizes plus offsets for one contiguous byte range."""

    total: int
    chunk_bytes: int
    sizes: Tuple[int, ...]

    @classmethod
    def build(cls, nbytes: int, chunk_bytes: int) -> "ChunkPlan":
        return cls(nbytes, chunk_bytes, tuple(split_chunks(nbytes, chunk_bytes)))

    @property
    def nchunks(self) -> int:
        return len(self.sizes)

    def offset(self, k: int) -> int:
        """Byte offset of chunk ``k`` within the range."""
        if not 0 <= k < self.nchunks:
            raise IndexError(f"chunk index {k} out of range")
        return k * self.chunk_bytes

    def slices(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(k, offset, size)`` triples in order."""
        for k, size in enumerate(self.sizes):
            yield k, k * self.chunk_bytes, size
