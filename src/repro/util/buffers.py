"""Zero-copy buffer comparison helpers.

Payload verification compares multi-megabyte buffers after every chaos
attempt; materializing ``bytes`` copies (``tobytes()``/``bytes(...)``)
just to compare them doubles the memory traffic.  :func:`same_bytes`
compares through the buffer protocol instead: two C-contiguous arrays are
wrapped in :class:`memoryview` objects cast to bytes and compared in C,
with no intermediate copy.
"""

from __future__ import annotations

import numpy as np


def same_bytes(a, b) -> bool:
    """Byte-wise equality of two array-likes without copying either.

    Identical objects short-circuit to ``True`` in O(1).  C-contiguous
    buffers (the common case: freshly built payloads and result buffers)
    are compared as cast ``memoryview`` objects — a C-level scan, zero
    allocation.  Non-contiguous views fall back to
    :func:`numpy.array_equal` on their byte reinterpretation.
    """
    if a is b:
        return True
    a = np.asarray(a)
    b = np.asarray(b)
    if a.nbytes != b.nbytes:
        return False
    if not a.flags["C_CONTIGUOUS"]:
        a = np.ascontiguousarray(a)
    if not b.flags["C_CONTIGUOUS"]:
        b = np.ascontiguousarray(b)
    return memoryview(a).cast("B") == memoryview(b).cast("B")
