"""Streaming statistics used by the benchmark harness.

The Fig-5 microbenchmark averages per-iteration elapsed times; we also keep
min/max and a Welford variance so reports can show dispersion without
storing every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class RunningStats:
    """Welford-style running mean/variance with min/max tracking."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def variance(self) -> float:
        """Sample variance (0.0 when fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return the summary of the union of both sample sets."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        merged = RunningStats()
        merged.count = self.count + other.count
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged


def summarize(samples) -> RunningStats:
    """Build a :class:`RunningStats` from an iterable of floats."""
    stats = RunningStats()
    for x in samples:
        stats.add(float(x))
    return stats
