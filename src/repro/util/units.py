"""Byte-size and time-unit helpers.

The simulator's canonical time unit is the **microsecond** (float).  The
canonical data unit is the **byte** (int).  Bandwidths are expressed in
MB/s, where 1 MB = 1e6 bytes, matching how the paper reports throughput
("MB/s" axes of Figures 7-10 and Table I).
"""

from __future__ import annotations

import re

#: Binary byte units (message sizes in the paper are binary: 128K = 131072).
KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024

#: Time units expressed in the canonical microsecond unit.
US: float = 1.0
MS: float = 1000.0
S: float = 1_000_000.0

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMG]i?B?|B)?\s*$", re.IGNORECASE)

_SUFFIX_FACTOR = {
    None: 1,
    "B": 1,
    "K": KIB,
    "KB": KIB,
    "KIB": KIB,
    "M": MIB,
    "MB": MIB,
    "MIB": MIB,
    "G": GIB,
    "GB": GIB,
    "GIB": GIB,
}


def parse_size(text: str | int) -> int:
    """Parse a human size such as ``"128K"``, ``"2M"`` or ``4096`` into bytes.

    The paper labels its x-axes with binary sizes (``1K``, ``128K``, ``2M``);
    this helper accepts exactly that notation.

    >>> parse_size("128K")
    131072
    >>> parse_size("2M")
    2097152
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = m.groups()
    key = suffix.upper() if suffix else None
    factor = _SUFFIX_FACTOR[key]
    nbytes = float(value) * factor
    if not nbytes.is_integer():
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(nbytes)


def format_bytes(nbytes: int) -> str:
    """Format a byte count the way the paper labels message sizes.

    >>> format_bytes(131072)
    '128K'
    >>> format_bytes(2097152)
    '2M'
    >>> format_bytes(768)
    '768'
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    for factor, suffix in ((GIB, "G"), (MIB, "M"), (KIB, "K")):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
    return str(nbytes)


def format_time_us(t_us: float) -> str:
    """Render a microsecond quantity with a sensible unit."""
    if t_us < 0:
        raise ValueError("time must be non-negative")
    if t_us < 1e3:
        return f"{t_us:.2f}us"
    if t_us < 1e6:
        return f"{t_us / 1e3:.3f}ms"
    return f"{t_us / 1e6:.4f}s"


def bandwidth_mbs(nbytes: int, elapsed_us: float) -> float:
    """Throughput in MB/s (1 MB = 1e6 bytes) for ``nbytes`` over ``elapsed_us``.

    This matches the units of the paper's bandwidth figures: bytes moved by
    the collective divided by the measured elapsed time.
    """
    if elapsed_us <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_us}")
    return nbytes / elapsed_us  # bytes/us == MB/s with 1 MB = 1e6 bytes
