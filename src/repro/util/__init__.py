"""Utility helpers shared across the repro package.

This subpackage deliberately has no dependencies on the simulator or the
hardware models so that every other layer may import it freely.
"""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    US,
    MS,
    S,
    format_bytes,
    format_time_us,
    parse_size,
    bandwidth_mbs,
)
from repro.util.buffers import same_bytes
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_power_of_two,
)
from repro.util.stats import RunningStats, summarize

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "US",
    "MS",
    "S",
    "format_bytes",
    "format_time_us",
    "parse_size",
    "bandwidth_mbs",
    "same_bytes",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_power_of_two",
    "RunningStats",
    "summarize",
]
