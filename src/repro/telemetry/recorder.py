"""Low-overhead structured event recorder for simulated collectives.

The paper's claims are *mechanistic* — which core injects, which receives,
which copies, how often the software message counters are polled, where
pipeline stalls accrue — and the recorder captures exactly that activity
as typed events:

* ``counter`` events — every software-counter poll (``wait_for``) and
  advance (``add``), with the counter name, value, and threshold/delta;
* ``fifo`` events — fetch-and-increment slot reservations (with the
  contention outcome: did the producer have to wait for space?) and
  occupancy samples for the Perfetto counter tracks;
* ``window`` events — shared-address mapping installs, cache hits and
  invalidations, with the TLB slot count;
* ``copy`` events — per-stage byte movement intervals, tagged with the
  moving rank and its paper role (injector, receiver, copier,
  protocol-core, reduce-core per color);
* ``stall`` events — intervals a core spent parked on a counter threshold
  (``waiting-on-counter``) or on FIFO space (``waiting-on-slot``).

Attachment and overhead discipline
----------------------------------

A recorder hangs off the engine (``engine.telemetry``); every hook site
reads that attribute once and skips recording when it is ``None``, so a
run with telemetry *disabled* executes the exact same float arithmetic as
the seed — bit-identical timings, asserted by the test suite.  Recording
itself is purely observational (no simulated events are scheduled), so an
*enabled* run also produces identical timings; telemetry can therefore be
turned on for any measurement without perturbing it.

Events are stored as flat tuples in per-kind lists — appends only, no
allocation beyond the tuple — and aggregated on demand by
:meth:`TelemetryRecorder.rollups` / :meth:`TelemetryRecorder.role_summary`.

:class:`ThreadTelemetry` is the thread-executable twin for the real
concurrent structures in :mod:`repro.structures`: a lock-guarded op
counter with no timestamps (wall-clock timestamps would make thread tests
nondeterministic), sharing the rollup key vocabulary.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

#: canonical role names (the paper's core-specialization taxonomy)
ROLE_INJECTOR = "injector"
ROLE_RECEIVER = "receiver"
ROLE_COPIER = "copier"
ROLE_PROTOCOL = "protocol-core"
ROLE_MASTER = "master"
ROLE_DMA_WAIT = "dma-wait"


def reduce_core_role(color: int) -> str:
    """The role name of the allreduce worker core owning ``color``."""
    return f"reduce-core.c{color}"


class TelemetryRecorder:
    """Typed event sink for one simulated run (attach via
    :meth:`repro.hardware.machine.Machine.attach_telemetry`)."""

    __slots__ = (
        "counter_events", "fifo_events", "window_events", "copy_events",
        "stall_events", "working_set_events", "roles", "role_nodes",
    )

    def __init__(self) -> None:
        #: (ts, counter_name, kind, value, extra) — kind "poll" (extra =
        #: threshold) or "advance" (extra = delta)
        self.counter_events: List[Tuple[float, str, str, float, float]] = []
        #: (ts, fifo_name, node, kind, seq, flag) — kind "fai" (flag =
        #: 1.0 when the reservation hit a full FIFO) or "depth" (seq
        #: unused, flag = occupancy in elements)
        self.fifo_events: List[Tuple[float, str, Optional[int], str, int, float]] = []
        #: (ts, node, peer, kind, slots) — kind "map", "hit" or "unmap"
        self.window_events: List[Tuple[float, Optional[int], int, str, int]] = []
        #: (start, end, rank, node, role, stage, nbytes)
        self.copy_events: List[
            Tuple[float, float, int, int, str, str, int]
        ] = []
        #: (start, end, rank, node, kind) — rank is None for stalls inside
        #: shared structures whose caller identity is unknown
        self.stall_events: List[
            Tuple[float, float, Optional[int], Optional[int], str]
        ] = []
        #: (ts, working_set_bytes) — sampled at every regime install
        self.working_set_events: List[Tuple[float, int]] = []
        #: rank -> paper role tag
        self.roles: Dict[int, str] = {}
        #: rank -> node index (recorded alongside the role)
        self.role_nodes: Dict[int, int] = {}

    # -- hook methods (hot paths; keep them append-only) ------------------
    def counter_poll(self, ts: float, name: str, value: float,
                     threshold: float) -> None:
        self.counter_events.append((ts, name, "poll", value, threshold))

    def counter_advance(self, ts: float, name: str, value: float,
                        delta: float) -> None:
        self.counter_events.append((ts, name, "advance", value, delta))

    def fifo_fai(self, ts: float, name: str, node: Optional[int], seq: int,
                 contended: bool) -> None:
        self.fifo_events.append(
            (ts, name, node, "fai", seq, 1.0 if contended else 0.0)
        )

    def fifo_depth(self, ts: float, name: str, node: Optional[int],
                   depth: float) -> None:
        self.fifo_events.append((ts, name, node, "depth", 0, depth))

    def window_event(self, ts: float, node: Optional[int], peer: int,
                     kind: str, slots: int) -> None:
        self.window_events.append((ts, node, peer, kind, slots))

    def copied(self, start: float, end: float, rank: int, node: int,
               role: str, stage: str, nbytes: int) -> None:
        self.copy_events.append((start, end, rank, node, role, stage, nbytes))

    def stall(self, start: float, end: float, rank: Optional[int],
              node: Optional[int], kind: str) -> None:
        if end > start:
            self.stall_events.append((start, end, rank, node, kind))

    def working_set(self, ts: float, nbytes: int) -> None:
        self.working_set_events.append((ts, nbytes))

    def set_role(self, rank: int, node: int, role: str) -> None:
        self.roles[rank] = role
        self.role_nodes[rank] = node

    # -- aggregation -----------------------------------------------------
    def rollups(self) -> Dict[str, float]:
        """Flat metric rollups — the manifest's regression-gated payload.

        Every value is a deterministic function of the simulation, so two
        runs of the same spec produce identical rollups and a tolerance
        gate over them is meaningful.
        """
        out: Dict[str, float] = defaultdict(float)
        for _ts, _name, kind, _value, _extra in self.counter_events:
            out[f"counter_{kind}s"] += 1.0
        for _ts, _name, _node, kind, _seq, flag in self.fifo_events:
            if kind == "fai":
                out["fifo_fai"] += 1.0
                out["fifo_fai_contended"] += flag
        for _ts, _node, _peer, kind, _slots in self.window_events:
            if kind == "map":
                out["window_maps"] += 1.0
            elif kind == "hit":
                out["window_cache_hits"] += 1.0
            elif kind == "unmap":
                out["window_unmaps"] += 1.0
        for start, end, _rank, _node, role, _stage, nbytes in self.copy_events:
            out["bytes_copied"] += float(nbytes)
            out["copy_us"] += end - start
            out[f"bytes_copied.{role}"] += float(nbytes)
        for start, end, _rank, _node, kind in self.stall_events:
            out[f"stall_us.{kind}"] += end - start
        for role in self.roles.values():
            out[f"ranks.{role}"] += 1.0
        return dict(out)

    def role_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-role aggregation: rank count, bytes moved, busy/stall µs."""
        summary: Dict[str, Dict[str, float]] = {}

        def bucket(role: str) -> Dict[str, float]:
            if role not in summary:
                summary[role] = {
                    "ranks": 0.0, "bytes": 0.0, "copy_us": 0.0,
                    "stall_us": 0.0,
                }
            return summary[role]

        for role in self.roles.values():
            bucket(role)["ranks"] += 1.0
        for start, end, rank, _node, role, _stage, nbytes in self.copy_events:
            b = bucket(self.roles.get(rank, role))
            b["bytes"] += float(nbytes)
            b["copy_us"] += end - start
        for start, end, rank, _node, kind in self.stall_events:
            if rank is None:
                continue
            role = self.roles.get(rank)
            if role is not None:
                bucket(role)["stall_us"] += end - start
        return summary

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage aggregation of the copy events (events, bytes, µs)."""
        summary: Dict[str, Dict[str, float]] = {}
        for start, end, _rank, _node, _role, stage, nbytes in self.copy_events:
            b = summary.setdefault(
                stage, {"events": 0.0, "bytes": 0.0, "us": 0.0}
            )
            b["events"] += 1.0
            b["bytes"] += float(nbytes)
            b["us"] += end - start
        return summary

    def clear(self) -> None:
        """Drop every recorded event (roles included) for reuse."""
        self.counter_events.clear()
        self.fifo_events.clear()
        self.window_events.clear()
        self.copy_events.clear()
        self.stall_events.clear()
        self.working_set_events.clear()
        self.roles.clear()
        self.role_nodes.clear()


class ThreadTelemetry:
    """Deterministic op counters for the thread-executable structures.

    The real concurrent structures run on OS threads, where timestamped
    event streams would be nondeterministic; this twin records *counts
    only*, guarded by one lock, using the same rollup keys as the
    simulation recorder (``counter_polls``, ``fifo_fai``,
    ``fifo_fai_contended``, ...).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = defaultdict(int)

    def record(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.counts[key] += n

    def rollups(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counts)
