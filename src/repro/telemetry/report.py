"""Breakdown tables for ``repro report`` — per-role, per-stage, protocol.

Consumes a :class:`~repro.telemetry.recorder.TelemetryRecorder` plus the
:class:`~repro.telemetry.manifest.RunManifest` of the run it observed and
renders the paper's mechanistic story as plain-text tables: which cores
played which role (injector / receiver / copier / protocol-core /
reduce-core), how many bytes each role moved and how long it stalled,
and the protocol-level op counts (counter polls, FIFO fetch-and-
increments with contention, window syscalls).
"""

from __future__ import annotations

from typing import Dict, List

from repro.telemetry.manifest import RunManifest
from repro.telemetry.recorder import TelemetryRecorder


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    fmt = "  ".join(f"{{:<{w}}}" if i == 0 else f"{{:>{w}}}"
                    for i, w in enumerate(widths))
    lines = [fmt.format(*headers)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt.format(*row) for row in rows)
    return lines


def _fmt_bytes(nbytes: float) -> str:
    if nbytes >= 1024 * 1024:
        return f"{nbytes / (1024 * 1024):.2f}MiB"
    if nbytes >= 1024:
        return f"{nbytes / 1024:.1f}KiB"
    return f"{int(nbytes)}B"


def manifest_header(manifest: RunManifest) -> List[str]:
    dims = "x".join(str(d) for d in manifest.dims)
    return [
        f"run      {manifest.spec_key}",
        f"machine  {dims} nodes, mode {manifest.mode} "
        f"(ppn {manifest.ppn}, {manifest.nprocs} procs)",
        f"payload  x={manifest.x} ({_fmt_bytes(manifest.nbytes)}), "
        f"{manifest.iters} iters, seed {manifest.seed}"
        + (f", git {manifest.git_rev}" if manifest.git_rev else ""),
        f"elapsed  {manifest.elapsed_us:.3f} us"
        + (f"  ({manifest.bandwidth_mbs:.1f} MB/s)"
           if manifest.bandwidth_mbs else ""),
    ]


def role_table(recorder: TelemetryRecorder) -> List[str]:
    """Per-role breakdown — the paper's core-specialization split."""
    summary = recorder.role_summary()
    if not summary:
        return ["(no role activity recorded)"]
    rows = [
        [
            role,
            f"{int(data['ranks'])}",
            _fmt_bytes(data["bytes"]),
            f"{data['copy_us']:.2f}",
            f"{data['stall_us']:.2f}",
        ]
        for role, data in sorted(summary.items())
    ]
    return _table(
        ["role", "ranks", "bytes", "copy us", "stall us"], rows
    )


def stage_table(recorder: TelemetryRecorder) -> List[str]:
    """Per-stage breakdown of the copy pipeline."""
    summary = recorder.stage_summary()
    if not summary:
        return ["(no stage activity recorded)"]
    rows = [
        [
            stage,
            f"{int(data['events'])}",
            _fmt_bytes(data["bytes"]),
            f"{data['us']:.2f}",
        ]
        for stage, data in sorted(summary.items())
    ]
    return _table(["stage", "events", "bytes", "busy us"], rows)


def protocol_table(rollups: Dict[str, float]) -> List[str]:
    """Protocol-level op counts from the manifest rollups."""
    picks = [
        ("counter polls", "counter_polls"),
        ("counter advances", "counter_advances"),
        ("FIFO fetch-and-incr", "fifo_fai"),
        ("  ... contended", "fifo_fai_contended"),
        ("window maps", "window_maps"),
        ("window cache hits", "window_cache_hits"),
        ("window unmaps", "window_unmaps"),
        ("stall us (counter)", "stall_us.waiting-on-counter"),
        ("stall us (slot)", "stall_us.waiting-on-slot"),
    ]
    rows = []
    for label, key in picks:
        if key in rollups:
            value = rollups[key]
            rows.append([
                label,
                f"{value:.2f}" if value != int(value) else f"{int(value)}",
            ])
    if not rows:
        return ["(no protocol activity recorded)"]
    return _table(["metric", "value"], rows)


def format_report(manifest: RunManifest,
                  recorder: TelemetryRecorder) -> str:
    """The full ``repro report`` body for one run."""
    lines: List[str] = []
    lines.extend(manifest_header(manifest))
    lines.append("")
    lines.append("per-role breakdown")
    lines.extend(role_table(recorder))
    lines.append("")
    lines.append("per-stage breakdown")
    lines.extend(stage_table(recorder))
    lines.append("")
    lines.append("protocol metrics")
    lines.extend(protocol_table(manifest.rollups))
    return "\n".join(lines)
