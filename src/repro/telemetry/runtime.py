"""Unified runtime observability: structured logs, metrics, trace spans.

PR 5 gave the *simulator* deep observability (role timelines, Perfetto
counter tracks, the manifest gate); this module gives the same plane to
the distributed layers that grew around it — the prediction service
(:mod:`repro.serve`), the sweep farm (:mod:`repro.bench.farm`), and the
parallel executor (:mod:`repro.bench.parallel`).  Three pillars:

**Structured logs** (:func:`runtime_log`)
    Component-scoped loggers emitting one event per line.  The default
    *console* format reproduces the historical stderr shapes
    (``[farm] message``, ``[worker-id] message``, bare cache warnings),
    so adopting the logger changes nothing a human or a log scraper
    sees; ``REPRO_RUNTIME_LOG=json`` switches to newline-JSON events
    (``{"ts", "component", "level", "event", ...fields}``), and
    ``REPRO_RUNTIME_LOG=0`` restores today's behavior exactly — legacy
    lines still print, everything else (rings, spans, JSON) is off.
    ``REPRO_LOG_LEVEL`` (debug/info/warning/error) filters globally;
    per-logger levels (the farm's ``--quiet``) override it.

**Metrics** (:class:`MetricsRegistry`)
    A process-local registry of counters, gauges and histograms (fixed
    bucket bounds).  Recorded values are counts and durations — never
    wall-clock timestamps — so snapshots are portable and diffable.
    :meth:`MetricsRegistry.dump_metrics` renders Prometheus text
    exposition; :func:`serve_metrics_http` serves it over HTTP
    (``repro serve --metrics-port``).  The serve and farm servers keep
    their own instances (synced from their authoritative stats under
    the stats lock, so exposition always matches ``--stats`` /
    ``farm status``); the executor shares :func:`default_registry`.

**Trace spans** (:func:`span`, :class:`SpanStore`)
    ``trace_id``/``span_id`` pairs minted where a query enters the
    service and propagated *beside* the data — explicit context dicts
    through ``execute_points``, extra fields on farm lease grants and
    completion records — never inside point specs, cache keys, or
    pickled results (observability must not perturb byte identity).
    Finished spans land in a bounded process-local :class:`SpanStore`
    and export as the same Chrome Trace Event Format the simulator
    emits (:func:`write_runtime_trace`; ``repro trace --runtime``),
    under their own pid so runtime spans sit beside role timelines.

A **flight recorder** rides along: every structured event (any level)
is kept in a per-component ring buffer of the last
:data:`FLIGHT_RING` events, dumped to a JSONL artifact by
:func:`dump_flight_record` on quarantine, point failure, or unclean
shutdown (:func:`install_excepthook`) — set ``REPRO_FLIGHT_DIR`` to
enable dumps.

See ``docs/observability.md`` ("Runtime observability") for the log
schema, the metric name table, and the span model.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: "0"/"off" disables the runtime plane (legacy stderr lines still
#: print); "json" emits newline-JSON events; anything else = console
ENV_RUNTIME_LOG = "REPRO_RUNTIME_LOG"

#: global minimum level (debug/info/warning/error; default info)
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"

#: directory for flight-recorder JSONL dumps (unset = dumps disabled)
ENV_FLIGHT_DIR = "REPRO_FLIGHT_DIR"

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_OFF_VALUES = frozenset(("0", "off", "false", "no", "disabled"))


def runtime_log_mode() -> str:
    """The resolved log mode: ``"off"``, ``"console"`` or ``"json"``."""
    raw = os.environ.get(ENV_RUNTIME_LOG, "").strip().lower()
    if raw in _OFF_VALUES:
        return "off"
    if raw == "json":
        return "json"
    return "console"


def runtime_enabled() -> bool:
    """True unless ``REPRO_RUNTIME_LOG=0`` turned the plane off."""
    return runtime_log_mode() != "off"


def global_log_level() -> int:
    raw = os.environ.get(ENV_LOG_LEVEL, "").strip().lower()
    return _LEVELS.get(raw, _LEVELS["info"])


# -- flight recorder ring ------------------------------------------------

#: events kept per component for post-mortem dumps
FLIGHT_RING = 256

_FLIGHT_LOCK = threading.Lock()
_FLIGHT: "Dict[str, deque]" = {}
_FLIGHT_SEQ = itertools.count(1)


def _flight_append(component: str, event: dict) -> None:
    with _FLIGHT_LOCK:
        ring = _FLIGHT.get(component)
        if ring is None:
            ring = _FLIGHT[component] = deque(maxlen=FLIGHT_RING)
        ring.append(event)


def flight_snapshot(component: Optional[str] = None) -> List[dict]:
    """The ring's events (one component, or all), oldest first."""
    with _FLIGHT_LOCK:
        if component is not None:
            return list(_FLIGHT.get(component, ()))
        events: List[dict] = []
        for ring in _FLIGHT.values():
            events.extend(ring)
    events.sort(key=lambda event: event.get("ts", 0.0))
    return events


def dump_flight_record(reason: str, *, component: Optional[str] = None,
                       path: Optional[str] = None) -> Optional[str]:
    """Dump the flight-recorder ring to a JSONL artifact; returns its path.

    No-op (returns ``None``) when the runtime plane is off, or when
    neither an explicit ``path`` nor ``REPRO_FLIGHT_DIR`` names a
    destination — a test suite full of deliberate point failures must
    not litter the working directory.
    """
    if not runtime_enabled():
        return None
    if path is None:
        directory = os.environ.get(ENV_FLIGHT_DIR, "").strip()
        if not directory:
            return None
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory,
            f"flight-{component or 'runtime'}-{os.getpid()}"
            f"-{next(_FLIGHT_SEQ)}.jsonl",
        )
    events = flight_snapshot(component)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
        handle.write(json.dumps(
            {"kind": "flight", "reason": reason, "events": len(events),
             "ts": round(time.time(), 6)},
            sort_keys=True,
        ))
        handle.write("\n")
    return path


_EXCEPTHOOK_INSTALLED = False


def install_excepthook(component: str = "runtime") -> None:
    """Dump the flight recorder on an uncaught exception (once per process).

    Wired into the long-running entry points (``repro serve``,
    ``repro farm serve``) so an unclean shutdown leaves its last
    :data:`FLIGHT_RING` events behind for diagnosis.
    """
    global _EXCEPTHOOK_INSTALLED
    if _EXCEPTHOOK_INSTALLED:
        return
    _EXCEPTHOOK_INSTALLED = True
    previous = sys.excepthook

    def _hook(exc_type, exc, tb):
        if not issubclass(exc_type, KeyboardInterrupt):
            dump_flight_record(
                f"unclean-shutdown: {exc_type.__name__}: {exc}",
                component=None,
            )
        previous(exc_type, exc, tb)

    sys.excepthook = _hook


# -- structured logging --------------------------------------------------

class RuntimeLogger:
    """One component's structured logger.

    ``prefix`` is the console-format tag (``[prefix] message``); ``None``
    prints bare messages (the serve cache's historical shape).  ``level``
    (a name from debug/info/warning/error) overrides the global
    ``REPRO_LOG_LEVEL`` threshold for this logger — the farm maps its
    ``--quiet`` flag here.

    ``legacy=True`` marks a call site that printed to stderr before the
    runtime plane existed: with ``REPRO_RUNTIME_LOG=0`` those lines (and
    only those) still print, byte-identical to the historical output.
    New, purely structured events stay silent under ``=0``.
    """

    __slots__ = ("component", "prefix", "_threshold")

    def __init__(self, component: str, *, prefix: Optional[str] = None,
                 level: Optional[str] = None):
        self.component = component
        self.prefix = prefix
        self._threshold = _LEVELS[level] if level is not None else None

    def _line(self, message: str) -> str:
        if self.prefix:
            return f"[{self.prefix}] {message}"
        return message

    def log(self, level: str, event: str, message: Optional[str] = None,
            *, legacy: bool = False, **fields) -> None:
        severity = _LEVELS.get(level, _LEVELS["info"])
        threshold = (self._threshold if self._threshold is not None
                     else global_log_level())
        mode = runtime_log_mode()
        if mode == "off":
            # Exact historical behavior: only the lines that always
            # printed, printed the way they always were.
            if legacy and message is not None and severity >= threshold:
                print(self._line(message), file=sys.stderr, flush=True)
            return
        record = {
            "ts": round(time.time(), 6),
            "component": self.component,
            "level": level,
            "event": event,
        }
        if message is not None:
            record["msg"] = message
        for key, value in fields.items():
            record[key] = value
        _flight_append(self.component, record)
        if severity < threshold:
            return
        if mode == "json":
            print(json.dumps(record, sort_keys=True, default=str),
                  file=sys.stderr, flush=True)
            return
        if message is not None:
            text = message
        else:
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            text = f"{event} {detail}".rstrip()
        print(self._line(text), file=sys.stderr, flush=True)

    def debug(self, event: str, message: Optional[str] = None,
              **kwargs) -> None:
        self.log("debug", event, message, **kwargs)

    def info(self, event: str, message: Optional[str] = None,
             **kwargs) -> None:
        self.log("info", event, message, **kwargs)

    def warning(self, event: str, message: Optional[str] = None,
                **kwargs) -> None:
        self.log("warning", event, message, **kwargs)

    def error(self, event: str, message: Optional[str] = None,
              **kwargs) -> None:
        self.log("error", event, message, **kwargs)


def runtime_log(component: str, *, prefix: Optional[str] = None,
                level: Optional[str] = None) -> RuntimeLogger:
    """A structured logger for ``component`` (see :class:`RuntimeLogger`)."""
    return RuntimeLogger(component, prefix=prefix, level=level)


# -- metrics registry ----------------------------------------------------

#: fixed histogram bucket bounds (seconds) — identical in every process,
#: so scraped histograms merge without renegotiating boundaries
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: _LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


def _prom_labels(key: _LabelKey, extra: Optional[Tuple[str, str]] = None
                 ) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Sync the counter to an externally tallied monotonic total.

        Used by the serve/farm servers, whose authoritative counts live
        in their stats structs: syncing at exposition time (under the
        stats lock) guarantees the scraped number equals the ``--stats``
        / ``farm status`` number.
        """
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)


class Gauge:
    """A value that can go up and down (occupancy, sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)


class Histogram:
    """Fixed-bound bucketed observations (durations, sizes — never
    timestamps)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, lock: threading.RLock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {name} buckets must be ascending, got {buckets}"
            )
        self.name = name
        self.help = help_text
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = lock
        #: labels -> [per-bucket counts..., +Inf count, sum, count]
        self._series: Dict[_LabelKey, List[float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = (
                    [0.0] * (len(self.buckets) + 1) + [0.0, 0.0]
                )
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    series[position] += 1
                    break
            else:
                series[len(self.buckets)] += 1
            series[-2] += value
            series[-1] += 1

    def summary(self, **labels) -> Dict[str, float]:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"count": 0, "sum": 0.0}
            return {"count": int(series[-1]), "sum": series[-2]}


class MetricsRegistry:
    """A process-local set of named metrics with one shared lock.

    ``counter``/``gauge``/``histogram`` get-or-create by name (a name
    re-registered as a different kind is an error — the registry is the
    schema).  :meth:`snapshot` returns plain dicts for JSON transport;
    :meth:`dump_metrics` renders Prometheus text exposition format.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, factory: Callable[[], object],
             kind: str) -> object:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(
            name, lambda: Counter(name, help_text, self._lock), "counter",
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(
            name, lambda: Gauge(name, help_text, self._lock), "gauge",
        )

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(
            name,
            lambda: Histogram(name, help_text, self._lock, buckets),
            "histogram",
        )

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view: ``{"counters": {name: {labels: value}}, ...}``."""
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.kind in ("counter", "gauge"):
                    out[metric.kind + "s"][name] = {
                        _label_str(key): value
                        for key, value in sorted(metric._values.items())
                    }
                else:
                    series_out = {}
                    for key, series in sorted(metric._series.items()):
                        buckets = {
                            _format_value(bound): int(count)
                            for bound, count in zip(metric.buckets, series)
                        }
                        buckets["+Inf"] = int(series[len(metric.buckets)])
                        series_out[_label_str(key)] = {
                            "count": int(series[-1]),
                            "sum": series[-2],
                            "buckets": buckets,
                        }
                    out["histograms"][name] = series_out
        return out

    def dump_metrics(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                if metric.kind in ("counter", "gauge"):
                    for key, value in sorted(metric._values.items()):
                        lines.append(
                            f"{name}{_prom_labels(key)} "
                            f"{_format_value(value)}"
                        )
                else:
                    for key, series in sorted(metric._series.items()):
                        cumulative = 0.0
                        for bound, count in zip(metric.buckets, series):
                            cumulative += count
                            lines.append(
                                f"{name}_bucket"
                                f"{_prom_labels(key, ('le', _format_value(bound)))} "
                                f"{_format_value(cumulative)}"
                            )
                        cumulative += series[len(metric.buckets)]
                        lines.append(
                            f"{name}_bucket"
                            f"{_prom_labels(key, ('le', '+Inf'))} "
                            f"{_format_value(cumulative)}"
                        )
                        lines.append(
                            f"{name}_sum{_prom_labels(key)} "
                            f"{_format_value(series[-2])}"
                        )
                        lines.append(
                            f"{name}_count{_prom_labels(key)} "
                            f"{_format_value(series[-1])}"
                        )
        return "\n".join(lines) + "\n"


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (used by the parallel executor and
    farm workers; the serve/farm servers keep their own instances)."""
    return _DEFAULT_REGISTRY


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse exposition text back to ``{name: {labelstr: value}}``.

    Enough of the format for the smoke drills to assert scraped counters
    equal the stats snapshot; not a general client.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        try:
            value = float(value_part)
        except ValueError:
            continue  # prose sharing the stream (e.g. a status summary)
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            labels = label_part.rstrip("}")
            labels = ",".join(
                part.replace('"', "")
                for part in labels.split(",") if part
            )
        else:
            name, labels = name_part, ""
        out.setdefault(name, {})[labels] = value
    return out


# -- metrics over HTTP ---------------------------------------------------

def serve_metrics_http(host: str, port: int, render: Callable[[], str]):
    """Serve ``render()`` as Prometheus text on ``/metrics`` (daemon thread).

    Returns the bound ``ThreadingHTTPServer`` (``.server_address`` for
    the ephemeral-port case; ``.shutdown()`` to stop).  The endpoint is
    read-only and unauthenticated — same loopback-only posture as the
    serve protocol itself.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            if self.path.split("?")[0].rstrip("/") in ("", "/metrics"):
                try:
                    body = render().encode("utf-8")
                except Exception as exc:  # surface, don't kill the thread
                    body = f"# metrics render failed: {exc}\n".encode()
                    self.send_response(500)
                else:
                    self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self.send_error(404)

        def log_message(self, *args):  # scrapes are not access-logged
            pass

    httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
    thread = threading.Thread(
        target=httpd.serve_forever, name="metrics-http", daemon=True,
    )
    thread.start()
    return httpd


# -- trace spans ---------------------------------------------------------

def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def mint_trace() -> Dict[str, str]:
    """A fresh trace context: ``{"trace_id", "span_id"}`` (root span)."""
    return {"trace_id": new_trace_id(), "span_id": new_span_id()}


class SpanStore:
    """Process-local bounded store of finished spans (oldest dropped)."""

    def __init__(self, max_spans: int = 8192):
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=max_spans)

    def record(self, span_dict: dict) -> None:
        with self._lock:
            self._spans.append(dict(span_dict))

    def record_many(self, spans: Sequence[dict]) -> None:
        with self._lock:
            for span_dict in spans:
                if isinstance(span_dict, dict):
                    self._spans.append(dict(span_dict))

    def snapshot(self) -> List[dict]:
        with self._lock:
            return [dict(span_dict) for span_dict in self._spans]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_SPAN_STORE = SpanStore()


def span_store() -> SpanStore:
    return _SPAN_STORE


class ActiveSpan:
    """Handle yielded by :func:`span`: context to propagate + live attrs.

    ``ctx`` is the ``{"trace_id", "span_id"}`` dict a child (or a wire
    hop) should use as its parent.  :meth:`set` adds attributes that are
    only known mid-span (the tier a query resolved to, say).
    """

    __slots__ = ("ctx", "attrs")

    def __init__(self, ctx: Optional[Dict[str, str]], attrs: dict):
        self.ctx = ctx
        self.attrs = attrs

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)


@contextmanager
def span(name: str, component: str, *,
         parent: Optional[Dict[str, str]] = None,
         store: Optional[SpanStore] = None,
         **attrs) -> Iterator[ActiveSpan]:
    """Record one span around a block; yields an :class:`ActiveSpan`.

    A ``parent`` context chains the new span under it (same trace,
    fresh span id); ``parent=None`` mints a new trace.  With the
    runtime plane off the block runs untouched and the yielded handle
    carries the parent context through unchanged — call sites never
    branch on the kill switch.
    """
    if not runtime_enabled():
        yield ActiveSpan(parent, {})
        return
    ctx = {
        "trace_id": (parent or {}).get("trace_id") or new_trace_id(),
        "span_id": new_span_id(),
    }
    active = ActiveSpan(ctx, dict(attrs))
    start_s = time.time()
    # "store or _SPAN_STORE" would misroute: an empty SpanStore is falsy.
    target = store if store is not None else _SPAN_STORE
    try:
        yield active
    finally:
        target.record({
            "trace_id": ctx["trace_id"],
            "span_id": ctx["span_id"],
            "parent_id": (parent or {}).get("span_id"),
            "name": name,
            "component": component,
            "start_s": start_s,
            "end_s": time.time(),
            "attrs": active.attrs,
        })


def record_span(name: str, component: str, start_s: float, end_s: float, *,
                parent: Optional[Dict[str, str]] = None,
                span_id: Optional[str] = None,
                store: Optional[SpanStore] = None,
                **attrs) -> Optional[dict]:
    """Record a span whose timing was captured out-of-band.

    Used where the work ran somewhere a context manager cannot wrap —
    a pool future, a farm worker's chunk.  Returns the recorded span
    (or ``None`` when the plane is off or there is no parent context
    to attach to).
    """
    if not runtime_enabled() or parent is None:
        return None
    span_dict = {
        "trace_id": parent["trace_id"],
        "span_id": span_id or new_span_id(),
        "parent_id": parent.get("span_id"),
        "name": name,
        "component": component,
        "start_s": start_s,
        "end_s": end_s,
        "attrs": dict(attrs),
    }
    (store if store is not None else _SPAN_STORE).record(span_dict)
    return span_dict


# -- Chrome-trace export -------------------------------------------------

#: pid of runtime spans in exported traces (the simulator uses 1-3:
#: flows, core roles, counter tracks — see repro.sim.tracing)
RUNTIME_TRACE_PID = 10


def _span_row(span_dict: dict) -> str:
    attrs = span_dict.get("attrs") or {}
    worker = attrs.get("worker")
    if worker:
        return f"{span_dict.get('component', 'runtime')} {worker}"
    return str(span_dict.get("component", "runtime"))


def runtime_trace_document(spans: Sequence[dict]) -> dict:
    """Chrome Trace Event Format document of runtime spans.

    Same shape the simulator's :func:`repro.sim.tracing.chrome_trace`
    emits (``traceEvents`` + ``displayTimeUnit``), under
    :data:`RUNTIME_TRACE_PID` with one thread row per component (farm
    rows split per worker id), so the two documents' events can sit in
    one viewer side by side.  Span identity (``trace_id``/``span_id``/
    ``parent_id``) rides in each event's ``args``.
    """
    ordered = sorted(
        (dict(span_dict) for span_dict in spans if isinstance(span_dict, dict)),
        key=lambda span_dict: float(span_dict.get("start_s", 0.0)),
    )
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": RUNTIME_TRACE_PID,
        "args": {"name": "runtime spans"},
    }]
    rows: Dict[str, int] = {}
    for span_dict in ordered:
        row = _span_row(span_dict)
        if row not in rows:
            rows[row] = len(rows) + 1
            events.append({
                "name": "thread_name", "ph": "M",
                "pid": RUNTIME_TRACE_PID, "tid": rows[row],
                "args": {"name": row},
            })
    origin = min(
        (float(span_dict.get("start_s", 0.0)) for span_dict in ordered),
        default=0.0,
    )
    for span_dict in ordered:
        start = float(span_dict.get("start_s", 0.0))
        end = float(span_dict.get("end_s", start))
        args = {
            "trace_id": span_dict.get("trace_id"),
            "span_id": span_dict.get("span_id"),
            "parent_id": span_dict.get("parent_id"),
        }
        args.update(span_dict.get("attrs") or {})
        events.append({
            "name": str(span_dict.get("name", "span")),
            "ph": "X",
            "ts": round((start - origin) * 1e6, 3),
            "dur": round(max(end - start, 0.0) * 1e6, 3),
            "pid": RUNTIME_TRACE_PID,
            "tid": rows[_span_row(span_dict)],
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": "runtime-spans",
            "spans": len(ordered),
            "traces": len({
                span_dict.get("trace_id") for span_dict in ordered
            }),
        },
    }


def write_runtime_trace(spans: Sequence[dict], path: str) -> int:
    """Write :func:`runtime_trace_document` to ``path``; returns the
    number of span ("X") events written."""
    document = runtime_trace_document(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return sum(1 for event in document["traceEvents"]
               if event.get("ph") == "X")


__all__ = [
    "ActiveSpan",
    "Counter",
    "DEFAULT_BUCKETS",
    "ENV_FLIGHT_DIR",
    "ENV_LOG_LEVEL",
    "ENV_RUNTIME_LOG",
    "FLIGHT_RING",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RUNTIME_TRACE_PID",
    "RuntimeLogger",
    "SpanStore",
    "default_registry",
    "dump_flight_record",
    "flight_snapshot",
    "install_excepthook",
    "mint_trace",
    "new_span_id",
    "new_trace_id",
    "parse_prometheus",
    "record_span",
    "runtime_enabled",
    "runtime_log",
    "runtime_log_mode",
    "runtime_trace_document",
    "serve_metrics_http",
    "span",
    "span_store",
    "write_runtime_trace",
]
