"""Stage-level telemetry: recorder, run manifests, and report tables.

``repro.telemetry.runtime`` adds the *runtime* observability plane for
the long-running components (serve / farm / parallel): structured logs,
a metrics registry with Prometheus exposition, cross-component trace
spans, and a flight recorder.  See ``docs/observability.md`` for both
planes.
"""

from repro.telemetry.manifest import (
    DEFAULT_TOLERANCE,
    CampaignManifest,
    RunManifest,
    bench_entry_solver,
    compare_bench,
    compare_manifests,
    compare_with_baseline_file,
    git_revision,
    load_baseline,
    save_baseline,
    spec_fingerprint,
)
from repro.telemetry.recorder import (
    ROLE_COPIER,
    ROLE_DMA_WAIT,
    ROLE_INJECTOR,
    ROLE_MASTER,
    ROLE_PROTOCOL,
    ROLE_RECEIVER,
    TelemetryRecorder,
    ThreadTelemetry,
    reduce_core_role,
)
from repro.telemetry.report import format_report
from repro.telemetry.runtime import (
    MetricsRegistry,
    RuntimeLogger,
    SpanStore,
    default_registry,
    dump_flight_record,
    parse_prometheus,
    record_span,
    runtime_enabled,
    runtime_log,
    span,
    span_store,
    write_runtime_trace,
)

__all__ = [
    "CampaignManifest",
    "DEFAULT_TOLERANCE",
    "MetricsRegistry",
    "ROLE_COPIER",
    "ROLE_DMA_WAIT",
    "ROLE_INJECTOR",
    "ROLE_MASTER",
    "ROLE_PROTOCOL",
    "ROLE_RECEIVER",
    "RunManifest",
    "RuntimeLogger",
    "SpanStore",
    "TelemetryRecorder",
    "ThreadTelemetry",
    "bench_entry_solver",
    "compare_bench",
    "compare_manifests",
    "compare_with_baseline_file",
    "default_registry",
    "dump_flight_record",
    "format_report",
    "git_revision",
    "load_baseline",
    "parse_prometheus",
    "record_span",
    "reduce_core_role",
    "runtime_enabled",
    "runtime_log",
    "save_baseline",
    "span",
    "span_store",
    "spec_fingerprint",
    "write_runtime_trace",
]
