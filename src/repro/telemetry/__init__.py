"""Stage-level telemetry: recorder, run manifests, and report tables.

See ``docs/observability.md`` for the design and role taxonomy.
"""

from repro.telemetry.manifest import (
    DEFAULT_TOLERANCE,
    CampaignManifest,
    RunManifest,
    bench_entry_solver,
    compare_bench,
    compare_manifests,
    compare_with_baseline_file,
    git_revision,
    load_baseline,
    save_baseline,
    spec_fingerprint,
)
from repro.telemetry.recorder import (
    ROLE_COPIER,
    ROLE_DMA_WAIT,
    ROLE_INJECTOR,
    ROLE_MASTER,
    ROLE_PROTOCOL,
    ROLE_RECEIVER,
    TelemetryRecorder,
    ThreadTelemetry,
    reduce_core_role,
)
from repro.telemetry.report import format_report

__all__ = [
    "CampaignManifest",
    "DEFAULT_TOLERANCE",
    "ROLE_COPIER",
    "ROLE_DMA_WAIT",
    "ROLE_INJECTOR",
    "ROLE_MASTER",
    "ROLE_PROTOCOL",
    "ROLE_RECEIVER",
    "RunManifest",
    "TelemetryRecorder",
    "ThreadTelemetry",
    "bench_entry_solver",
    "compare_bench",
    "compare_manifests",
    "compare_with_baseline_file",
    "format_report",
    "git_revision",
    "load_baseline",
    "reduce_core_role",
    "save_baseline",
    "spec_fingerprint",
]
