"""Run manifests: what ran, where, and the metric rollups it produced.

A :class:`RunManifest` is a small, fully picklable record attached by
:func:`repro.bench.harness.run_collective` to every
:class:`~repro.collectives.base.CollectiveResult` — geometry, mode,
protocol, size, seed, elapsed time, and (when a telemetry recorder was
attached) the recorder's metric rollups.  Manifests serve two jobs:

* **attribution** — ``repro report`` prints a manifest plus its per-role
  breakdown so any perf claim can name the stage it came from;
* **regression gating** — committed baseline manifests
  (``benchmarks/results/manifest_baseline.json``) are diffed against a
  fresh run with :func:`compare_manifests`; every shared rollup must stay
  within a relative tolerance.  :func:`compare_bench` applies the same
  tolerance gate across the labelled entries of ``BENCH_core.json``.

Everything gated is *simulated* (microseconds, event counts), never
wall-clock, so baselines are portable across hosts.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

_git_rev_cache: Optional[str] = None


def git_revision() -> str:
    """The current git commit (short), or ``"unknown"`` outside a repo.

    Resolved once per process — manifests are built inside timed loops and
    must never pay a subprocess per run.
    """
    global _git_rev_cache
    if _git_rev_cache is None:
        try:
            _git_rev_cache = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5.0, check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache = "unknown"
    return _git_rev_cache


@dataclass
class RunManifest:
    """Identity + rollups of one measured collective run."""

    family: str
    algorithm: str
    dims: Tuple[int, int, int]
    mode: str
    ppn: int
    nprocs: int
    #: the family's natural size argument (bytes for bcast, elements for
    #: the reductions, block bytes for the block collectives)
    x: int
    nbytes: int
    iters: int
    seed: int
    verify: bool
    elapsed_us: float
    bandwidth_mbs: float
    #: deterministic metric rollups (telemetry recorder + harness counters)
    rollups: Dict[str, float] = field(default_factory=dict)
    #: filled on export (never during timed runs — see :func:`git_revision`)
    git_rev: Optional[str] = None
    #: fair-share solver the run's flow network used
    #: ("incremental" / "vectorized" / "slowpath"); defaulted so manifests
    #: recorded before the field existed still load
    solver_mode: str = "incremental"
    #: True when the point was served by the closed-form fast path of
    #: :mod:`repro.sim.analytic` instead of the DES
    analytic: bool = False
    #: network backend the machine ran on; defaulted so manifests recorded
    #: before the pluggable-backend layer existed still load
    network: str = "torus"

    @property
    def spec_key(self) -> str:
        """Stable identity used to pair a run with its committed baseline.

        Torus keys keep their historical shape (no network segment) so
        committed baselines stay valid; non-torus runs get a
        ``net-<backend>`` segment.
        """
        dims = "x".join(str(d) for d in self.dims)
        net = "" if self.network == "torus" else f"/net-{self.network}"
        return (
            f"{self.family}/{self.algorithm}{net}/{dims}/{self.mode.lower()}"
            f"/x{self.x}/i{self.iters}"
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["dims"] = list(self.dims)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        data = dict(data)
        data["dims"] = tuple(data["dims"])
        return cls(**data)

    def stamped(self) -> "RunManifest":
        """A copy with ``git_rev`` resolved (for export paths only)."""
        clone = RunManifest(**{**asdict(self), "dims": self.dims})
        clone.git_rev = git_revision()
        return clone


# -- campaign manifests (sweep farm) -------------------------------------

def spec_fingerprint(task: str, specs: Sequence[dict]) -> str:
    """A stable digest of a campaign: the task name plus every point spec.

    Canonical JSON (sorted keys, no whitespace; tuples serialize as
    lists) hashed with SHA-256, truncated to 16 hex chars.  Two
    campaigns share a fingerprint iff a worker would compute the same
    points — which is exactly the key the farm's progress journal needs
    to decide whether journaled completions belong to a submitted
    campaign.
    """
    canonical = json.dumps(
        [task, list(specs)], sort_keys=True, separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class CampaignManifest:
    """Identity of one sweep-farm campaign: what would run, under what code.

    The farm's progress journal is keyed by this manifest — a resumed
    server only reuses journaled completions whose campaign fingerprint
    matches, and a ``git_rev`` mismatch between the journal and the
    resuming server is surfaced as a warning (results recorded by
    different code may not be byte-identical).
    """

    task: str
    nspecs: int
    spec_hash: str
    git_rev: str = "unknown"
    created_at: str = ""

    @classmethod
    def build(cls, task: str, specs: Sequence[dict]) -> "CampaignManifest":
        return cls(
            task=task,
            nspecs=len(specs),
            spec_hash=spec_fingerprint(task, specs),
            git_rev=git_revision(),
            created_at=time.strftime("%Y-%m-%d %H:%M:%S"),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignManifest":
        return cls(**data)


# -- baseline files ------------------------------------------------------

#: default relative tolerance of the regression gates (±10 %)
DEFAULT_TOLERANCE = 0.10


def save_baseline(path: str, manifests: Sequence[RunManifest],
                  tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Write (or extend) a baseline file keyed by each manifest's spec."""
    document = load_baseline(path)
    document["tolerance"] = tolerance
    for manifest in manifests:
        document["manifests"][manifest.spec_key] = (
            manifest.stamped().to_dict()
        )
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document


def load_baseline(path: str) -> dict:
    """Load a baseline document (``{tolerance, manifests: {key: dict}}``)."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        document = {}
    document.setdefault("tolerance", DEFAULT_TOLERANCE)
    document.setdefault("manifests", {})
    return document


def _relative_drift(current: float, baseline: float) -> float:
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return abs(current - baseline) / abs(baseline)


def compare_manifests(current: RunManifest, baseline: RunManifest,
                      tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Drift lines ("metric: base -> now (+x%)"); empty when within gate.

    Identity fields must match exactly; ``elapsed_us`` and every rollup
    *shared by both* manifests must stay within the relative tolerance.
    Rollups present on only one side are reported too — a metric that
    disappears is exactly the silent regression the gate exists to catch.
    """
    drifts: List[str] = []
    for fld in ("family", "algorithm", "network", "dims", "mode", "ppn",
                "nprocs", "x", "iters"):
        mine, theirs = getattr(current, fld), getattr(baseline, fld)
        if mine != theirs:
            drifts.append(f"{fld}: baseline {theirs!r} != current {mine!r}")
    if drifts:
        return drifts

    def check(metric: str, now: float, base: float) -> None:
        drift = _relative_drift(now, base)
        if drift > tolerance:
            drifts.append(
                f"{metric}: baseline {base:.6g} -> current {now:.6g} "
                f"({drift:+.1%} > ±{tolerance:.0%})"
            )

    check("elapsed_us", current.elapsed_us, baseline.elapsed_us)
    shared = set(current.rollups) & set(baseline.rollups)
    for metric in sorted(shared):
        check(f"rollups.{metric}", current.rollups[metric],
              baseline.rollups[metric])
    for metric in sorted(set(baseline.rollups) - set(current.rollups)):
        drifts.append(f"rollups.{metric}: present in baseline, missing now")
    for metric in sorted(set(current.rollups) - set(baseline.rollups)):
        drifts.append(f"rollups.{metric}: new metric absent from baseline")
    return drifts


def compare_with_baseline_file(
    current: RunManifest, path: str,
    tolerance: Optional[float] = None,
) -> List[str]:
    """Gate one fresh manifest against a committed baseline file."""
    document = load_baseline(path)
    tol = tolerance if tolerance is not None else document["tolerance"]
    entry = document["manifests"].get(current.spec_key)
    if entry is None:
        known = sorted(document["manifests"])
        return [
            f"no baseline for {current.spec_key!r} in {path} "
            f"(known: {known or 'none'})"
        ]
    return compare_manifests(current, RunManifest.from_dict(entry), tol)


def bench_entry_solver(entry: dict) -> str:
    """The solver configuration a ``BENCH_core.json`` entry ran under.

    Modern entries record it directly (``"solver"``, with ``"+analytic"``
    appended when the fast path was enabled); entries written before the
    field existed are derived from the historical ``"slowpath"`` flag —
    the only solver knob that existed then (the vectorized kernel
    postdates every such entry).
    """
    solver = entry.get("solver")
    if solver is not None:
        return solver
    return "slowpath" if entry.get("slowpath") else "incremental"


#: synthetic sweep name used when a label narrows to one sweep — both
#: sides of the comparison get it, so differently-named sweeps of the
#: same points (the serve entry's cold/warm/memo tiers) compare pointwise
_SWEEP_VIEW = "<sweep>"


def _bench_view(entries: dict, label: str) -> Tuple[Optional[dict],
                                                    Optional[str]]:
    """Resolve a gate label into a comparable entry (or an error string).

    A plain label names a whole entry.  ``entry:sweep`` narrows to one
    sweep of an entry, re-keyed under a synthetic common name — this is
    how the serve benchmark gates its tiers against each other
    (``--base serve:cold --new serve:memo``): same points, different
    sweep names, recorded in one entry.  A sweep view's solver comes
    from the sweep record itself (``"+analytic"`` appended when the fast
    path served points there), so e.g. ``serve:analytic`` still refuses
    to silently compare against a DES tier.
    """
    if label in entries:
        return entries[label], None
    entry_label, sep, sweep = label.partition(":")
    if sep and entry_label in entries:
        entry = entries[entry_label]
        record = entry.get("sweeps", {}).get(sweep)
        if record is None:
            return None, (
                f"entry {entry_label!r} has no sweep {sweep!r} "
                f"(have: {sorted(entry.get('sweeps', {})) or 'none'})"
            )
        solver = record.get("solver") or bench_entry_solver(entry)
        if record.get("analytic_hits"):
            solver += "+analytic"
        view = {key: value for key, value in entry.items()
                if key != "sweeps"}
        view["solver"] = solver
        view["sweeps"] = {_SWEEP_VIEW: record}
        return view, None
    return None, (
        f"BENCH entry {label!r} missing (have: {sorted(entries) or 'none'})"
    )


def compare_bench(bench: dict, base_label: str, new_label: str,
                  tolerance: float = DEFAULT_TOLERANCE,
                  allow_cross_solver: bool = False) -> List[str]:
    """Tolerance-gate two labelled ``BENCH_core.json`` entries.

    Compares the *simulated* microseconds of every shared sweep point
    (wall-clock seconds are host noise and are never gated).

    A label is either an entry name or ``entry:sweep`` — the latter
    narrows the gate to one sweep, letting two sweeps *of the same
    entry* be compared pointwise (see :func:`_bench_view`; the serve
    benchmark's ``serve:cold`` vs ``serve:memo`` bit-identity gate runs
    through this with ``tolerance=0``).

    Entries recorded under different solver configurations (incremental
    vs vectorized vs slowpath, analytic fast path on or off) are refused
    by default: a drift between them would be attributed to the code under
    test when it may belong to the solver switch.  Deliberate cross-solver
    gates — e.g. asserting the vectorized kernel is bit-identical to the
    incremental baseline — pass ``allow_cross_solver=True``.
    """
    entries = bench.get("entries", {})
    drifts: List[str] = []
    views = {}
    for label in (base_label, new_label):
        view, error = _bench_view(entries, label)
        if error is not None:
            drifts.append(error)
        else:
            views[label] = view
    if drifts:
        return drifts
    base, new = views[base_label], views[new_label]
    if base.get("smoke") != new.get("smoke"):
        return [
            f"entries {base_label!r}/{new_label!r} recorded at different "
            "sizes (smoke vs full suite); not comparable"
        ]
    base_solver = bench_entry_solver(base)
    new_solver = bench_entry_solver(new)
    if base_solver != new_solver and not allow_cross_solver:
        return [
            f"entries {base_label!r}/{new_label!r} recorded under "
            f"different solvers ({base_solver} vs {new_solver}); pass "
            "--allow-cross-solver to compare anyway"
        ]
    for sweep, record in base.get("sweeps", {}).items():
        other = new.get("sweeps", {}).get(sweep)
        if other is None:
            drifts.append(f"sweep {sweep!r}: present in {base_label!r} only")
            continue
        theirs = {p["x"]: p["elapsed_us"] for p in other.get("points", [])}
        for point in record.get("points", []):
            x = point["x"]
            if x not in theirs:
                drifts.append(f"{sweep} x={x}: missing from {new_label!r}")
                continue
            drift = _relative_drift(theirs[x], point["elapsed_us"])
            if drift > tolerance:
                drifts.append(
                    f"{sweep} x={x}: elapsed_us {point['elapsed_us']:.6g} "
                    f"-> {theirs[x]:.6g} ({drift:+.1%} > ±{tolerance:.0%})"
                )
    return drifts
