"""The Fig-5 microbenchmark harness.

The paper measures collectives with::

    for (i = 0; i < ITERS; i++)
        MPI_Barrier(comm);
        start = MPI_Wtime();
        MPI_Bcast(...);
        elapsed_time += (MPI_Wtime() - start);
    elapsed_time /= ITERS;

We reproduce that loop in simulation: every rank's coroutine barriers, runs
its part of the collective, and records its elapsed simulated time.  The
per-iteration elapsed time is the maximum over ranks (the time at which the
operation completed machine-wide); the reported number is the mean over
iterations, just like the pseudo-code.

Window services (shared-address mapping caches) persist across iterations,
so with caching enabled only the first iteration pays mapping system calls
— the behaviour Figure 8's "caching" series measures.

Steady-state short-circuit
--------------------------

The simulation is deterministic, so once the transient (window mapping
on iteration 0, cache warm-up) has passed, every remaining iteration
produces *bit-identical* per-rank times.  ``_measure`` detects this — two
consecutive iterations with exactly equal per-rank time vectors — stops
simulating, and fills the remaining rows with copies of the steady
iteration.  The returned matrix is bit-identical to simulating all
``ITERS`` iterations, at a fraction of the wall-clock cost.

The detection is exact equality, so it is inherently safe under injected
jitter or mid-run degradation: perturbed iterations never compare equal
and the full loop runs.  It is *not* safe when the caller mutates the
machine from outside between iterations in a way that happens to first
bite on a later iteration; pass ``steady_state=False`` (the opt-out on
every ``run_*``) in that case.  ``verify=True`` also disables it by
default so the payload actually travels through every iteration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.collectives.base import BcastInvocation, CollectiveResult
from repro.collectives.registry import (
    allgather_algorithm,
    allreduce_algorithm,
    alltoall_algorithm,
    barrier_algorithm,
    bcast_algorithm,
    gather_algorithm,
    reduce_algorithm,
    scatter_algorithm,
)
from repro.hardware.machine import Machine
from repro.kernel.windows import ProcessWindows


def _measure(
    machine: Machine,
    make_invocation: Callable[[int], object],
    iters: int,
    verify: bool,
    steady_state: Optional[bool] = None,
) -> List[List[float]]:
    """Run the Fig-5 loop; returns per-iteration, per-rank elapsed times.

    With ``steady_state`` the loop stops as soon as two consecutive
    iterations produce exactly equal per-rank time vectors and the
    remaining rows are filled with copies of the steady iteration (see
    module docstring); the returned matrix is bit-identical either way.
    ``None`` (the default) enables it exactly when ``verify`` is off.
    """
    if steady_state is None:
        steady_state = not verify
    engine = machine.engine
    barrier = machine.make_barrier()
    invocations: Dict[int, object] = {}
    windows_by_rank: Dict[int, ProcessWindows] = {}
    nprocs = machine.nprocs
    times: List[List[float]] = [[0.0] * nprocs for _ in range(iters)]
    # Shared steady-state detector: ``left`` counts ranks yet to finish
    # the current iteration; the last finisher compares the completed row
    # against the previous one and arms ``stop_after``.  ``rebased`` is
    # the iteration whose clock rebase has already run.
    state = {"left": nprocs, "stop_after": None, "rebased": -1}

    def get_invocation(iteration: int):
        inv = invocations.get(iteration)
        if inv is None:
            inv = make_invocation(iteration)
            inv.install_windows(windows_by_rank)
            invocations[iteration] = inv
        return inv

    # Build iteration 0 eagerly so configuration errors (wrong mode, bad
    # root) surface as plain exceptions instead of simulation failures.
    get_invocation(0)

    def rank_loop(rank: int):
        for iteration in range(iters):
            yield barrier.wait()
            # The last rank of iteration k decrements ``left`` *before*
            # arriving at this barrier, so when the barrier releases, all
            # ranks agree on whether steady state was just detected and
            # break together (every rank consumes the same barrier count).
            if state["stop_after"] is not None:
                break
            # First rank out of the barrier resets the clock origin, so
            # every iteration starts at exactly t=0 and warm iterations
            # repeat the exact same float arithmetic (bit-identical
            # rows — which is also what makes the steady-state detection
            # below sound rather than merely likely).
            if state["rebased"] != iteration:
                state["rebased"] = iteration
                machine.rebase_time()
            inv = get_invocation(iteration)
            start = engine.now
            yield from inv.proc(rank)
            times[iteration][rank] = engine.now - start
            state["left"] -= 1
            if state["left"] == 0:
                state["left"] = nprocs
                if (
                    steady_state
                    and iteration >= 1
                    and times[iteration] == times[iteration - 1]
                ):
                    state["stop_after"] = iteration

    procs = [
        machine.spawn(rank_loop(rank), name=f"mpi.r{rank}")
        for rank in range(nprocs)
    ]
    engine.run_until_processes_finish(procs)
    stop_after = state["stop_after"]
    if stop_after is not None:
        steady = times[stop_after]
        for iteration in range(stop_after + 1, iters):
            times[iteration] = list(steady)
    if verify:
        for inv in invocations.values():
            inv.verify()
    return times


def run_bcast(
    machine: Machine,
    algorithm: Union[str, type],
    nbytes: int,
    root: int = 0,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure ``MPI_Bcast`` with the given algorithm on ``machine``.

    ``verify=True`` carries a pseudo-random payload through the simulated
    machine and asserts every rank received it bit-exactly (slower; meant
    for tests and small configurations).
    """
    cls = bcast_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    payload = None
    if verify:
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
    machine.set_working_set(_bcast_working_set(machine, nbytes))

    def make_invocation(_iteration: int) -> BcastInvocation:
        return cls(
            machine,
            root,
            nbytes,
            payload=payload,
            window_caching=window_caching,
        )

    times = _measure(machine, make_invocation, iters, verify, steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=nbytes,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def run_allreduce(
    machine: Machine,
    algorithm: Union[str, type],
    count: int,
    root: int = 0,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure ``MPI_Allreduce`` (sum of ``count`` doubles) on ``machine``."""
    cls = (
        allreduce_algorithm(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )
    values = None
    if verify:
        rng = np.random.default_rng(seed)
        # Small integers stored as doubles: bit-exact under reordering.
        values = rng.integers(0, 16, size=(machine.nprocs, count)).astype(
            np.float64
        )
    nbytes = count * 8
    machine.set_working_set(_allreduce_working_set(machine, nbytes))

    def make_invocation(_iteration: int):
        return cls(
            machine,
            count,
            values=values,
            window_caching=window_caching,
        )

    times = _measure(machine, make_invocation, iters, verify, steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=nbytes,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def run_allgather(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Allgather`` with per-rank blocks of ``block_bytes``."""
    cls = (
        allgather_algorithm(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )
    blocks = None
    if verify:
        rng = np.random.default_rng(seed)
        blocks = rng.integers(
            0, 256, size=(machine.nprocs, block_bytes), dtype=np.uint8
        )
    nbytes = block_bytes * machine.nprocs
    # Every rank's assembled buffer is hot on every node.
    machine.set_working_set(nbytes * machine.ppn)

    def make_invocation(_iteration: int):
        return cls(
            machine,
            block_bytes,
            blocks=blocks,
            window_caching=window_caching,
        )

    times = _measure(machine, make_invocation, iters, verify, steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=nbytes,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def run_alltoall(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Alltoall`` with per-pair blocks of ``block_bytes``."""
    cls = (
        alltoall_algorithm(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )
    blocks = None
    if verify:
        rng = np.random.default_rng(seed)
        blocks = rng.integers(
            0, 256,
            size=(machine.nprocs, machine.nprocs, block_bytes),
            dtype=np.uint8,
        )
    # Per-rank volume received (the usual alltoall reporting convention).
    nbytes = block_bytes * machine.nprocs
    machine.set_working_set(2 * nbytes * machine.ppn)

    def make_invocation(_iteration: int):
        return cls(
            machine, block_bytes, blocks=blocks,
            window_caching=window_caching,
        )

    times = _measure(machine, make_invocation, iters, verify, steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=nbytes,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def run_barrier(
    machine: Machine,
    algorithm: Union[str, type] = "barrier-gi",
    iters: int = 1,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Barrier`` (latency in µs; bandwidth is meaningless)."""
    cls = (
        barrier_algorithm(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )

    def make_invocation(_iteration: int):
        return cls(machine)

    times = _measure(machine, make_invocation, iters, verify=False,
                     steady_state=steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=0,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def run_scatter(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Scatter`` (root 0) with per-rank blocks."""
    cls = (
        scatter_algorithm(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )
    blocks = None
    if verify:
        rng = np.random.default_rng(seed)
        blocks = rng.integers(
            0, 256, size=(machine.nprocs, block_bytes), dtype=np.uint8
        )
    nbytes = block_bytes * machine.nprocs
    machine.set_working_set(block_bytes * machine.ppn)

    def make_invocation(_iteration: int):
        return cls(
            machine, block_bytes, blocks=blocks,
            window_caching=window_caching,
        )

    times = _measure(machine, make_invocation, iters, verify, steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=nbytes,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def run_reduce(
    machine: Machine,
    algorithm: Union[str, type],
    count: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Reduce`` (sum of ``count`` doubles to rank 0)."""
    cls = (
        reduce_algorithm(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )
    values = None
    if verify:
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 16, size=(machine.nprocs, count)).astype(
            np.float64
        )
    nbytes = count * 8
    machine.set_working_set(2 * nbytes * machine.ppn)

    def make_invocation(_iteration: int):
        return cls(
            machine, count, values=values, window_caching=window_caching
        )

    times = _measure(machine, make_invocation, iters, verify, steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=nbytes,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def run_gather(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Gather`` (root = rank 0) with per-rank blocks."""
    cls = (
        gather_algorithm(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )
    blocks = None
    if verify:
        rng = np.random.default_rng(seed)
        blocks = rng.integers(
            0, 256, size=(machine.nprocs, block_bytes), dtype=np.uint8
        )
    nbytes = block_bytes * machine.nprocs
    machine.set_working_set(block_bytes * machine.ppn)

    def make_invocation(_iteration: int):
        return cls(
            machine,
            block_bytes,
            blocks=blocks,
            window_caching=window_caching,
        )

    times = _measure(machine, make_invocation, iters, verify, steady_state)
    per_iter = [max(row) for row in times]
    return CollectiveResult(
        algorithm=cls.name,
        nbytes=nbytes,
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
    )


def _bcast_working_set(machine: Machine, nbytes: int) -> int:
    """Node-local hot bytes during a broadcast: the master's buffer plus one
    destination buffer per peer process."""
    return nbytes * machine.ppn


def _allreduce_working_set(machine: Machine, nbytes: int) -> int:
    """Node-local hot bytes during an allreduce: every local process's
    send and receive partitions are touched."""
    return 2 * nbytes * machine.ppn
