"""The Fig-5 microbenchmark harness.

The paper measures collectives with::

    for (i = 0; i < ITERS; i++)
        MPI_Barrier(comm);
        start = MPI_Wtime();
        MPI_Bcast(...);
        elapsed_time += (MPI_Wtime() - start);
    elapsed_time /= ITERS;

We reproduce that loop in simulation: every rank's coroutine barriers, runs
its part of the collective, and records its elapsed simulated time.  The
per-iteration elapsed time is the maximum over ranks (the time at which the
operation completed machine-wide); the reported number is the mean over
iterations, just like the pseudo-code.

One loop, many collectives
--------------------------

Every collective family is measured by the same driver,
:func:`run_collective`; what differs per family — how the verification
payload is built, how the invocation constructor is spelled, what the
reported byte count and the node-local working set are — is captured in a
small :class:`FamilySpec` adapter, one per family in :data:`FAMILY_SPECS`.
The historical per-family entry points (``run_bcast``, ``run_allreduce``,
...) survive as thin wrappers.

Window services (shared-address mapping caches) persist across iterations
through an :class:`~repro.collectives.base.InvocationSession`, so with
caching enabled only the first iteration pays mapping system calls — the
behaviour Figure 8's "caching" series measures.

Steady-state short-circuit
--------------------------

The simulation is deterministic, so once the transient (window mapping
on iteration 0, cache warm-up) has passed, every remaining iteration
produces *bit-identical* per-rank times.  ``_measure`` detects this — two
consecutive iterations with exactly equal per-rank time vectors — stops
simulating, and fills the remaining rows with copies of the steady
iteration.  The returned matrix is bit-identical to simulating all
``ITERS`` iterations, at a fraction of the wall-clock cost.

The detection is exact equality, so it is inherently safe under injected
jitter or mid-run degradation: perturbed iterations never compare equal
and the full loop runs.  It is *not* safe when the caller mutates the
machine from outside between iterations in a way that happens to first
bite on a later iteration; pass ``steady_state=False`` (the opt-out on
every entry point) in that case.  ``verify=True`` also disables it by
default so the payload actually travels through every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.collectives.base import CollectiveResult, InvocationBase
from repro.collectives.registry import get_algorithm, select_protocol
from repro.hardware.network import UnsupportedTopologyError
from repro.hardware.machine import Machine
from repro.sim.config import analytic_enabled
from repro.sim.engine import TransientFaultError
from repro.telemetry.manifest import RunManifest


def _measure(
    machine: Machine,
    make_invocation: Callable[[int], object],
    iters: int,
    verify: bool,
    steady_state: Optional[bool] = None,
    deadline_us: Optional[float] = None,
) -> List[List[float]]:
    """Run the Fig-5 loop; returns per-iteration, per-rank elapsed times.

    With ``steady_state`` the loop stops as soon as two consecutive
    iterations produce exactly equal per-rank time vectors and the
    remaining rows are filled with copies of the steady iteration (see
    module docstring); the returned matrix is bit-identical either way.
    ``None`` (the default) enables it exactly when ``verify`` is off.

    ``deadline_us`` turns the loop into a failure detector for injected
    faults: the engine stops once the clock passes the deadline, and any
    rank still unfinished raises :class:`TransientFaultError` — catching
    stalls and deadlocks without per-wait timeouts.  Because the harness
    rebases the clock at each iteration barrier, the deadline effectively
    bounds one iteration's continuous simulated time, not the whole loop.
    """
    if steady_state is None:
        steady_state = not verify
    engine = machine.engine
    barrier = machine.make_barrier()
    invocations: Dict[int, object] = {}
    session = InvocationBase.session()
    nprocs = machine.nprocs
    times: List[List[float]] = [[0.0] * nprocs for _ in range(iters)]
    # Shared steady-state detector: ``left`` counts ranks yet to finish
    # the current iteration; the last finisher compares the completed row
    # against the previous one and arms ``stop_after``.  ``rebased`` is
    # the iteration whose clock rebase has already run.
    state = {"left": nprocs, "stop_after": None, "rebased": -1}

    def get_invocation(iteration: int):
        inv = invocations.get(iteration)
        if inv is None:
            inv = session.adopt(make_invocation(iteration))
            invocations[iteration] = inv
        return inv

    # Build iteration 0 eagerly so configuration errors (wrong mode, bad
    # root) surface as plain exceptions instead of simulation failures.
    get_invocation(0)

    def rank_loop(rank: int):
        for iteration in range(iters):
            yield barrier.wait()
            # The last rank of iteration k decrements ``left`` *before*
            # arriving at this barrier, so when the barrier releases, all
            # ranks agree on whether steady state was just detected and
            # break together (every rank consumes the same barrier count).
            if state["stop_after"] is not None:
                break
            # First rank out of the barrier resets the clock origin, so
            # every iteration starts at exactly t=0 and warm iterations
            # repeat the exact same float arithmetic (bit-identical
            # rows — which is also what makes the steady-state detection
            # below sound rather than merely likely).
            if state["rebased"] != iteration:
                state["rebased"] = iteration
                machine.rebase_time()
            inv = get_invocation(iteration)
            start = engine.now
            yield from inv.proc(rank)
            times[iteration][rank] = engine.now - start
            state["left"] -= 1
            if state["left"] == 0:
                state["left"] = nprocs
                if (
                    steady_state
                    and iteration >= 1
                    and times[iteration] == times[iteration - 1]
                ):
                    state["stop_after"] = iteration

    procs = [
        machine.spawn(rank_loop(rank), name=f"mpi.r{rank}")
        for rank in range(nprocs)
    ]
    if deadline_us is None:
        engine.run_until_processes_finish(procs)
    else:
        engine.run(until=deadline_us)
        stuck = [p for p in procs if not p.finished]
        if stuck:
            names = ", ".join(p.name for p in stuck[:8])
            raise TransientFaultError(
                f"collective missed its {deadline_us:.0f} us deadline: "
                f"{len(stuck)} rank(s) unfinished: {names}"
            )
    stop_after = state["stop_after"]
    if stop_after is not None:
        steady = times[stop_after]
        for iteration in range(stop_after + 1, iters):
            times[iteration] = list(steady)
    if verify:
        for inv in invocations.values():
            inv.verify()
    return times


# -- family adapters ----------------------------------------------------

def _bcast_payload(machine: Machine, x: int, rng) -> np.ndarray:
    return rng.integers(0, 256, size=x, dtype=np.uint8)


def _doubles_payload(machine: Machine, x: int, rng) -> np.ndarray:
    # Small integers stored as doubles: bit-exact under reordering.
    return rng.integers(0, 16, size=(machine.nprocs, x)).astype(np.float64)


def _blocks_payload(machine: Machine, x: int, rng) -> np.ndarray:
    return rng.integers(0, 256, size=(machine.nprocs, x), dtype=np.uint8)


def _pairwise_payload(machine: Machine, x: int, rng) -> np.ndarray:
    return rng.integers(
        0, 256, size=(machine.nprocs, machine.nprocs, x), dtype=np.uint8
    )


def _build_root_bytes(cls, machine, x, payload, root, window_caching):
    return cls(machine, root, x, payload=payload,
               window_caching=window_caching)


def _build_values(cls, machine, x, payload, root, window_caching):
    return cls(machine, x, values=payload, window_caching=window_caching)


def _build_blocks(cls, machine, x, payload, root, window_caching):
    return cls(machine, x, blocks=payload, window_caching=window_caching)


def _build_plain(cls, machine, x, payload, root, window_caching):
    return cls(machine)


@dataclass(frozen=True)
class FamilySpec:
    """How one collective family plugs into the generic Fig-5 driver.

    ``x`` is the family's natural size argument (message bytes for bcast,
    element count for the reductions, per-rank/per-pair block bytes for
    the block collectives, ignored for barrier).
    """

    family: str
    #: invocation constructor adapter
    build: Callable[..., object]
    #: reported CollectiveResult.nbytes for a given x
    nbytes: Callable[[Machine, int], int]
    #: node-local hot bytes to install before measuring (None: skip)
    working_set: Optional[Callable[[Machine, int], int]] = None
    #: verification payload builder (None: family cannot carry data)
    payload: Optional[Callable[[Machine, int, object], np.ndarray]] = None
    #: byte size fed to the protocol-selection table for algorithm="auto"
    select_nbytes: Optional[Callable[[Machine, int], int]] = None


#: the adapter table: every family the harness can measure
FAMILY_SPECS: Dict[str, FamilySpec] = {
    # The master's buffer plus one destination buffer per peer process is
    # hot on every node.
    "bcast": FamilySpec(
        family="bcast",
        build=_build_root_bytes,
        nbytes=lambda machine, x: x,
        working_set=lambda machine, x: x * machine.ppn,
        payload=_bcast_payload,
        select_nbytes=lambda machine, x: x,
    ),
    # Every local process's send and receive partitions are touched.
    "allreduce": FamilySpec(
        family="allreduce",
        build=_build_values,
        nbytes=lambda machine, x: x * 8,
        working_set=lambda machine, x: 2 * x * 8 * machine.ppn,
        payload=_doubles_payload,
        select_nbytes=lambda machine, x: x * 8,
    ),
    "reduce": FamilySpec(
        family="reduce",
        build=_build_values,
        nbytes=lambda machine, x: x * 8,
        working_set=lambda machine, x: 2 * x * 8 * machine.ppn,
        payload=_doubles_payload,
        select_nbytes=lambda machine, x: x * 8,
    ),
    # Every rank's assembled buffer is hot on every node.
    "allgather": FamilySpec(
        family="allgather",
        build=_build_blocks,
        nbytes=lambda machine, x: x * machine.nprocs,
        working_set=lambda machine, x: x * machine.nprocs * machine.ppn,
        payload=_blocks_payload,
        # Selection is by the per-rank block size, not the total volume.
        select_nbytes=lambda machine, x: x,
    ),
    # Per-rank volume received (the usual alltoall reporting convention).
    "alltoall": FamilySpec(
        family="alltoall",
        build=_build_blocks,
        nbytes=lambda machine, x: x * machine.nprocs,
        working_set=lambda machine, x: 2 * x * machine.nprocs * machine.ppn,
        payload=_pairwise_payload,
    ),
    "gather": FamilySpec(
        family="gather",
        build=_build_blocks,
        nbytes=lambda machine, x: x * machine.nprocs,
        working_set=lambda machine, x: x * machine.ppn,
        payload=_blocks_payload,
    ),
    "scatter": FamilySpec(
        family="scatter",
        build=_build_blocks,
        nbytes=lambda machine, x: x * machine.nprocs,
        working_set=lambda machine, x: x * machine.ppn,
        payload=_blocks_payload,
    ),
    # A barrier moves no payload; bandwidth is meaningless.
    "barrier": FamilySpec(
        family="barrier",
        build=_build_plain,
        nbytes=lambda machine, x: 0,
    ),
}


def run_collective(
    machine: Machine,
    family: str,
    algorithm: Union[str, type],
    x: int = 0,
    *,
    root: int = 0,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
    deadline_us: Optional[float] = None,
    payload: Optional[np.ndarray] = None,
    analytic: Optional[bool] = None,
    working_set_override: Optional[int] = None,
) -> CollectiveResult:
    """Measure one collective of ``family`` with the Fig-5 loop.

    ``algorithm`` is a registry name, ``"auto"`` (resolved through the
    section-V selection table when the family has one), or an invocation
    class.  ``x`` is the family's natural size argument — see
    :class:`FamilySpec`.  ``verify=True`` carries a pseudo-random payload
    through the simulated machine and asserts every rank received the
    correct bytes (slower; meant for tests and small configurations).
    ``payload`` supplies that verification payload directly instead of
    generating it from ``seed`` — callers that retry the same collective
    (the chaos fallback ladder) build it once and reuse it across
    attempts, skipping an O(x) regeneration per attempt.
    ``deadline_us`` (see :func:`_measure`) makes a stalled run raise
    :class:`TransientFaultError` instead of hanging in simulated time.

    ``analytic`` opts this run into the closed-form steady-state fast
    path of :mod:`repro.sim.analytic` (None: follow ``REPRO_SIM_ANALYTIC``;
    default off).  It only ever engages when the algorithm registered a
    validated law *and* the run passes every fault-free-steady-state gate
    (:func:`repro.sim.analytic.gate_reason`) *and* the law covers this
    size; otherwise the DES runs exactly as before.  A served point is
    bit-equal across iterations by construction and matches the DES
    within the law's probe tolerance.

    ``working_set_override`` installs that working set (bytes) instead of
    the family's natural ``spec.working_set(machine, x)`` — the analytic
    calibrator uses it to pin anchor runs into the target size's memory
    regime.
    """
    if family not in FAMILY_SPECS:
        raise KeyError(
            f"unknown collective family {family!r}; "
            f"known: {sorted(FAMILY_SPECS)}"
        )
    spec = FAMILY_SPECS[family]
    if isinstance(algorithm, str):
        if algorithm == "auto":
            if spec.select_nbytes is None:
                raise KeyError(
                    f"family {family!r} has no auto-selection policy"
                )
            algorithm = select_protocol(
                family, spec.select_nbytes(machine, x), machine.ppn,
                network=machine.network.name,
            )
        cls = get_algorithm(family, algorithm)
    else:
        cls = algorithm
    wire = getattr(cls, "network", None)
    if wire is not None and not machine.network.supports_wire(wire):
        raise UnsupportedTopologyError(
            f"{family}/{cls.name} rides the {wire!r} wire, which the "
            f"{machine.network.name!r} backend does not provide "
            f"(supported: {list(machine.network.wires)})"
        )
    if not verify:
        if payload is not None:
            raise ValueError("payload requires verify=True")
    elif spec.payload is None:
        raise ValueError(
            f"family {family!r} carries no payload; verify is not "
            "supported"
        )
    elif payload is None:
        payload = spec.payload(machine, x, np.random.default_rng(seed))
    # Solver env knobs (REPRO_SIM_SLOWPATH / _VECTOR / _DEBUG) are re-read
    # at every entry, so a test or sweep can flip them between runs.
    machine.flownet.refresh_config()
    if working_set_override is not None:
        machine.set_working_set(working_set_override)
    elif spec.working_set is not None:
        machine.set_working_set(spec.working_set(machine, x))

    prediction = None
    if analytic_enabled(analytic):
        from repro.sim import analytic as analytic_mod

        info = getattr(cls, "capabilities", None)
        if analytic_mod.gate_reason(
            machine, info, verify=verify, payload=payload,
            deadline_us=deadline_us, steady_state=steady_state,
        ) is None:
            prediction = analytic_mod.predict(
                machine, family, info, x,
                root=root, window_caching=window_caching,
            )

    if prediction is not None:
        per_iter = (
            [prediction.cold_us] + [prediction.warm_us] * (iters - 1)
        )
        retries = 0
    else:

        def make_invocation(_iteration: int):
            return spec.build(cls, machine, x, payload, root,
                              window_caching)

        retries_before = machine.faults.window_retries
        times = _measure(
            machine, make_invocation, iters, verify, steady_state,
            deadline_us,
        )
        per_iter = [max(row) for row in times]
        retries = machine.faults.window_retries - retries_before
    result = CollectiveResult(
        algorithm=cls.name,
        nbytes=spec.nbytes(machine, x),
        nprocs=machine.nprocs,
        elapsed_us=sum(per_iter) / len(per_iter),
        iterations_us=per_iter,
        retries=retries,
    )
    # Every measured run carries its manifest: identity + deterministic
    # metric rollups (no wall clock, no subprocess — see telemetry.manifest;
    # git_rev is stamped only at export time).
    recorder = machine.engine.telemetry
    result.manifest = RunManifest(
        family=family,
        algorithm=cls.name,
        dims=tuple(machine.network.dims),
        network=machine.network.name,
        mode=machine.mode.name,
        ppn=machine.ppn,
        nprocs=machine.nprocs,
        x=x,
        nbytes=result.nbytes,
        iters=iters,
        seed=seed,
        verify=verify,
        elapsed_us=result.elapsed_us,
        bandwidth_mbs=result.bandwidth_mbs,
        rollups=recorder.rollups() if recorder is not None else {},
        solver_mode=machine.flownet.solver_mode,
        analytic=prediction is not None,
    )
    return result


def build_payload(machine: Machine, family: str, x: int,
                  seed: int = 1234) -> np.ndarray:
    """The verification payload :func:`run_collective` would generate.

    Exposed so retrying callers (the chaos fallback ladder) can build the
    payload once and pass it to every attempt via ``payload=`` instead of
    regenerating ``x`` pseudo-random bytes per attempt.  Shapes depend
    only on the machine's geometry, so the payload is reusable across the
    fresh machines a retry loop builds.
    """
    spec = FAMILY_SPECS[family]
    if spec.payload is None:
        raise ValueError(f"family {family!r} carries no payload")
    return spec.payload(machine, x, np.random.default_rng(seed))


# -- per-family entry points (thin wrappers) ----------------------------

def run_bcast(
    machine: Machine,
    algorithm: Union[str, type],
    nbytes: int,
    root: int = 0,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure ``MPI_Bcast`` with the given algorithm on ``machine``."""
    return run_collective(
        machine, "bcast", algorithm, nbytes, root=root, iters=iters,
        verify=verify, window_caching=window_caching, seed=seed,
        steady_state=steady_state,
    )


def run_allreduce(
    machine: Machine,
    algorithm: Union[str, type],
    count: int,
    root: int = 0,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure ``MPI_Allreduce`` (sum of ``count`` doubles) on ``machine``."""
    return run_collective(
        machine, "allreduce", algorithm, count, iters=iters, verify=verify,
        window_caching=window_caching, seed=seed, steady_state=steady_state,
    )


def run_allgather(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Allgather`` with per-rank blocks of ``block_bytes``."""
    return run_collective(
        machine, "allgather", algorithm, block_bytes, iters=iters,
        verify=verify, window_caching=window_caching, seed=seed,
        steady_state=steady_state,
    )


def run_alltoall(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Alltoall`` with per-pair blocks of ``block_bytes``."""
    return run_collective(
        machine, "alltoall", algorithm, block_bytes, iters=iters,
        verify=verify, window_caching=window_caching, seed=seed,
        steady_state=steady_state,
    )


def run_barrier(
    machine: Machine,
    algorithm: Union[str, type] = "barrier-gi",
    iters: int = 1,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Barrier`` (latency in µs; bandwidth is meaningless)."""
    return run_collective(
        machine, "barrier", algorithm, iters=iters,
        steady_state=steady_state,
    )


def run_scatter(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Scatter`` (root 0) with per-rank blocks."""
    return run_collective(
        machine, "scatter", algorithm, block_bytes, iters=iters,
        verify=verify, window_caching=window_caching, seed=seed,
        steady_state=steady_state,
    )


def run_reduce(
    machine: Machine,
    algorithm: Union[str, type],
    count: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Reduce`` (sum of ``count`` doubles to rank 0)."""
    return run_collective(
        machine, "reduce", algorithm, count, iters=iters, verify=verify,
        window_caching=window_caching, seed=seed, steady_state=steady_state,
    )


def run_gather(
    machine: Machine,
    algorithm: Union[str, type],
    block_bytes: int,
    iters: int = 1,
    verify: bool = False,
    window_caching: bool = True,
    seed: int = 1234,
    steady_state: Optional[bool] = None,
) -> CollectiveResult:
    """Measure an ``MPI_Gather`` (root = rank 0) with per-rank blocks."""
    return run_collective(
        machine, "gather", algorithm, block_bytes, iters=iters,
        verify=verify, window_caching=window_caching, seed=seed,
        steady_state=steady_state,
    )
