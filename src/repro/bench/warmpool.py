"""Warm :class:`~repro.hardware.machine.Machine` pools: build once, reuse.

Constructing a machine — channels, memory ports, kernel state — is pure
overhead when a caller measures many independent points on the same
geometry.  The parallel executor's workers have always dodged it with a
per-process machine cache: build the machine on first use, then hand the
*same* machine back after :meth:`~repro.hardware.machine.Machine.rebase_time`,
which resets the clock origin so a reused machine replays the exact float
arithmetic of a fresh one (bit-identical results, covered by
``tests/test_parallel_executor.py`` and ``tests/test_serve.py``).

This module lifts that cache into a shared, bounded pool with two
consumers:

* the parallel executor's workers (:func:`repro.bench.parallel.warm_machine`
  delegates to a per-process pool), and
* the prediction service (:mod:`repro.serve`), whose warm tier is exactly
  this reuse pattern behind a long-running server.

A pool is **not** a free list: machines stay inside it while in use, and
a checkout of the same key hands back the same object after a rebase.
That matches both consumers — each runs one simulation at a time per
process (the serve executor is single-threaded by construction) — and
keeps the pool a plain LRU keyed on ``(dims, mode, wrap, network)`` with
bounded size: the least-recently-used geometry is evicted when the bound
is exceeded, so a long-running server cannot accumulate one simulated
machine per geometry it has ever been asked about.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Sequence, Tuple

from repro.hardware.machine import Machine, Mode

#: default geometry bound: plenty for a sweep, small enough that a
#: long-running server holds at most a handful of simulated machines
DEFAULT_MAX_MACHINES = 8


class WarmMachinePool:
    """A bounded LRU of reusable machines, keyed on geometry.

    :meth:`checkout` returns ``(machine, warm)`` — ``warm`` is True when
    the machine was reused (after ``rebase_time``) rather than built.
    Counters (`hits`/`misses`/`evictions`) make the pool's behaviour
    observable; :meth:`stats` snapshots them for the serve stats
    endpoint.
    """

    def __init__(self, max_machines: int = DEFAULT_MAX_MACHINES):
        if max_machines < 1:
            raise ValueError(
                f"max_machines must be >= 1, got {max_machines}"
            )
        self.max_machines = max_machines
        self._machines: "OrderedDict[Tuple, Machine]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(dims: Sequence[int], mode, wrap: bool,
             network: str) -> Tuple:
        mode_name = mode.name if isinstance(mode, Mode) else str(mode).upper()
        return (tuple(dims), mode_name, bool(wrap), network)

    def checkout(self, dims: Sequence[int], mode="QUAD",
                 wrap: bool = True,
                 network: str = "torus") -> Tuple[Machine, bool]:
        """A pristine machine of the given geometry, reused when possible.

        The first request per key builds the machine; later requests
        rebase its clock to the origin and hand the same object back —
        after :meth:`Machine.rebase_time` a reused machine replays
        bit-identical float arithmetic to a fresh one.
        """
        key = self._key(dims, mode, wrap, network)
        machine = self._machines.get(key)
        if machine is not None:
            self._machines.move_to_end(key)
            machine.rebase_time()
            self.hits += 1
            return machine, True
        machine = Machine(
            torus_dims=key[0], mode=Mode[key[1]], wrap=key[2],
            network=key[3],
        )
        self._machines[key] = machine
        self.misses += 1
        while len(self._machines) > self.max_machines:
            self._machines.popitem(last=False)
            self.evictions += 1
        return machine, False

    def occupancy(self) -> int:
        """Machines currently held (bounded by ``max_machines``)."""
        return len(self._machines)

    def clear(self) -> None:
        """Drop every pooled machine (tests; memory pressure)."""
        self._machines.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "machines": len(self._machines),
            "max_machines": self.max_machines,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
