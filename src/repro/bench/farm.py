"""Fault-tolerant distributed sweep farm: leased work-server + pull-workers.

:mod:`repro.bench.parallel` fans picklable point specs across *local*
processes; this module fans the very same specs across *hosts*, with
robustness as the headline property.  Three stdlib-only pieces
(``multiprocessing.connection`` over TCP — framing, pickling, and an
HMAC authkey handshake for free):

:class:`FarmServer` (``repro farm serve``)
    owns one campaign: the spec list, its chunking (shared with the
    local executor via :func:`~repro.bench.parallel.chunk_specs`), and
    an append-only fsynced **progress journal**.  Work is handed out as
    **chunk leases** with wall-clock deadlines; workers heartbeat to
    keep a lease alive.  An expired or worker-lost lease is re-queued
    under the chaos harness's
    :class:`~repro.hardware.fault_schedule.RetryPolicy` bounded
    exponential backoff (wall-clock seconds via
    :meth:`~repro.hardware.fault_schedule.RetryPolicy.backoff_s`); a
    chunk that exhausts its retry budget is **quarantined** as a poison
    chunk — its tracebacks preserved — instead of wedging the campaign.

:class:`FarmWorker` (``repro farm work``)
    a pull-worker: lease a chunk, compute it with the shared chunk
    runner (:func:`~repro.bench.parallel._run_chunk` — same crash
    isolation, same warm-machine cache), report completions.  A worker
    that cannot reach the server reconnects with bounded backoff, so it
    rides out a server restart; results it cannot deliver are simply
    recomputed when the lease expires.

:func:`farm_execute_points` (the driver behind ``--farm``)
    submits a campaign, polls, fetches, and merges **in point order** —
    the merged list is byte-identical to a serial
    :func:`~repro.bench.parallel.execute_points` run, verified by
    per-point digest.  If the server is unreachable at submit time it
    can degrade to the local executor (``local_fallback=True`` or
    ``REPRO_FARM_FALLBACK=1``).

Crash-resumable campaigns
-------------------------

Every completed point is appended to the journal as one fsynced JSON
line — ``{"kind": "point", "index": i, "digest": sha256(pickle),
"data": base64(pickle)}`` — under a header keyed by a
:class:`~repro.telemetry.manifest.CampaignManifest` (git rev + spec
hash).  ``repro farm serve --resume`` reloads the journal: journaled
points are **never re-run**, torn trailing records (a crash mid-write)
are detected by digest and dropped, and a driver that re-submits the
same campaign (same spec hash) attaches to the loaded state instead of
starting over.  Duplicate completions — a slow worker finishing a chunk
that was re-leased after its lease expired — are detected, digest-
verified against the journaled bytes (a mismatch is counted as a
determinism violation), and discarded.

Security note: the wire protocol is ``multiprocessing.connection``
pickle, and **unpickling is code execution** — the task-name allowlist
below only constrains honest peers; any peer holding the authkey can
run arbitrary code on every farm process it talks to.  The HMAC
authkey (``REPRO_FARM_AUTHKEY``) is therefore the *sole* trust
boundary, and its in-repo default (``"repro-farm"``) is public: the
server refuses to bind a non-loopback interface unless
``REPRO_FARM_AUTHKEY`` is explicitly set, and even then the farm
belongs on a trusted private segment — the authkey authenticates, it
does not encrypt.
"""

from __future__ import annotations

import base64
import hashlib
import heapq
import importlib
import json
import os
import pickle
import socket
import threading
import time
import uuid
from dataclasses import asdict, dataclass, field
from multiprocessing.connection import Client, Listener
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.bench.parallel import (
    _run_chunk,
    chunk_specs,
    merge_failures,
    resolve_jobs,
)
from repro.hardware.fault_schedule import RetryPolicy
from repro.telemetry.manifest import CampaignManifest
from repro.telemetry.runtime import (
    MetricsRegistry,
    default_registry,
    dump_flight_record,
    new_span_id,
    runtime_enabled,
    runtime_log,
    span_store,
)

#: shared-secret authkey for every farm connection
ENV_AUTHKEY = "REPRO_FARM_AUTHKEY"

#: default chunk size override for farm submissions (points per chunk)
ENV_FARM_CHUNK = "REPRO_FARM_CHUNK"

#: "1" lets a driver fall back to the local executor when no server answers
ENV_FARM_FALLBACK = "REPRO_FARM_FALLBACK"

#: pinned so worker- and server-side pickles of one result byte-compare
_PICKLE_PROTOCOL = 4


def pickle_digest(obj) -> str:
    """SHA-256 over the pinned-protocol pickle of ``obj``.

    The byte-identity currency of the distributed layers: the farm
    digests journaled results with it, and the prediction service
    (:mod:`repro.serve`) stamps every answer with it so a client can
    prove a memoized or warm-pool answer is bit-identical to a cold
    serial run.  The pickle protocol is pinned (see ``_PICKLE_PROTOCOL``)
    so digests computed by different processes of the same object
    byte-compare.
    """
    return hashlib.sha256(
        pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
    ).hexdigest()

#: a lease not heartbeated for this long is considered worker-lost
DEFAULT_LEASE_S = 30.0

#: chunk re-queue budget after lease expiry / worker-side point errors
#: (RetryPolicy reused outside the simulator clock: backoff_s seconds)
DEFAULT_CHUNK_RETRY = RetryPolicy(
    max_attempts=4, base_backoff_us=0.25e6, backoff_factor=2.0,
    max_backoff_us=4e6,
)

#: reconnect budget for workers and drivers when the server is away —
#: sized to ride out a server restart (~40 s of bounded backoff total)
DEFAULT_RECONNECT = RetryPolicy(
    max_attempts=12, base_backoff_us=0.2e6, backoff_factor=2.0,
    max_backoff_us=5e6,
)


class FarmError(RuntimeError):
    """A farm protocol violation (bad op, campaign mismatch, refused resume)."""


class FarmUnreachableError(FarmError):
    """The server did not answer within the reconnect policy's budget."""


def _authkey() -> bytes:
    return os.environ.get(ENV_AUTHKEY, "repro-farm").encode()


def _loopback(host: str) -> bool:
    """True when ``host`` can only be reached from this machine."""
    return host in ("localhost", "::1") or host.startswith("127.")


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``":port"``/``"port"``) to a socket address."""
    host, _, port = address.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError as exc:
        raise FarmError(
            f"farm address must look like host:port, got {address!r}"
        ) from exc


# -- task registry -------------------------------------------------------

#: farm-runnable tasks: name -> (module, attribute).  Workers only ever
#: execute names from this table (or in-process registrations below) —
#: the wire protocol cannot inject code.
_TASK_IMPORTS: Dict[str, Tuple[str, str]] = {
    "run_point": ("repro.bench.parallel", "run_point"),
    "run_point_timed": ("repro.bench.parallel", "run_point_timed"),
    "chaos_point": ("repro.bench.chaos", "chaos_point"),
}

_REGISTERED: Dict[str, Callable[[dict], object]] = {}


def register_task(name: str, task: Callable[[dict], object]) -> None:
    """Register an in-process task (tests, embedding apps).

    CLI workers run in fresh interpreters and resolve only the import
    table above; in-process registrations reach only workers running in
    this process (threaded test farms).
    """
    _REGISTERED[name] = task


def known_tasks() -> List[str]:
    return sorted(set(_REGISTERED) | set(_TASK_IMPORTS))


def resolve_task(name: str) -> Callable[[dict], object]:
    """The callable behind a task name; :class:`FarmError` if unregistered."""
    if name in _REGISTERED:
        return _REGISTERED[name]
    if name in _TASK_IMPORTS:
        module, attribute = _TASK_IMPORTS[name]
        task = getattr(importlib.import_module(module), attribute)
        _REGISTERED[name] = task
        return task
    raise FarmError(
        f"unknown farm task {name!r} (known: {known_tasks()})"
    )


def task_name(task: Callable[[dict], object]) -> str:
    """The registered name of a task callable; :class:`FarmError` if none."""
    for name, registered in _REGISTERED.items():
        if registered is task:
            return name
    for name, (module, attribute) in _TASK_IMPORTS.items():
        if (getattr(task, "__module__", None) == module
                and getattr(task, "__qualname__", None) == attribute):
            return name
    raise FarmError(
        f"task {task!r} is not farm-registered; add it to the allowlist or "
        f"call repro.bench.farm.register_task"
    )


# -- wire protocol -------------------------------------------------------

def rpc(address: str, op: str, *, timeout_s: float = 30.0,
        **payload) -> dict:
    """One request/response round trip: connect, send, receive, close.

    A connection per call keeps the protocol stateless — worker-lost
    detection is purely lease-deadline based, never tied to a TCP
    connection's fate — and makes a server restart invisible beyond one
    failed call.
    """
    with Client(parse_address(address), authkey=_authkey()) as conn:
        conn.send({"op": op, **payload})
        if not conn.poll(timeout_s):
            raise TimeoutError(f"farm op {op!r} timed out after {timeout_s}s")
        status, data = conn.recv()
    if status != "ok":
        raise FarmError(f"{op}: {data}")
    return data


#: errors that mean "the server is (temporarily) away", worth a retry
_TRANSIENT = (ConnectionError, EOFError, OSError, TimeoutError)


def rpc_retry(address: str, op: str, *,
              policy: RetryPolicy = DEFAULT_RECONNECT,
              **payload) -> dict:
    """:func:`rpc` with reconnect-on-failure under a bounded backoff budget."""
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return rpc(address, op, **payload)
        except _TRANSIENT as exc:
            last = exc
            if attempt < policy.max_attempts:
                time.sleep(policy.backoff_s(attempt))
    raise FarmUnreachableError(
        f"farm server {address} unreachable for op {op!r} after "
        f"{policy.max_attempts} attempts: {last!r}"
    ) from last


# -- progress journal ----------------------------------------------------

@dataclass
class JournalState:
    """What a journal replay recovered."""

    header: Optional[dict] = None
    #: index -> canonical pickled result bytes
    results: Dict[int, bytes] = field(default_factory=dict)
    #: index -> preserved worker traceback (quarantined points)
    failures: Dict[int, str] = field(default_factory=dict)
    #: workers that lost a lease at any point in the campaign's life
    lost_workers: Set[str] = field(default_factory=set)
    #: the driver's trace context, journaled with the campaign header so
    #: chunk spans keep their trace id across a server restart
    trace: Optional[dict] = None
    #: worker-reported chunk spans journaled alongside completions
    spans: List[dict] = field(default_factory=list)
    lease_expiries: int = 0
    resumes: int = 0
    torn_records: int = 0
    #: file offset just past the last fully-valid, newline-terminated
    #: record — everything beyond it is a torn tail (see ``repair``)
    valid_bytes: int = 0


class ProgressJournal:
    """Append-only fsynced JSONL of campaign progress.

    One line per event: a ``campaign`` header (manifest + specs + task),
    a ``point`` per completed point (digest + base64 pickled result), a
    ``quarantine`` per poisoned chunk, and a ``resume`` marker per
    server restart.  Appends are flushed *and fsynced* before the server
    acknowledges a completion, so a SIGKILLed server loses at most the
    line it was writing — which :meth:`load` detects (unparsable JSON or
    a digest mismatch) and drops, counting it in ``torn_records``.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    def open(self) -> None:
        if self._handle is not None:
            return
        # Never append onto a torn final line: a record concatenated to
        # a partial write becomes one unparsable line, and load() would
        # end every later replay at the merge point.  A trailing newline
        # keeps the torn fragment isolated as its own (dropped) line;
        # resumes additionally truncate it away first (see repair()).
        torn = False
        try:
            with open(self.path, "rb") as existing:
                existing.seek(-1, os.SEEK_END)
                torn = existing.read(1) != b"\n"
        except (OSError, ValueError):
            pass  # missing or empty file: nothing to isolate
        self._handle = open(self.path, "a", encoding="utf-8")
        if torn:
            self._handle.write("\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def repair(self, valid_bytes: int) -> None:
        """Truncate everything past the last fully-valid record.

        Called on resume, *before* the first append: a crash mid-write
        leaves a partial final line, and any record appended after it
        would otherwise postdate untrusted bytes.  ``valid_bytes`` comes
        from :attr:`JournalState.valid_bytes` of the replay that decided
        what to trust.
        """
        if self._handle is not None:
            raise FarmError("repair the journal before opening for append")
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size <= valid_bytes:
            return
        with open(self.path, "rb+") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def append(self, record: dict) -> None:
        self.open()
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    @staticmethod
    def load(path: str) -> JournalState:
        """Replay a journal, tolerating a torn tail.

        The first unparsable, digest-mismatched, or newline-less line
        ends the replay: appends are strictly ordered, so everything
        after a torn record postdates the crash that tore it and is
        untrusted.  (A final line without its newline is torn even when
        it parses — only ``record + "\\n"`` is ever written atomically,
        so a missing terminator means the write was cut short.)
        ``state.valid_bytes`` marks where the trusted prefix ends, for
        :meth:`repair`.
        """
        state = JournalState()
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            return state
        with handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    state.torn_records += 1
                    break
                if not line.strip():
                    state.valid_bytes += len(line)
                    continue
                try:
                    record = json.loads(line)
                    kind = record["kind"]
                    if kind == "campaign":
                        if state.header is None:
                            state.header = record
                            state.trace = record.get("trace")
                    elif kind == "span":
                        if isinstance(record.get("span"), dict):
                            state.spans.append(record["span"])
                    elif kind == "point":
                        data = base64.b64decode(record["data"])
                        if hashlib.sha256(data).hexdigest() != record["digest"]:
                            raise ValueError("digest mismatch")
                        index = int(record["index"])
                        state.results[index] = data
                        # A late honest completion beats an earlier
                        # quarantine verdict (mirrors _op_complete): an
                        # index must never sit in both maps, or resumed
                        # campaigns double-count coverage.
                        state.failures.pop(index, None)
                    elif kind == "quarantine":
                        for index in record["indices"]:
                            state.failures[int(index)] = record["traceback"]
                    elif kind == "expire":
                        state.lease_expiries += 1
                        state.lost_workers.add(record["worker"])
                    elif kind == "resume":
                        state.resumes += 1
                except (ValueError, KeyError, TypeError):
                    state.torn_records += 1
                    break
                state.valid_bytes += len(line)
        return state


# -- server --------------------------------------------------------------

@dataclass
class FarmStats:
    """Robustness rollups of one server's life (see ``repro farm status``)."""

    leases_issued: int = 0
    leases_expired: int = 0
    heartbeats: int = 0
    chunks_completed: int = 0
    chunks_retried: int = 0
    chunks_quarantined: int = 0
    points_completed: int = 0
    duplicate_completions: int = 0
    digest_mismatches: int = 0
    workers_lost: int = 0
    resumes: int = 0
    torn_records: int = 0


@dataclass
class _Lease:
    worker: str
    deadline: float


class FarmServer:
    """The leased work-server.  One campaign, one journal, many workers.

    Thread-per-connection over a ``multiprocessing.connection.Listener``;
    all campaign state lives under one lock (requests are tiny compared
    to the simulation work the farm exists to distribute).  Expired
    leases are reaped lazily on every lease/complete/status request —
    no timer thread, so a quiet server does nothing.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 journal_path: str,
                 lease_s: float = DEFAULT_LEASE_S,
                 chunk_retry: RetryPolicy = DEFAULT_CHUNK_RETRY,
                 chunk_size: Optional[int] = None,
                 resume: bool = False,
                 verbose: bool = False):
        self._host = host
        self._port = port
        self.journal_path = journal_path
        self.lease_s = lease_s
        self.chunk_retry = chunk_retry
        self.chunk_size = chunk_size
        self.verbose = verbose
        # --quiet maps to a warning-level logger: the historical
        # verbose-gated "[farm] ..." lines are info events, so quiet
        # servers stay quiet under every log mode.
        self._logger = runtime_log(
            "farm.server", prefix="farm",
            level="info" if verbose else "warning",
        )
        self.registry = MetricsRegistry()
        #: the submitting driver's trace context (journaled with the
        #: campaign header; lease grants chain chunk spans under it)
        self._trace: Optional[dict] = None
        #: worker-reported chunk spans (journaled; returned by fetch)
        self._spans: List[dict] = []

        self._lock = threading.RLock()
        self._listener: Optional[Listener] = None
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

        self.stats = FarmStats()
        self.manifest: Optional[CampaignManifest] = None
        self._specs: List[dict] = []
        self._task: Optional[str] = None
        self._chunks: Dict[int, List[Tuple[int, dict]]] = {}
        self._attempts: Dict[int, int] = {}
        self._ready: List[Tuple[float, int]] = []  # (ready_at, chunk_id)
        self._leases: Dict[int, _Lease] = {}
        self._results: Dict[int, bytes] = {}
        self._failures: Dict[int, str] = {}
        self._workers: Set[str] = set()
        self._lost_workers: Set[str] = set()
        self._journal = ProgressJournal(journal_path)

        state = ProgressJournal.load(journal_path)
        if state.header is not None and not resume:
            raise FarmError(
                f"journal {journal_path!r} already holds campaign "
                f"{state.header['manifest']['spec_hash']!r}; pass "
                f"--resume to continue it (or point at a fresh journal)"
            )
        if resume and state.header is not None:
            # Drop the torn tail before the resume marker is appended,
            # so every post-resume record stays replayable by a *second*
            # resume (a partial line must never prefix fresh appends).
            self._journal.repair(state.valid_bytes)
            self._load_state(state)

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self._host}:{self._port}"

    def start(self) -> None:
        """Bind and serve in background threads; returns once listening.

        Refuses a non-loopback bind under the default authkey: the wire
        protocol is pickle, so the authkey is the sole trust boundary
        (see the module docstring) and the in-repo default is public.
        """
        if not _loopback(self._host) and not os.environ.get(ENV_AUTHKEY):
            raise FarmError(
                f"refusing to bind {self._host!r} with the default "
                f"authkey: the farm protocol is pickle (unpickling is "
                f"code execution), so the {ENV_AUTHKEY} shared secret "
                f"is the only thing keeping arbitrary network peers "
                f"out.  Export {ENV_AUTHKEY} on the server and every "
                f"worker/driver, or bind 127.0.0.1."
            )
        self._listener = Listener(
            (self._host, self._port), authkey=_authkey()
        )
        self._port = self._listener.address[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="farm-accept", daemon=True
        )
        self._accept_thread.start()
        self._log(f"serving on {self.address} (journal {self.journal_path})")

    def serve_forever(self) -> None:
        """:meth:`start` then block until :meth:`stop` (or a signal)."""
        if self._listener is None:
            self.start()
        self._stop.wait()

    def stop(self) -> None:
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        self._journal.close()

    def __enter__(self) -> "FarmServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _log(self, message: str, event: str = "log", **fields) -> None:
        self._logger.info(event, message, legacy=True, **fields)

    # -- connection handling ---------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept()
            except Exception:
                if self._stop.is_set():
                    return
                # auth failure or a half-open connect: keep serving
                continue
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn) -> None:
        try:
            request = conn.recv()
            op = request.pop("op", None)
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                conn.send(("error", f"unknown op {op!r}"))
                return
            worker = request.get("worker")
            if worker:
                with self._lock:
                    self._workers.add(worker)
            try:
                conn.send(("ok", handler(**request)))
            except FarmError as exc:
                conn.send(("error", str(exc)))
        except (EOFError, OSError):
            pass  # client went away mid-request; nothing to answer
        except Exception as exc:  # defensive: never kill the server
            try:
                conn.send(("error", f"internal: {exc!r}"))
            except (EOFError, OSError):
                pass
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- campaign install / resume ---------------------------------------
    def _install_campaign(self, manifest: CampaignManifest,
                          specs: List[dict], task: str,
                          chunk_size: Optional[int]) -> None:
        size = chunk_size or self.chunk_size or max(1, len(specs) // 16)
        self.manifest = manifest
        self._specs = specs
        self._task = task
        self._chunks = {
            chunk_id: chunk
            for chunk_id, chunk in enumerate(
                chunk_specs(specs, chunk_size=size)
            )
        }
        self._attempts = {chunk_id: 0 for chunk_id in self._chunks}
        self._ready = []
        now = time.monotonic()
        for chunk_id in self._chunks:
            if self._chunk_remaining(chunk_id):
                heapq.heappush(self._ready, (now, chunk_id))

    def _load_state(self, state: JournalState) -> None:
        header = state.header
        manifest = CampaignManifest.from_dict(header["manifest"])
        self._results = dict(state.results)
        self._failures = dict(state.failures)
        # The trace id survives the restart with the campaign; chunks
        # re-leased after the resume chain fresh span ids under it.
        self._trace = dict(state.trace) if state.trace else None
        self._spans = [dict(span) for span in state.spans]
        self._install_campaign(
            manifest, header["specs"], header["task"], header.get("chunk"),
        )
        self.stats.resumes = state.resumes + 1
        self.stats.torn_records = state.torn_records
        self.stats.points_completed = len(self._results)
        # Lease expiries are journaled, so the campaign-lifetime
        # robustness story (lost workers included) survives restarts.
        self.stats.leases_expired = state.lease_expiries
        self.stats.workers_lost = len(state.lost_workers)
        self._lost_workers = set(state.lost_workers)
        from repro.telemetry.manifest import git_revision

        self._journal.append({
            "kind": "resume",
            "at": time.strftime("%Y-%m-%d %H:%M:%S"),
            "git_rev": git_revision(),
        })
        if manifest.git_rev not in ("unknown", git_revision()):
            self._logger.warning(
                "journal_git_rev_mismatch",
                f"warning: journal {self.journal_path!r} was "
                f"recorded at git rev {manifest.git_rev}, resuming at "
                f"{git_revision()} — results may not be byte-identical",
                legacy=True, journal=self.journal_path,
                recorded_rev=manifest.git_rev, running_rev=git_revision(),
            )
        self._log(
            f"resumed campaign {manifest.spec_hash} "
            f"({len(self._results)}/{manifest.nspecs} points journaled, "
            f"{state.torn_records} torn record(s) dropped)",
            event="campaign_resumed", campaign=manifest.spec_hash,
            journaled=len(self._results), torn=state.torn_records,
        )

    # -- internal helpers (lock held) ------------------------------------
    def _chunk_remaining(self, chunk_id: int) -> List[Tuple[int, dict]]:
        """The chunk's points not yet completed or quarantined."""
        return [
            (index, spec) for index, spec in self._chunks[chunk_id]
            if index not in self._results and index not in self._failures
        ]

    def _campaign_done(self) -> bool:
        if self.manifest is None:
            return False
        # Union, not a sum of lengths: an index transiently covered by
        # both maps (quarantined, then honestly completed late) must
        # count once, or the campaign reports done one point early.
        covered = self._results.keys() | self._failures.keys()
        return len(covered) >= len(self._specs)

    def _reap(self) -> None:
        """Expire overdue leases; re-queue (or quarantine) their chunks."""
        now = time.monotonic()
        for chunk_id, lease in list(self._leases.items()):
            if lease.deadline > now:
                continue
            del self._leases[chunk_id]
            self.stats.leases_expired += 1
            if lease.worker not in self._lost_workers:
                self._lost_workers.add(lease.worker)
                self.stats.workers_lost += 1
            self._journal.append({
                "kind": "expire", "chunk": chunk_id, "worker": lease.worker,
            })
            self._log(
                f"lease on chunk {chunk_id} expired (worker "
                f"{lease.worker}); re-queueing",
                event="lease_expired", chunk=chunk_id, lost=lease.worker,
            )
            self._requeue(
                chunk_id,
                f"FarmLeaseExpired: worker {lease.worker!r} lost its lease "
                f"on chunk {chunk_id} (no heartbeat within "
                f"{self.lease_s:g}s) and the chunk exhausted its retry "
                f"budget",
            )

    def _requeue(self, chunk_id: int, quarantine_tb: str) -> None:
        """Back the chunk off for retry, or quarantine it when exhausted."""
        attempt = self._attempts[chunk_id] = self._attempts[chunk_id] + 1
        if attempt >= self.chunk_retry.max_attempts:
            self._quarantine(chunk_id, quarantine_tb)
            return
        self.stats.chunks_retried += 1
        ready_at = time.monotonic() + self.chunk_retry.backoff_s(attempt)
        heapq.heappush(self._ready, (ready_at, chunk_id))

    def _quarantine(self, chunk_id: int, traceback_text: str) -> None:
        indices = [index for index, _ in self._chunk_remaining(chunk_id)]
        if not indices:
            return
        for index in indices:
            self._failures[index] = traceback_text
        self.stats.chunks_quarantined += 1
        self._journal.append({
            "kind": "quarantine",
            "chunk": chunk_id,
            "indices": indices,
            "traceback": traceback_text,
        })
        self._log(
            f"chunk {chunk_id} quarantined after "
            f"{self._attempts[chunk_id]} attempt(s): "
            f"{len(indices)} point(s) poisoned",
            event="chunk_quarantined", chunk=chunk_id,
            attempts=self._attempts[chunk_id], poisoned=len(indices),
        )
        dump_flight_record(
            f"farm-quarantine: chunk {chunk_id}", component="farm.server",
        )

    # -- metrics ---------------------------------------------------------

    #: FarmStats field -> (counter name, help): synced at exposition time
    #: from the authoritative stats so a scrape always equals ``status``
    _STAT_COUNTERS = {
        "leases_issued": ("farm_leases_issued_total",
                          "chunk leases granted to workers"),
        "leases_expired": ("farm_leases_expired_total",
                           "leases lost to missed heartbeats"),
        "heartbeats": ("farm_heartbeats_total",
                       "lease heartbeats received"),
        "chunks_completed": ("farm_chunks_completed_total",
                             "chunks fully settled"),
        "chunks_retried": ("farm_chunks_retried_total",
                           "chunks re-queued under the retry budget"),
        "chunks_quarantined": ("farm_chunks_quarantined_total",
                               "poison chunks quarantined"),
        "points_completed": ("farm_points_completed_total",
                             "points journaled complete"),
        "duplicate_completions": ("farm_duplicate_completions_total",
                                  "duplicate completions discarded"),
        "digest_mismatches": ("farm_digest_mismatches_total",
                              "determinism violations on duplicates"),
        "workers_lost": ("farm_workers_lost_total",
                         "workers that lost a lease"),
        "resumes": ("farm_resumes_total",
                    "journal resumes across server restarts"),
        "torn_records": ("farm_torn_records_total",
                         "torn journal records dropped on replay"),
    }

    def _sync_registry(self) -> None:
        """Sync counters/gauges to the stats struct (lock held)."""
        reg = self.registry
        for fld, value in asdict(self.stats).items():
            name, help_text = self._STAT_COUNTERS[fld]
            reg.counter(name, help_text).set_total(value)
        reg.gauge(
            "farm_chunks_leased", "chunks currently leased out",
        ).set(len(self._leases))
        reg.gauge(
            "farm_workers_seen", "distinct workers ever seen",
        ).set(len(self._workers))
        reg.gauge(
            "farm_points_total", "points in the installed campaign",
        ).set(len(self._specs))
        reg.gauge(
            "farm_points_covered", "points completed or quarantined",
        ).set(len(self._results.keys() | self._failures.keys()))

    # -- RPC handlers ----------------------------------------------------
    def _op_submit(self, manifest: dict, specs: List[dict], task: str,
                   chunk_size: Optional[int] = None,
                   worker: Optional[str] = None,
                   trace: Optional[dict] = None) -> dict:
        if task not in known_tasks():
            raise FarmError(
                f"unknown farm task {task!r} (known: {known_tasks()})"
            )
        submitted = CampaignManifest.from_dict(manifest)
        with self._lock:
            if self.manifest is not None:
                if submitted.spec_hash == self.manifest.spec_hash:
                    # An attach keeps the original trace: the campaign's
                    # identity (and its journaled span lineage) belongs
                    # to the first submission.
                    return {
                        "campaign": self.manifest.spec_hash,
                        "attached": True,
                        "total": len(self._specs),
                        "completed": len(self._results),
                    }
                raise FarmError(
                    f"server already holds campaign "
                    f"{self.manifest.spec_hash!r}; refuse to mix in "
                    f"{submitted.spec_hash!r} (one campaign per journal)"
                )
            self._install_campaign(submitted, list(specs), task, chunk_size)
            self._trace = dict(trace) if isinstance(trace, dict) else None
            self._journal.append({
                "kind": "campaign",
                "manifest": submitted.to_dict(),
                "task": task,
                "chunk": chunk_size or self.chunk_size,
                "specs": [dict(spec) for spec in specs],
                "trace": self._trace,
            })
            self._log(
                f"campaign {submitted.spec_hash} submitted: "
                f"{len(specs)} point(s), {len(self._chunks)} chunk(s)",
                event="campaign_submitted", campaign=submitted.spec_hash,
                points=len(specs), chunks=len(self._chunks),
            )
            return {
                "campaign": submitted.spec_hash,
                "attached": False,
                "total": len(specs),
                "completed": len(self._results),
            }

    def _op_lease(self, worker: str) -> dict:
        with self._lock:
            self._reap()
            if self.manifest is None:
                return {"wait": 1.0}
            now = time.monotonic()
            while self._ready:
                ready_at, chunk_id = self._ready[0]
                if ready_at > now:
                    return {"wait": ready_at - now}
                heapq.heappop(self._ready)
                points = self._chunk_remaining(chunk_id)
                if not points or chunk_id in self._leases:
                    continue  # resolved (or duplicated) while queued
                self._leases[chunk_id] = _Lease(
                    worker=worker, deadline=now + self.lease_s
                )
                self.stats.leases_issued += 1
                grant = {
                    "chunk": chunk_id,
                    "task": self._task,
                    "points": points,
                    "lease_s": self.lease_s,
                }
                if self._trace is not None:
                    # A fresh span id per *lease* — a chunk re-leased
                    # after expiry gets a new span under the same trace,
                    # so the exported timeline shows both attempts.
                    grant["trace"] = {
                        "trace_id": self._trace["trace_id"],
                        "span_id": new_span_id(),
                        "parent_span": self._trace.get("span_id"),
                    }
                return grant
            if self._campaign_done():
                return {"done": True}
            # Everything is leased out: poll again around lease granularity.
            return {"wait": min(1.0, self.lease_s / 4.0)}

    def _op_heartbeat(self, worker: str, chunk: int) -> dict:
        with self._lock:
            self.stats.heartbeats += 1
            lease = self._leases.get(chunk)
            if lease is None or lease.worker != worker:
                return {"ok": False}  # stale: chunk was re-leased or done
            lease.deadline = time.monotonic() + self.lease_s
            return {"ok": True}

    def _op_complete(self, worker: str, chunk: int,
                     outcomes: List[Tuple[int, str, object]],
                     spans: Optional[List[dict]] = None) -> dict:
        with self._lock:
            if chunk not in self._chunks:
                raise FarmError(f"unknown chunk {chunk}")
            # Worker-reported chunk spans ride beside the completion and
            # are journaled like every other campaign event, so a trace
            # assembled after a resume still shows pre-crash chunks.
            for span in spans or ():
                if isinstance(span, dict) and span.get("trace_id"):
                    self._spans.append(dict(span))
                    self._journal.append({"kind": "span", "span": span})
            lease = self._leases.get(chunk)
            # Only the lease holder settles the lease (and, below, the
            # retry budget).  A stale completion — a worker whose lease
            # expired and was re-issued — must not evict the current
            # holder, though its fresh ok results are still welcome.
            owns = lease is not None and lease.worker == worker
            if owns:
                del self._leases[chunk]
            duplicates = 0
            fresh = 0
            errors: List[Tuple[int, str]] = []
            for index, status, value in outcomes:
                if status != "ok":
                    errors.append((index, value))
                    continue
                data = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
                known = self._results.get(index)
                if known is not None:
                    duplicates += 1
                    if data != known:
                        self.stats.digest_mismatches += 1
                        self._log(
                            f"digest mismatch on duplicate completion of "
                            f"point {index} (worker {worker}) — "
                            f"determinism violation; keeping first result"
                        )
                    continue
                if index in self._failures:
                    # A late honest completion beats a quarantine verdict.
                    del self._failures[index]
                self._results[index] = data
                self._journal.append({
                    "kind": "point",
                    "index": index,
                    "digest": hashlib.sha256(data).hexdigest(),
                    "data": base64.b64encode(data).decode("ascii"),
                })
                self.stats.points_completed += 1
                fresh += 1
            if duplicates:
                self.stats.duplicate_completions += duplicates
            requeued = False
            if errors and owns:
                tb = errors[-1][1]
                self._requeue(
                    chunk,
                    tb if isinstance(tb, str) else repr(tb),
                )
                requeued = True
            elif errors:
                # Stale errors don't burn the retry budget: the chunk's
                # fate belongs to the current holder (or to lease expiry,
                # which already re-queued it once for this worker).
                self._log(
                    f"ignoring {len(errors)} stale error(s) for chunk "
                    f"{chunk} from {worker} (not the lease holder)"
                )
            elif fresh or not duplicates:
                self.stats.chunks_completed += 1
            if self._campaign_done():
                self._log("campaign complete")
            return {
                "accepted": fresh,
                "duplicates": duplicates,
                "requeued": requeued,
            }

    def _op_status(self, worker: Optional[str] = None) -> dict:
        with self._lock:
            self._reap()
            self._sync_registry()
            now = time.monotonic()
            return {
                "metrics": self.registry.snapshot(),
                "campaign": (
                    None if self.manifest is None else self.manifest.to_dict()
                ),
                "total": len(self._specs),
                "completed": len(self._results),
                "quarantined": len(self._failures),
                "done": self._campaign_done(),
                "leased": {
                    chunk_id: {
                        "worker": lease.worker,
                        "expires_in": round(lease.deadline - now, 2),
                        "attempt": self._attempts[chunk_id],
                    }
                    for chunk_id, lease in self._leases.items()
                },
                "workers": sorted(self._workers),
                "journal": self.journal_path,
                "stats": asdict(self.stats),
            }

    def _op_fetch(self, worker: Optional[str] = None) -> dict:
        with self._lock:
            self._reap()
            if not self._campaign_done():
                # Progress counts let the polling driver tell "slow"
                # from "stalled" (see farm_execute_points' timeout_s).
                return {
                    "done": False,
                    "completed": len(self._results),
                    "quarantined": len(self._failures),
                }
            merged: List[Tuple[int, str, object]] = []
            for index in range(len(self._specs)):
                if index in self._results:
                    merged.append((index, "ok", self._results[index]))
                else:
                    merged.append((index, "error", self._failures[index]))
            digest = hashlib.sha256()
            for index, status, value in merged:
                if status == "ok":
                    digest.update(value)
            return {
                "done": True,
                "results": merged,
                "merge_digest": digest.hexdigest(),
                "spans": [dict(span) for span in self._spans],
            }

    def _op_metrics(self, worker: Optional[str] = None) -> dict:
        """The synced metrics registry: structured + Prometheus text."""
        with self._lock:
            self._reap()
            self._sync_registry()
            return {
                "metrics": self.registry.snapshot(),
                "exposition": self.registry.dump_metrics(),
            }

    def _op_trace(self, worker: Optional[str] = None) -> dict:
        """Worker-reported chunk spans accumulated by this campaign."""
        with self._lock:
            return {
                "spans": [dict(span) for span in self._spans],
                "trace": dict(self._trace) if self._trace else None,
                "count": len(self._spans),
            }

    def _op_shutdown(self, worker: Optional[str] = None) -> dict:
        self._stop.set()
        return {"ok": True}


# -- worker --------------------------------------------------------------

class FarmWorker:
    """A pull-worker: lease, compute, heartbeat, report, repeat.

    Graceful degradation when the server goes away: every RPC retries
    under ``reconnect`` (:class:`RetryPolicy`, wall-clock backoff), so a
    server restart mid-campaign stalls the worker instead of killing it.
    A completion that cannot be delivered within the budget is dropped —
    the lease expires server-side and the chunk is recomputed, which is
    safe because points are deterministic.
    """

    def __init__(self, server: str, *,
                 worker_id: Optional[str] = None,
                 reconnect: RetryPolicy = DEFAULT_RECONNECT,
                 poll_cap_s: float = 2.0,
                 exit_when_done: bool = True,
                 verbose: bool = False):
        self.server = server
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self.reconnect = reconnect
        self.poll_cap_s = poll_cap_s
        self.exit_when_done = exit_when_done
        self.verbose = verbose
        self.chunks_computed = 0
        self.points_computed = 0
        self._logger = runtime_log(
            "farm.worker", prefix=self.worker_id,
            level="info" if verbose else "warning",
        )

    def _log(self, message: str, event: str = "log", **fields) -> None:
        self._logger.info(event, message, legacy=True, **fields)

    def run(self, *, max_chunks: Optional[int] = None,
            stop: Optional[threading.Event] = None) -> int:
        """Pull work until the campaign is done (or ``stop``/``max_chunks``).

        Returns the number of chunks computed.  Raises
        :class:`FarmUnreachableError` only when the server stays away
        beyond the whole reconnect budget.
        """
        while not (stop is not None and stop.is_set()):
            grant = rpc_retry(
                self.server, "lease", worker=self.worker_id,
                policy=self.reconnect,
            )
            if grant.get("done"):
                if self.exit_when_done:
                    self._log("campaign done; exiting")
                    return self.chunks_computed
                time.sleep(self.poll_cap_s)
                continue
            if "wait" in grant:
                delay = min(float(grant["wait"]), self.poll_cap_s)
                # Interruptible sleep so stop events are honored promptly.
                if stop is not None:
                    stop.wait(delay)
                else:
                    time.sleep(delay)
                continue
            self._work(grant)
            if max_chunks is not None and self.chunks_computed >= max_chunks:
                return self.chunks_computed
        return self.chunks_computed

    def _work(self, grant: dict) -> None:
        chunk_id = grant["chunk"]
        lease_s = float(grant["lease_s"])
        points = [(int(index), spec) for index, spec in grant["points"]]
        self._log(f"leased chunk {chunk_id} ({len(points)} point(s))",
                  event="chunk_leased", chunk=chunk_id, points=len(points))
        try:
            task = resolve_task(grant["task"])
        except FarmError as exc:
            # A worker that cannot even resolve the task reports every
            # point as errored so the server's retry/quarantine logic —
            # not a silent lease expiry — decides the chunk's fate.
            outcomes = [
                (index, "error", f"FarmError: {exc}") for index, _ in points
            ]
            self._complete(chunk_id, outcomes)
            return
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(chunk_id, lease_s, stop_heartbeat),
            daemon=True,
        )
        heartbeat.start()
        start_s = time.time()
        try:
            outcomes = _run_chunk(task, points)
        finally:
            stop_heartbeat.set()
            heartbeat.join(timeout=5.0)
        self.chunks_computed += 1
        self.points_computed += len(points)
        registry = default_registry()
        registry.counter(
            "farm_worker_chunks_total", "chunks computed by this worker",
        ).inc()
        registry.counter(
            "farm_worker_points_total", "points computed by this worker",
        ).inc(len(points))
        spans = None
        trace = grant.get("trace")
        if isinstance(trace, dict) and runtime_enabled():
            # The span id was minted server-side with the lease, so a
            # re-leased chunk reports a distinct span under one trace id;
            # wall-clock start/end lets the driver line this span up
            # against its own serve/execute spans.
            spans = [{
                "trace_id": trace.get("trace_id"),
                "span_id": trace.get("span_id") or new_span_id(),
                "parent_id": trace.get("parent_span"),
                "name": f"farm.chunk.{chunk_id}",
                "component": "farm.worker",
                "start_s": start_s,
                "end_s": time.time(),
                "attrs": {
                    "worker": self.worker_id,
                    "chunk": chunk_id,
                    "points": len(points),
                    "failed": sum(
                        1 for _, status, _ in outcomes if status != "ok"
                    ),
                },
            }]
        self._complete(chunk_id, outcomes, spans=spans)

    def _complete(self, chunk_id: int, outcomes: List[tuple],
                  spans: Optional[List[dict]] = None) -> None:
        payload = {"chunk": chunk_id, "outcomes": outcomes}
        if spans is not None:
            payload["spans"] = spans
        try:
            rpc_retry(
                self.server, "complete", worker=self.worker_id,
                policy=self.reconnect, **payload,
            )
        except FarmUnreachableError:
            # Results undeliverable: drop them.  The lease expires and
            # the deterministic chunk is recomputed by whoever is left.
            self._log(
                f"could not deliver chunk {chunk_id}; dropping results",
                event="chunk_undeliverable", chunk=chunk_id,
            )

    def _heartbeat_loop(self, chunk_id: int, lease_s: float,
                        stop: threading.Event) -> None:
        interval = max(0.05, lease_s / 3.0)
        while not stop.wait(interval):
            try:
                alive = rpc(
                    self.server, "heartbeat", worker=self.worker_id,
                    chunk=chunk_id,
                )
                if not alive.get("ok"):
                    return  # lease re-assigned; duplicate handling applies
            except _TRANSIENT:
                pass  # server away: keep computing, retry next beat


# -- driver --------------------------------------------------------------

#: the driver's logger: its one legacy line (the local-fallback notice)
#: always printed, so it is warning-level under the "[farm]" prefix
_driver_log = runtime_log("farm.driver", prefix="farm")


def resolve_chunk_size(chunk_size: Optional[int] = None) -> Optional[int]:
    """Explicit chunk size > ``REPRO_FARM_CHUNK`` > server default."""
    if chunk_size is not None:
        return chunk_size
    env = os.environ.get(ENV_FARM_CHUNK, "").strip()
    if not env:
        return None
    try:
        return int(env)
    except ValueError as exc:
        raise ValueError(
            f"{ENV_FARM_CHUNK} must be an integer, got {env!r}"
        ) from exc


def farm_execute_points(specs: Sequence[dict], *, farm: str,
                        task: Optional[Callable[[dict], object]] = None,
                        on_error: str = "raise",
                        jobs: Optional[int] = None,
                        chunk_size: Optional[int] = None,
                        poll_s: float = 0.5,
                        local_fallback: Optional[bool] = None,
                        reconnect: RetryPolicy = DEFAULT_RECONNECT,
                        timeout_s: Optional[float] = None,
                        trace_ctx: Optional[dict] = None,
                        ) -> List[object]:
    """Run specs on a farm; merged results identical to the local executor.

    Submits a :class:`CampaignManifest`-keyed campaign, polls the
    server, fetches the journaled completions, and merges them **in
    point order** — the same merge semantics as
    :meth:`ParallelExecutor.map`, including the serial re-run diagnosis
    of quarantined points under ``on_error='raise'`` and
    :class:`~repro.bench.parallel.PointFailure` entries (worker
    traceback and spec preserved) under ``on_error='return'``.  Points
    quarantined after *lease expiry* (the farm's hung-worker bound) are
    never re-run serially — a wedged point would wedge the driver too —
    so they raise :class:`~repro.bench.parallel.WorkerPointError`
    directly under ``on_error='raise'``.

    ``timeout_s`` (argument > ``REPRO_CHUNK_TIMEOUT_S``, same
    resolution as the local executor) bounds the *stall*, not the
    campaign: when the server reports no new covered point for that
    many seconds — no workers attached, every worker wedged — the
    driver raises :class:`FarmError` instead of polling forever.  The
    campaign itself stays live on the server and resumable from its
    journal.  Per-point hang protection on a farm is the lease
    deadline, not this timeout.

    Graceful degradation: server restarts mid-campaign are absorbed by
    the reconnect budget; a server that never answers raises
    :class:`FarmUnreachableError` — or, with ``local_fallback=True``
    (or ``REPRO_FARM_FALLBACK=1``), falls back to the local executor
    with ``jobs`` workers.
    """
    if on_error not in ("raise", "return"):
        raise ValueError(f"on_error must be raise|return, got {on_error!r}")
    from repro.bench.parallel import (
        execute_points,
        resolve_timeout,
        run_point,
    )

    timeout = resolve_timeout(timeout_s)
    if task is None:
        task = run_point
    name = task_name(task)
    if local_fallback is None:
        local_fallback = os.environ.get(ENV_FARM_FALLBACK, "") == "1"
    specs = list(specs)
    manifest = CampaignManifest.build(name, specs)
    submit_payload = {
        "manifest": manifest.to_dict(), "specs": specs, "task": name,
        "chunk_size": resolve_chunk_size(chunk_size),
    }
    # Trace context rides beside the campaign, never inside it: the
    # manifest (and so the spec hash, the journal identity, and every
    # journaled result byte) is computed from the bare specs above.
    if trace_ctx is not None and runtime_enabled():
        submit_payload["trace"] = {
            "trace_id": trace_ctx.get("trace_id"),
            "span_id": trace_ctx.get("span_id"),
        }
    try:
        rpc_retry(farm, "submit", policy=reconnect, **submit_payload)
    except FarmUnreachableError:
        if not local_fallback:
            raise
        _driver_log.warning(
            "farm_local_fallback",
            f"server {farm} unreachable; falling back to the local "
            f"executor (jobs={resolve_jobs(jobs)})",
            legacy=True, farm=farm, jobs=resolve_jobs(jobs),
        )
        return execute_points(specs, jobs, task=task, on_error=on_error,
                              farm="", timeout_s=timeout_s,
                              trace_ctx=trace_ctx)
    covered = -1
    stall_deadline = None
    while True:
        payload = rpc_retry(farm, "fetch", policy=reconnect)
        if payload["done"]:
            break
        if timeout is not None:
            now = time.monotonic()
            progress = (int(payload.get("completed", 0))
                        + int(payload.get("quarantined", 0)))
            if progress != covered:
                covered = progress
                stall_deadline = now + timeout
            elif now >= stall_deadline:
                raise FarmError(
                    f"no farm progress within {timeout:g}s "
                    f"({covered}/{len(specs)} points covered) — are any "
                    f"workers attached?  The campaign stays live on "
                    f"{farm} and resumable from its journal."
                )
        time.sleep(poll_s)
    if runtime_enabled() and payload.get("spans"):
        # Chunk spans computed by remote workers land in this process's
        # span store so one `repro trace --runtime` export shows the
        # query fanning into farm chunks.
        span_store().record_many(payload["spans"])
    results: List[object] = [None] * len(specs)
    failures: List[Tuple[int, str, bool]] = []
    for index, status, value in payload["results"]:
        if status == "ok":
            results[index] = pickle.loads(value)
        else:
            # A lease-expiry quarantine marks a point that may have
            # wedged every worker that leased it: not-rerunnable, or
            # the serial diagnosis re-run would wedge this process too.
            rerunnable = not str(value).startswith("FarmLeaseExpired")
            failures.append((index, value, rerunnable))
    return merge_failures(results, failures, specs, task, on_error)


# -- robustness rollups (BENCH_robustness.json entry) --------------------

#: status/stats fields recorded as tolerance-gateable sweep points (the
#: scripted smoke scenario makes these deterministic); noisier
#: timing-dependent counters ride along ungated under ``"rollups"``.
GATED_ROLLUPS: Tuple[str, ...] = (
    "total_points",
    "points_completed",
    "quarantined_points",
    "digest_mismatches",
    "workers_lost",
    "resumes",
)


def farm_rollups(status: dict) -> Dict[str, float]:
    """Flatten a ``repro farm status`` payload into labelled counters."""
    stats = status.get("stats", {})
    return {
        "total_points": float(status.get("total", 0)),
        "points_completed": float(stats.get("points_completed", 0)),
        "quarantined_points": float(status.get("quarantined", 0)),
        "digest_mismatches": float(stats.get("digest_mismatches", 0)),
        "workers_lost": float(stats.get("workers_lost", 0)),
        "resumes": float(stats.get("resumes", 0)),
        "leases_issued": float(stats.get("leases_issued", 0)),
        "leases_expired": float(stats.get("leases_expired", 0)),
        "chunks_completed": float(stats.get("chunks_completed", 0)),
        "chunks_retried": float(stats.get("chunks_retried", 0)),
        "chunks_quarantined": float(stats.get("chunks_quarantined", 0)),
        "duplicate_completions": float(
            stats.get("duplicate_completions", 0)
        ),
        "torn_records": float(stats.get("torn_records", 0)),
    }


def record_farm_bench_entry(path: str, label: str, status: dict, *,
                            smoke: bool = True) -> dict:
    """Store farm robustness rollups as a labelled bench entry.

    The entry is shaped for ``repro report --check-bench``: one
    ``farm-robustness`` sweep whose points carry the deterministic
    rollups of :data:`GATED_ROLLUPS` on the gate's ``elapsed_us`` field
    (x = rollup index, like the multi-tenant entry rides per-job times).
    The full counter set — including the timing-dependent lease/retry
    counters the gate must not pin — is preserved under ``"rollups"``.
    Existing document content (a chaos campaign report, other entries)
    is preserved; the write matches the chaos writer's format so the
    committed ``BENCH_robustness.json`` stays regenerable byte-for-byte.
    """
    rollups = farm_rollups(status)
    points = [
        {"x": x, "metric": metric, "elapsed_us": rollups[metric]}
        for x, metric in enumerate(GATED_ROLLUPS)
    ]
    entry = {
        "smoke": smoke,
        "solver": "farm",
        "workers": status.get("workers", []),
        "rollups": rollups,
        "sweeps": {
            "farm-robustness": {
                "points": points,
                "wall_s": 0.0,
                "solver": "farm",
                "analytic_hits": 0,
            },
        },
    }
    # The registry snapshot rides along ungated: compare_bench reads
    # only smoke/solver/sweeps, so entries with and without a metrics
    # key gate identically and committed baselines keep their bytes.
    if status.get("metrics") is not None:
        entry["metrics"] = status["metrics"]
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        document = {}
    document.setdefault("entries", {})[label] = entry
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return document


def format_status(status: dict) -> str:
    """Human-readable ``repro farm status`` summary."""
    lines: List[str] = []
    campaign = status.get("campaign")
    if campaign is None:
        lines.append("no campaign submitted yet")
    else:
        lines.append(
            f"campaign {campaign['spec_hash']} ({campaign['task']}, "
            f"{campaign['nspecs']} points, rev {campaign['git_rev']})"
        )
    lines.append(
        f"progress: {status.get('completed', 0)}/{status.get('total', 0)} "
        f"completed, {status.get('quarantined', 0)} quarantined"
        + (" — DONE" if status.get("done") else "")
    )
    leased = status.get("leased", {})
    for chunk_id, lease in sorted(leased.items()):
        lines.append(
            f"  chunk {chunk_id}: leased to {lease['worker']} "
            f"(expires in {lease['expires_in']}s, "
            f"attempt {lease['attempt']})"
        )
    workers = status.get("workers", [])
    if workers:
        lines.append(f"workers seen: {', '.join(workers)}")
    stats = status.get("stats", {})
    if stats:
        lines.append(
            "stats: " + ", ".join(
                f"{key}={value}" for key, value in sorted(stats.items())
            )
        )
    return "\n".join(lines)
