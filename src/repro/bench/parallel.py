"""Deterministic parallel execution of independent simulation points.

Every figure and sweep in this repo is a grid of *independent* points —
one (algorithm, message size, geometry) simulation each, fully
deterministic given its spec.  That makes the drivers embarrassingly
parallel: :class:`ParallelExecutor` fans point **specs** out to a pool of
worker processes and merges the results back **in point order**, so the
output of a parallel run is byte-identical to the serial run.

Spawn-safety rule: *pickle specs, not machines*
-----------------------------------------------

Workers never receive live simulator objects.  A spec is a plain dict —
geometry, mode, algorithm name, size, seeds — and the worker constructs
its own :class:`~repro.hardware.machine.Machine` (and, for chaos points,
its own ``FaultSchedule`` from the spec's RNG key) locally.  Everything
crossing the process boundary is picklable under the ``spawn`` start
method, so the executor works identically under ``fork`` (fast, the
POSIX default) and ``spawn`` (the portable one).

Determinism
-----------

* Results are merged by point index, never by completion order.
* Workers keep a **warm machine per geometry** — reused across points
  after :meth:`~repro.hardware.machine.Machine.rebase_time`, which
  resets the clock origin so every point replays the exact float
  arithmetic of a fresh machine (covered by
  ``tests/test_parallel_executor.py``).
* A worker exception fails only its point: the pool keeps draining the
  other points, and the failed spec is re-run serially in the parent so
  the exception surfaces with a real, debugger-usable traceback (the
  worker's formatted traceback is attached as the cause).

Job-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then serial.  ``jobs <= 0`` means
"one worker per CPU".  Serial mode (``jobs=1``) never touches
``multiprocessing`` — it runs the task inline, point by point, exactly
like the historical drivers.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hardware.machine import Machine, Mode

#: environment variable consulted when no explicit job count is given
ENV_JOBS = "REPRO_JOBS"

#: environment variable overriding the multiprocessing start method
ENV_START_METHOD = "REPRO_MP_START"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` > serial.

    ``0`` or a negative count means "all CPUs".
    """
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError as exc:
            raise ValueError(
                f"{ENV_JOBS} must be an integer, got {env!r}"
            ) from exc
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class PointFailure:
    """A point whose worker raised (only surfaced with ``on_error='return'``)."""

    index: int
    traceback: str

    def __bool__(self) -> bool:  # failed points are falsy in result lists
        return False


class WorkerPointError(RuntimeError):
    """Raised when a point fails both in the worker and on serial re-run."""


# -- worker side ---------------------------------------------------------

#: per-worker-process machine cache, keyed on geometry (see module doc)
_MACHINES: Dict[Tuple, Machine] = {}


def warm_machine(dims: Sequence[int], mode: str = "QUAD",
                 wrap: bool = True, network: str = "torus") -> Machine:
    """A pristine machine of the given geometry, reused across points.

    The first request per (dims, mode, wrap, network) builds the machine;
    later requests rebase its clock to the origin and hand it back.  After
    :meth:`Machine.rebase_time` a reused machine replays bit-identical
    float arithmetic to a fresh one, so points sharing a geometry skip
    reconstruction without perturbing results.
    """
    key = (tuple(dims), mode, wrap, network)
    machine = _MACHINES.get(key)
    if machine is None:
        machine = Machine(
            torus_dims=tuple(dims), mode=Mode[mode], wrap=wrap,
            network=network,
        )
        _MACHINES[key] = machine
    else:
        machine.rebase_time()
    return machine


def run_point(spec: dict):
    """Worker task: measure one collective point described by ``spec``.

    ``spec`` keys: ``family``, ``algorithm``, ``x`` plus the optional
    ``dims``/``mode``/``wrap``/``network`` geometry and any keyword accepted by
    :func:`repro.bench.harness.run_collective` (``iters``, ``verify``,
    ``seed``, ``steady_state``, ``root``, ``window_caching``,
    ``analytic``, ``working_set_override``).
    ``fresh_machine=True`` opts out of the warm-machine cache (required
    for points that mutate machine-global state beyond a collective run).
    """
    from repro.bench.harness import run_collective

    dims = tuple(spec.get("dims", (2, 2, 2)))
    mode = spec.get("mode", "QUAD")
    wrap = bool(spec.get("wrap", True))
    network = spec.get("network", "torus")
    # A barrier installs no working set, so a cached machine would leak
    # the previous point's memory regime into it: always build fresh.
    if spec.get("fresh_machine") or spec["family"] == "barrier":
        machine = Machine(torus_dims=dims, mode=Mode[mode], wrap=wrap,
                          network=network)
    else:
        machine = warm_machine(dims, mode, wrap, network)
    kwargs = {
        key: spec[key]
        for key in ("root", "iters", "verify", "window_caching", "seed",
                    "steady_state", "deadline_us", "analytic",
                    "working_set_override")
        if key in spec
    }
    return run_collective(
        machine, spec["family"], spec["algorithm"], spec.get("x", 0), **kwargs
    )


def run_point_timed(spec: dict) -> Tuple[float, object]:
    """:func:`run_point` plus the worker-side wall-clock seconds."""
    start = time.perf_counter()
    result = run_point(spec)
    return time.perf_counter() - start, result


def _run_chunk(task: Callable, chunk: List[Tuple[int, dict]]) -> List[tuple]:
    """Worker entry: run a chunk of (index, spec) pairs, isolating crashes.

    Returns ``(index, "ok", result)`` or ``(index, "error", traceback)``
    per point — an exception never takes down the chunk's siblings or the
    worker process.
    """
    out = []
    for index, spec in chunk:
        try:
            out.append((index, "ok", task(spec)))
        except Exception:
            out.append((index, "error", traceback.format_exc()))
    return out


# -- parent side ---------------------------------------------------------

class ParallelExecutor:
    """Fan independent point specs across worker processes.

    ``map(task, specs)`` returns ``[task(spec) for spec in specs]`` — same
    values, same order — but computed by ``jobs`` worker processes.  The
    pool is created lazily on first use and reused across ``map`` calls;
    use the executor as a context manager (or call :meth:`close`) to shut
    it down.

    ``task`` must be a picklable module-level callable taking one spec
    dict; specs and results must be picklable (see the module docstring's
    spawn-safety rule).
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 start_method: Optional[str] = None,
                 chunk_size: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)
        self.start_method = (
            start_method or os.environ.get(ENV_START_METHOD) or None
        )
        self.chunk_size = chunk_size
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method else multiprocessing.get_context()
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scheduling ------------------------------------------------------
    def _chunks(self, specs: Sequence[dict]) -> List[List[Tuple[int, dict]]]:
        """Chunked scheduling: small chunks, dynamically dispatched.

        Points have wildly uneven costs (the largest message of a sweep
        dominates), so chunks are kept small — at least ``4 * jobs``
        chunks when there are that many points — and handed to whichever
        worker frees up first, rather than pre-partitioned statically.
        """
        size = self.chunk_size
        if size is None:
            size = max(1, len(specs) // (self.jobs * 4))
        indexed = list(enumerate(specs))
        return [indexed[i:i + size] for i in range(0, len(indexed), size)]

    def map(self, task: Callable[[dict], object], specs: Sequence[dict],
            *, on_error: str = "raise") -> List[object]:
        """Run ``task`` over ``specs``; results ordered by spec index.

        ``on_error='raise'``: a point that failed in its worker is re-run
        serially in this process *after* the surviving points complete, so
        the underlying exception propagates with a real traceback (the
        worker's formatted traceback attached as ``__cause__``).
        ``on_error='return'``: failed points come back as
        :class:`PointFailure` entries instead (falsy, so
        ``filter(None, ...)`` drops them).
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be raise|return, got {on_error!r}")
        if self.jobs <= 1 or len(specs) <= 1:
            return self._map_serial(task, specs, on_error)
        pool = self._ensure_pool()
        results: List[object] = [None] * len(specs)
        failures: List[Tuple[int, str]] = []
        pending = {
            pool.submit(_run_chunk, task, chunk)
            for chunk in self._chunks(specs)
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                for index, status, value in future.result():
                    if status == "ok":
                        results[index] = value
                    else:
                        failures.append((index, value))
        for index, worker_tb in sorted(failures):
            if on_error == "return":
                results[index] = PointFailure(index, worker_tb)
                continue
            # Serial re-run: reproduces the failure with a real traceback
            # (or recovers the point if the failure does not reproduce).
            try:
                results[index] = task(specs[index])
            except Exception as exc:
                raise WorkerPointError(
                    f"point {index} failed in a worker and again on serial "
                    f"re-run; worker traceback:\n{worker_tb}"
                ) from exc
        return results

    def _map_serial(self, task, specs, on_error) -> List[object]:
        results: List[object] = []
        for index, spec in enumerate(specs):
            if on_error == "return":
                try:
                    results.append(task(spec))
                except Exception:
                    results.append(PointFailure(index, traceback.format_exc()))
            else:
                results.append(task(spec))
        return results


def execute_points(specs: Sequence[dict], jobs: Optional[int] = None,
                   *, task: Callable[[dict], object] = run_point,
                   on_error: str = "raise") -> List[object]:
    """One-shot convenience: map ``task`` over ``specs`` with ``jobs`` workers.

    Serial (``jobs=1``) runs inline with **fresh machines per point** —
    exactly the historical driver behavior; parallel workers use the
    warm-machine cache (bit-identical, see module docstring).
    """
    resolved = resolve_jobs(jobs)
    if resolved <= 1 or len(specs) <= 1:
        if task in (run_point, run_point_timed):
            specs = [{**spec, "fresh_machine": True} for spec in specs]
        return ParallelExecutor(1).map(task, specs, on_error=on_error)
    with ParallelExecutor(resolved) as executor:
        return executor.map(task, specs, on_error=on_error)
