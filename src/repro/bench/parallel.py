"""Deterministic parallel execution of independent simulation points.

Every figure and sweep in this repo is a grid of *independent* points —
one (algorithm, message size, geometry) simulation each, fully
deterministic given its spec.  That makes the drivers embarrassingly
parallel: :class:`ParallelExecutor` fans point **specs** out to a pool of
worker processes and merges the results back **in point order**, so the
output of a parallel run is byte-identical to the serial run.

Spawn-safety rule: *pickle specs, not machines*
-----------------------------------------------

Workers never receive live simulator objects.  A spec is a plain dict —
geometry, mode, algorithm name, size, seeds — and the worker constructs
its own :class:`~repro.hardware.machine.Machine` (and, for chaos points,
its own ``FaultSchedule`` from the spec's RNG key) locally.  Everything
crossing the process boundary is picklable under the ``spawn`` start
method, so the executor works identically under ``fork`` (fast, the
POSIX default) and ``spawn`` (the portable one).

Determinism
-----------

* Results are merged by point index, never by completion order.
* Workers keep a **warm machine per geometry** — reused across points
  after :meth:`~repro.hardware.machine.Machine.rebase_time`, which
  resets the clock origin so every point replays the exact float
  arithmetic of a fresh machine (covered by
  ``tests/test_parallel_executor.py``).
* A worker exception fails only its point: the pool keeps draining the
  other points, and the failed spec is re-run serially in the parent so
  the exception surfaces with a real, debugger-usable traceback (the
  worker's formatted traceback is attached as the cause).

Job-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then serial.  ``jobs <= 0`` means
"one worker per CPU".  Serial mode (``jobs=1``) never touches
``multiprocessing`` — it runs the task inline, point by point, exactly
like the historical drivers.

Hung workers
------------

A worker process that wedges (deadlocked C extension, runaway point)
would historically hang ``map`` forever.  A wall-clock chunk timeout —
``timeout_s`` on the executor or ``map``, or the ``REPRO_CHUNK_TIMEOUT_S``
environment variable — bounds the wait: when **no chunk completes** for
that many seconds, every still-outstanding point fails with a
:class:`PointFailure` (``on_error='return'``) or a
:class:`WorkerPointError` (``on_error='raise'``; timed-out points are
*not* re-run serially — that would hang this process too), and the
wedged pool is terminated.  The default is no timeout, preserving the
historical behavior.

Beyond one host
---------------

The same point specs fan across machines through the sweep farm
(:mod:`repro.bench.farm`): ``execute_points(specs, farm="host:port")`` —
or the ``REPRO_FARM`` environment variable — submits the specs to a
work-server and merges the journaled results with the identical
index-ordered, byte-identical-to-serial guarantee.  The chunking
(:func:`chunk_specs`), worker-side chunk runner (:func:`_run_chunk`,
warm-machine cache included), and failure merge
(:func:`merge_failures`) are shared between the local and farm
backends.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bench.warmpool import WarmMachinePool
from repro.hardware.machine import Machine, Mode
from repro.telemetry.runtime import (
    default_registry,
    dump_flight_record,
    record_span,
    span,
)

#: environment variable consulted when no explicit job count is given
ENV_JOBS = "REPRO_JOBS"

#: environment variable overriding the multiprocessing start method
ENV_START_METHOD = "REPRO_MP_START"

#: environment variable with the default wall-clock chunk timeout (seconds)
ENV_CHUNK_TIMEOUT = "REPRO_CHUNK_TIMEOUT_S"

#: environment variable with a default farm server address (host:port)
ENV_FARM = "REPRO_FARM"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` > serial.

    ``0`` or a negative count means "all CPUs".
    """
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError as exc:
            raise ValueError(
                f"{ENV_JOBS} must be an integer, got {env!r}"
            ) from exc
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def resolve_timeout(timeout_s: Optional[float] = None) -> Optional[float]:
    """Resolve the chunk timeout: argument > ``REPRO_CHUNK_TIMEOUT_S`` > none."""
    if timeout_s is None:
        env = os.environ.get(ENV_CHUNK_TIMEOUT, "").strip()
        if not env:
            return None
        try:
            timeout_s = float(env)
        except ValueError as exc:
            raise ValueError(
                f"{ENV_CHUNK_TIMEOUT} must be a number of seconds, got "
                f"{env!r}"
            ) from exc
    if timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    return timeout_s


@dataclass
class PointFailure:
    """A point whose worker raised (only surfaced with ``on_error='return'``).

    ``traceback`` is the worker's formatted traceback string — the real
    failing frame, not just the spec — and ``spec`` (when the caller
    provided specs) is the point spec that failed, so a campaign report
    can both name the point and show where it died.
    """

    index: int
    traceback: str
    spec: Optional[dict] = None

    def __bool__(self) -> bool:  # failed points are falsy in result lists
        return False


class WorkerPointError(RuntimeError):
    """Raised when a point fails both in the worker and on serial re-run.

    ``worker_traceback`` preserves the original worker-side formatted
    traceback (local pool worker or remote farm worker) so the failing
    frame survives even though the exception object itself could not
    cross the process boundary; ``index`` is the failing point's position
    in the spec list.
    """

    def __init__(self, message: str, *, index: Optional[int] = None,
                 worker_traceback: Optional[str] = None):
        super().__init__(message)
        self.index = index
        self.worker_traceback = worker_traceback


# -- worker side ---------------------------------------------------------

#: per-worker-process warm-machine pool, keyed on geometry (the same
#: bounded LRU the prediction service's warm tier uses — see
#: :mod:`repro.bench.warmpool`)
_POOL = WarmMachinePool()


def warm_machine(dims: Sequence[int], mode: str = "QUAD",
                 wrap: bool = True, network: str = "torus") -> Machine:
    """A pristine machine of the given geometry, reused across points.

    The first request per (dims, mode, wrap, network) builds the machine;
    later requests rebase its clock to the origin and hand it back.  After
    :meth:`Machine.rebase_time` a reused machine replays bit-identical
    float arithmetic to a fresh one, so points sharing a geometry skip
    reconstruction without perturbing results.  The cache behind it is
    this process's :class:`~repro.bench.warmpool.WarmMachinePool` (LRU,
    bounded size).
    """
    machine, _ = _POOL.checkout(dims, mode=mode, wrap=wrap, network=network)
    return machine


def run_point(spec: dict):
    """Worker task: measure one collective point described by ``spec``.

    ``spec`` keys: ``family``, ``algorithm``, ``x`` plus the optional
    ``dims``/``mode``/``wrap``/``network`` geometry and any keyword accepted by
    :func:`repro.bench.harness.run_collective` (``iters``, ``verify``,
    ``seed``, ``steady_state``, ``root``, ``window_caching``,
    ``analytic``, ``working_set_override``).
    ``fresh_machine=True`` opts out of the warm-machine cache (required
    for points that mutate machine-global state beyond a collective run).
    """
    from repro.bench.harness import run_collective

    dims = tuple(spec.get("dims", (2, 2, 2)))
    mode = spec.get("mode", "QUAD")
    wrap = bool(spec.get("wrap", True))
    network = spec.get("network", "torus")
    # A barrier installs no working set, so a cached machine would leak
    # the previous point's memory regime into it: always build fresh.
    if spec.get("fresh_machine") or spec["family"] == "barrier":
        machine = Machine(torus_dims=dims, mode=Mode[mode], wrap=wrap,
                          network=network)
    else:
        machine = warm_machine(dims, mode, wrap, network)
    kwargs = {
        key: spec[key]
        for key in ("root", "iters", "verify", "window_caching", "seed",
                    "steady_state", "deadline_us", "analytic",
                    "working_set_override")
        if key in spec
    }
    return run_collective(
        machine, spec["family"], spec["algorithm"], spec.get("x", 0), **kwargs
    )


def run_point_timed(spec: dict) -> Tuple[float, object]:
    """:func:`run_point` plus the worker-side wall-clock seconds."""
    start = time.perf_counter()
    result = run_point(spec)
    return time.perf_counter() - start, result


def _run_chunk(task: Callable, chunk: List[Tuple[int, dict]]) -> List[tuple]:
    """Worker entry: run a chunk of (index, spec) pairs, isolating crashes.

    Returns ``(index, "ok", result)`` or ``(index, "error", traceback)``
    per point — an exception never takes down the chunk's siblings or the
    worker process.  Shared by the local pool workers and the farm
    workers (:mod:`repro.bench.farm`), so both get the same crash
    isolation and the same warm-machine cache via :func:`run_point`.
    """
    out = []
    for index, spec in chunk:
        try:
            out.append((index, "ok", task(spec)))
        except Exception:
            out.append((index, "error", traceback.format_exc()))
    return out


# -- shared chunking / merge (local pool and farm backends) --------------

def chunk_specs(specs: Sequence[dict], *, jobs: Optional[int] = None,
                chunk_size: Optional[int] = None
                ) -> List[List[Tuple[int, dict]]]:
    """Split specs into small, dynamically dispatchable (index, spec) chunks.

    Points have wildly uneven costs (the largest message of a sweep
    dominates), so chunks are kept small — at least ``4 * jobs`` chunks
    when there are that many points — and handed to whichever worker
    frees up first, rather than pre-partitioned statically.  An explicit
    ``chunk_size`` overrides the heuristic (the farm uses it so a
    campaign has enough chunks to survive worker loss mid-run).
    """
    if chunk_size is None:
        chunk_size = max(1, len(specs) // (max(1, jobs or 1) * 4))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    indexed = list(enumerate(specs))
    return [
        indexed[i:i + chunk_size]
        for i in range(0, len(indexed), chunk_size)
    ]


def merge_failures(results: List[object],
                   failures: Sequence[Tuple[int, str, bool]],
                   specs: Sequence[dict], task: Callable,
                   on_error: str) -> List[object]:
    """Fold worker-side failures into an index-ordered result list.

    ``failures`` holds ``(index, worker_traceback, rerunnable)`` triples.
    ``on_error='return'`` records them as :class:`PointFailure` entries
    (traceback and spec preserved).  ``on_error='raise'`` re-runs each
    rerunnable point serially so the real exception propagates with a
    debugger-usable traceback (the worker's formatted traceback attached
    both as ``__cause__`` context and as ``worker_traceback``); points
    marked not-rerunnable — wall-clock timeouts, which would hang this
    process too — raise :class:`WorkerPointError` directly.  Shared by
    :meth:`ParallelExecutor.map` and the farm driver, so local and
    distributed failures surface identically.
    """
    if failures:
        registry = default_registry()
        registry.counter(
            "parallel_point_failures_total",
            "points that failed in a worker (before any serial re-run)",
        ).inc(len(failures))
        dump_flight_record("point-failure", component="parallel")
    for index, worker_tb, rerunnable in sorted(failures):
        if on_error == "return":
            results[index] = PointFailure(index, worker_tb, spec=specs[index])
            continue
        if not rerunnable:
            raise WorkerPointError(
                f"point {index} timed out in a worker (not re-run serially "
                f"— it would hang this process too); worker traceback:\n"
                f"{worker_tb}",
                index=index, worker_traceback=worker_tb,
            )
        # Serial re-run: reproduces the failure with a real traceback
        # (or recovers the point if the failure does not reproduce).
        default_registry().counter(
            "parallel_serial_reruns_total",
            "failed points re-run serially in the parent",
        ).inc()
        try:
            results[index] = task(specs[index])
        except Exception as exc:
            raise WorkerPointError(
                f"point {index} failed in a worker and again on serial "
                f"re-run; worker traceback:\n{worker_tb}",
                index=index, worker_traceback=worker_tb,
            ) from exc
    return results


# -- parent side ---------------------------------------------------------

class ParallelExecutor:
    """Fan independent point specs across worker processes.

    ``map(task, specs)`` returns ``[task(spec) for spec in specs]`` — same
    values, same order — but computed by ``jobs`` worker processes.  The
    pool is created lazily on first use and reused across ``map`` calls;
    use the executor as a context manager (or call :meth:`close`) to shut
    it down.

    ``task`` must be a picklable module-level callable taking one spec
    dict; specs and results must be picklable (see the module docstring's
    spawn-safety rule).
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 start_method: Optional[str] = None,
                 chunk_size: Optional[int] = None,
                 timeout_s: Optional[float] = None):
        self.jobs = resolve_jobs(jobs)
        self.start_method = (
            start_method or os.environ.get(ENV_START_METHOD) or None
        )
        self.chunk_size = chunk_size
        self.timeout_s = resolve_timeout(timeout_s)
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method else multiprocessing.get_context()
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _terminate_pool(self) -> None:
        """Tear down a pool whose workers may be wedged (timeout path).

        ``ProcessPoolExecutor.shutdown`` only waits politely; a hung
        worker never exits, so its process is terminated outright.  The
        executor stays usable — the next ``map`` builds a fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scheduling ------------------------------------------------------
    def _chunks(self, specs: Sequence[dict]) -> List[List[Tuple[int, dict]]]:
        """Chunked scheduling (see :func:`chunk_specs`)."""
        return chunk_specs(specs, jobs=self.jobs, chunk_size=self.chunk_size)

    def map(self, task: Callable[[dict], object], specs: Sequence[dict],
            *, on_error: str = "raise",
            timeout_s: Optional[float] = None,
            trace_ctx: Optional[dict] = None) -> List[object]:
        """Run ``task`` over ``specs``; results ordered by spec index.

        ``on_error='raise'``: a point that failed in its worker is re-run
        serially in this process *after* the surviving points complete, so
        the underlying exception propagates with a real traceback (the
        worker's formatted traceback attached as ``__cause__`` and as
        ``worker_traceback``).  ``on_error='return'``: failed points come
        back as :class:`PointFailure` entries instead (falsy, so
        ``filter(None, ...)`` drops them).

        ``timeout_s`` (argument > executor default > the
        ``REPRO_CHUNK_TIMEOUT_S`` env var) bounds the wall-clock wait for
        chunk progress: when no chunk completes within the window, every
        still-outstanding point fails as a timeout and the wedged pool is
        terminated instead of hanging the whole sweep forever.  Timed-out
        points are never re-run serially (a hung point would hang this
        process too): with ``on_error='raise'`` they raise
        :class:`WorkerPointError` directly.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be raise|return, got {on_error!r}")
        if self.jobs <= 1 or len(specs) <= 1:
            return self._map_serial(task, specs, on_error)
        timeout = resolve_timeout(timeout_s) if timeout_s is not None \
            else self.timeout_s
        pool = self._ensure_pool()
        registry = default_registry()
        results: List[object] = [None] * len(specs)
        failures: List[Tuple[int, str, bool]] = []
        chunk_of = {}
        chunk_meta = {}
        for position, chunk in enumerate(self._chunks(specs)):
            future = pool.submit(_run_chunk, task, chunk)
            chunk_of[future] = chunk
            chunk_meta[future] = (position, time.time())
        pending = set(chunk_of)
        while pending:
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # No chunk finished within the window: the pool is wedged.
                # Fail every outstanding point and put the pool down.
                registry.counter(
                    "parallel_chunk_timeouts_total",
                    "chunks abandoned by the wall-clock stall timeout",
                ).inc(len(pending))
                for future in pending:
                    future.cancel()
                    for index, spec in chunk_of[future]:
                        failures.append((
                            index,
                            f"PointTimeout: no chunk completed within "
                            f"{timeout:g}s wall-clock; point {index} "
                            f"({spec!r}) was still outstanding when the "
                            f"pool was terminated",
                            False,
                        ))
                self._terminate_pool()
                break
            for future in done:
                chunk_ok = 0
                for index, status, value in future.result():
                    if status == "ok":
                        results[index] = value
                        chunk_ok += 1
                    else:
                        failures.append((index, value, True))
                position, submitted_s = chunk_meta[future]
                registry.counter(
                    "parallel_chunks_completed_total",
                    "chunks returned by local pool workers",
                ).inc()
                registry.counter(
                    "parallel_points_completed_total",
                    "points completed by local pool workers",
                ).inc(chunk_ok)
                # Chunk spans are timed parent-side (submit -> result):
                # they bound queueing plus worker execution — the only
                # window this process can observe without perturbing the
                # worker.
                record_span(
                    "parallel.chunk", "parallel",
                    submitted_s, time.time(), parent=trace_ctx,
                    chunk=position, points=len(chunk_of[future]),
                    failed=len(chunk_of[future]) - chunk_ok,
                )
        return merge_failures(results, failures, specs, task, on_error)

    def _map_serial(self, task, specs, on_error) -> List[object]:
        results: List[object] = []
        for index, spec in enumerate(specs):
            if on_error == "return":
                try:
                    results.append(task(spec))
                except Exception:
                    results.append(PointFailure(
                        index, traceback.format_exc(), spec=spec,
                    ))
            else:
                results.append(task(spec))
        return results


def execute_points(specs: Sequence[dict], jobs: Optional[int] = None,
                   *, task: Callable[[dict], object] = run_point,
                   on_error: str = "raise",
                   farm: Optional[str] = None,
                   timeout_s: Optional[float] = None,
                   trace_ctx: Optional[dict] = None) -> List[object]:
    """One-shot convenience: map ``task`` over ``specs`` with ``jobs`` workers.

    Serial (``jobs=1``) runs inline with **fresh machines per point** —
    exactly the historical driver behavior; parallel workers use the
    warm-machine cache (bit-identical, see module docstring).

    ``farm`` (argument > the ``REPRO_FARM`` env var) routes the specs to
    a sweep-farm work-server instead of local processes: same tasks,
    same chunking, same index-ordered merge — see
    :mod:`repro.bench.farm`.  ``timeout_s`` is honored there too, but
    as a *stall* bound (no campaign progress for that long raises)
    rather than a per-chunk bound — a farm's per-point hang protection
    is the lease deadline.
    """
    if farm is None:
        farm = os.environ.get(ENV_FARM, "").strip() or None
    if farm:
        from repro.bench.farm import farm_execute_points

        return farm_execute_points(
            specs, farm=farm, task=task, on_error=on_error, jobs=jobs,
            timeout_s=timeout_s, trace_ctx=trace_ctx,
        )
    resolved = resolve_jobs(jobs)
    # The execute span exists only when a caller passed trace context —
    # standalone sweeps stay traceless; a traced query (the serve sweep
    # path) fans into per-chunk child spans under it.  Trace context
    # never touches the specs themselves: cache keys, fingerprints and
    # pickled results are byte-identical with tracing on or off.
    if trace_ctx is not None:
        trace_span = span(
            "parallel.execute", "parallel", parent=trace_ctx,
            points=len(specs), jobs=resolved,
        )
    else:
        trace_span = None
    if resolved <= 1 or len(specs) <= 1:
        if task in (run_point, run_point_timed):
            specs = [{**spec, "fresh_machine": True} for spec in specs]
        if trace_span is None:
            return ParallelExecutor(1).map(task, specs, on_error=on_error)
        with trace_span:
            return ParallelExecutor(1).map(task, specs, on_error=on_error)
    with ParallelExecutor(resolved, timeout_s=timeout_s) as executor:
        if trace_span is None:
            return executor.map(task, specs, on_error=on_error)
        with trace_span as sp:
            return executor.map(
                task, specs, on_error=on_error, trace_ctx=sp.ctx,
            )
