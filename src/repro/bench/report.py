"""Formatting helpers for paper-style result tables and series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.util.units import format_bytes


@dataclass
class Series:
    """One curve of a figure: algorithm name -> value per x-point."""

    label: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)


def format_table(
    x_label: str,
    x_values: Sequence[int],
    series: Sequence[Series],
    value_format: str = "{:.1f}",
    x_format: str = "bytes",
) -> str:
    """Render series as a fixed-width text table (one row per x value)."""
    if any(len(s.values) != len(x_values) for s in series):
        raise ValueError("series length mismatch against x values")
    headers = [x_label] + [s.label for s in series]
    rows: List[List[str]] = []
    for i, x in enumerate(x_values):
        x_text = format_bytes(x) if x_format == "bytes" else str(x)
        rows.append(
            [x_text] + [value_format.format(s.values[i]) for s in series]
        )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows))
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def speedup(new: Sequence[float], baseline: Sequence[float]) -> List[float]:
    """Element-wise ratio ``new / baseline`` (for improvement factors)."""
    if len(new) != len(baseline):
        raise ValueError("length mismatch")
    return [n / b for n, b in zip(new, baseline)]
