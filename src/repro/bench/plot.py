"""Terminal (ASCII) charts for regenerated figures.

Renders the experiment series the way the paper's figures look — bandwidth
or latency against a log2 message-size axis — using plain characters, so
``python -m repro figure fig10 --plot`` works anywhere.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.bench.report import Series
from repro.util.units import format_bytes

#: glyph per series, reused cyclically
_GLYPHS = "ox+*#@%&"


def render_chart(
    x_values: Sequence[int],
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    y_label: str = "MB/s",
    x_format: str = "bytes",
    log_x: bool = True,
) -> str:
    """Render series as an ASCII scatter/line chart.

    The x axis is log2-scaled by default (message sizes); y is linear from
    zero to a padded maximum.
    """
    if not series or not x_values:
        raise ValueError("nothing to plot")
    if any(len(s.values) != len(x_values) for s in series):
        raise ValueError("series length mismatch against x values")
    if width < 16 or height < 5:
        raise ValueError("chart too small")

    def x_pos(x: float) -> float:
        if log_x:
            lo, hi = math.log2(x_values[0]), math.log2(x_values[-1])
            v = math.log2(x)
        else:
            lo, hi = float(x_values[0]), float(x_values[-1])
            v = float(x)
        if hi == lo:
            return 0.0
        return (v - lo) / (hi - lo)

    y_max = max(max(s.values) for s in series)
    y_max = y_max * 1.05 if y_max > 0 else 1.0
    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    # Plot points, connecting consecutive ones with linear interpolation.
    for si, s in enumerate(series):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        points = [
            (
                int(round(x_pos(x) * (width - 1))),
                int(round((1.0 - v / y_max) * (height - 1))),
            )
            for x, v in zip(x_values, s.values)
        ]
        for (c0, r0), (c1, r1) in zip(points, points[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for t in range(steps + 1):
                c = round(c0 + (c1 - c0) * t / steps)
                r = round(r0 + (r1 - r0) * t / steps)
                grid[r][c] = glyph
        for c, r in points:
            grid[r][c] = glyph

    # Assemble with a y-axis gutter and x-axis ticks.
    gutter = 10
    lines: List[str] = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_max:9.0f}"
        elif r == height - 1:
            label = f"{0:9.0f}"
        elif r == height // 2:
            label = f"{y_max / 2:9.0f}"
        else:
            label = " " * 9
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    # X tick labels at ends and middle.
    def fmt(x: int) -> str:
        return format_bytes(x) if x_format == "bytes" else str(x)

    left, mid, right = (
        fmt(x_values[0]),
        fmt(x_values[len(x_values) // 2]),
        fmt(x_values[-1]),
    )
    axis = [" "] * (width + 1)

    def place(text: str, center: int) -> None:
        start = max(0, min(len(axis) - len(text), center - len(text) // 2))
        for i, ch in enumerate(text):
            axis[start + i] = ch

    place(left, 0)
    place(mid, width // 2)
    place(right, width)
    lines.append(" " * (gutter + 1) + "".join(axis))
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append("")
    lines.append(f"   y: {y_label}    {legend}")
    return "\n".join(lines)
