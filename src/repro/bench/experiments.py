"""Per-figure/table experiment definitions (section VI of the paper).

Every experiment returns an :class:`ExperimentResult` carrying the x-axis,
the per-algorithm series, and derived headline metrics; the ``benchmarks/``
directory wraps each in a pytest-benchmark target that regenerates the
figure's rows, prints them in the paper's layout, and asserts the *shape*
(who wins, by roughly what factor, where crossovers fall).

Machine sizes: the paper ran two racks (8192 processes).  Bandwidth shapes
are set by node-local contention, so the bandwidth experiments default to a
4x4x4 torus (256 processes in quad mode) for tractable simulation times;
the latency and scaling experiments, whose effects come from tree depth,
run machines up to 2048 nodes (8192 processes).  ``EXPERIMENTS.md`` records
the paper-vs-measured comparison for every entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.parallel import execute_points
from repro.bench.report import Series, format_table
from repro.hardware.machine import Mode
from repro.util.units import KIB, MIB


@dataclass
class ExperimentResult:
    """One regenerated figure/table."""

    name: str
    x_label: str
    x_values: List[int]
    series: List[Series]
    #: derived headline numbers (speedups, overheads) keyed by label
    metrics: Dict[str, float] = field(default_factory=dict)
    x_format: str = "bytes"

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def table(self, value_format: str = "{:.1f}") -> str:
        return format_table(
            self.x_label, self.x_values, self.series,
            value_format=value_format, x_format=self.x_format,
        )


def _grid(specs: List[dict], series: List[Series], jobs: Optional[int],
          metric: str = "bandwidth_mbs") -> None:
    """Run a figure's (size x algorithm) grid and fill its series.

    ``specs`` must be in size-major, series-minor order — the exact order
    the historical serial loops measured in — and each spec carries an
    independent simulation, so the grid fans across ``jobs`` worker
    processes (:mod:`repro.bench.parallel`) with results merged back in
    grid order: the regenerated figure is byte-identical to a serial run.
    """
    results = execute_points(specs, jobs)
    for index, result in enumerate(results):
        series[index % len(series)].add(getattr(result, metric))


# --------------------------------------------------------------------------
# Figure 6: latency of MPI_Bcast over the collective network (short msgs)
# --------------------------------------------------------------------------
def fig6_tree_latency(
    dims: Tuple[int, int, int] = (8, 16, 16),
    sizes: Sequence[int] = (4, 16, 64, 256, 1024),
    iters: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Fig 6: ``CollectiveNetwork+Shmem`` vs ``+DMA FIFO`` vs ``(SMP)``.

    Paper (8192 processes): SMP-mode hardware latency ~5.41 µs, the shmem
    scheme 5.83 µs (+0.42 µs), the DMA path considerably slower.  The
    default 8x16x16 torus gives the paper's 2048 nodes.
    """
    algos = [
        ("CollectiveNetwork+Shmem", "tree-shmem", Mode.QUAD),
        ("CollectiveNetwork+DMA FIFO", "tree-dma-fifo", Mode.QUAD),
        ("CollectiveNetwork (SMP)", "tree-smp", Mode.SMP),
    ]
    series = [Series(label) for label, _n, _m in algos]
    specs = [
        {"family": "bcast", "algorithm": name, "x": size,
         "dims": dims, "mode": mode.name, "iters": iters}
        for size in sizes
        for _label, name, mode in algos
    ]
    _grid(specs, series, jobs, metric="elapsed_us")
    shmem = series[0].values
    dma = series[1].values
    smp = series[2].values
    metrics = {
        "shmem_latency_us_smallest": shmem[0],
        "shmem_overhead_us_vs_smp": shmem[0] - smp[0],
        "dma_overhead_us_vs_smp": dma[0] - smp[0],
    }
    return ExperimentResult(
        "fig6", "Message size (bytes)", list(sizes), series, metrics
    )


# --------------------------------------------------------------------------
# Figure 7: bandwidth of MPI_Bcast over the collective network
# --------------------------------------------------------------------------
def fig7_tree_bandwidth(
    dims: Tuple[int, int, int] = (4, 4, 4),
    sizes: Sequence[int] = (
        8 * KIB, 32 * KIB, 128 * KIB, 512 * KIB, 2 * MIB, 4 * MIB
    ),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Fig 7: ``+Shaddr`` vs ``+DMA FIFO`` vs ``+DMA Direct Put`` vs SMP.

    Paper: the shared-address core-specialization scheme outperforms every
    quad-mode algorithm, improving medium-message throughput by up to ~45 %
    (128 KB) over the DMA variants while approaching the SMP envelope.
    """
    algos = [
        ("CollectiveNetwork+Shaddr", "tree-shaddr", Mode.QUAD),
        ("CollectiveNetwork+DMA FIFO", "tree-dma-fifo", Mode.QUAD),
        ("CollectiveNetwork+DMA Direct Put", "tree-dma-direct-put", Mode.QUAD),
        ("CollectiveNetwork (SMP)", "tree-smp", Mode.SMP),
    ]
    series = [Series(label) for label, _n, _m in algos]
    specs = [
        {"family": "bcast", "algorithm": name, "x": size,
         "dims": dims, "mode": mode.name}
        for size in sizes
        for _label, name, mode in algos
    ]
    _grid(specs, series, jobs)
    shaddr = series[0].values
    dma_fifo = series[1].values
    dma_dput = series[2].values
    idx_128k = list(sizes).index(128 * KIB)
    metrics = {
        "shaddr_gain_vs_dma_at_128K": shaddr[idx_128k]
        / max(dma_fifo[idx_128k], dma_dput[idx_128k]),
        "shaddr_peak_mbs": max(shaddr),
    }
    return ExperimentResult(
        "fig7", "Message size (bytes)", list(sizes), series, metrics
    )


# --------------------------------------------------------------------------
# Figure 8: system-call (window-mapping) overhead
# --------------------------------------------------------------------------
def fig8_syscall_caching(
    dims: Tuple[int, int, int] = (2, 2, 2),
    sizes: Sequence[int] = (
        1 * KIB, 8 * KIB, 32 * KIB, 128 * KIB, 512 * KIB, 2 * MIB, 4 * MIB
    ),
    iters: int = 4,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Fig 8: ``CollectiveNetwork+Shaddr`` with vs without mapping caching.

    Each use of a peer buffer costs two system calls unless the window
    service caches the mapping; caching wins most at small/medium sizes and
    the two series converge for large messages.
    """
    series = [
        Series("CollectiveNetwork+Shaddr+caching"),
        Series("CollectiveNetwork+Shaddr+nocaching"),
    ]
    specs = [
        {"family": "bcast", "algorithm": "tree-shaddr", "x": size,
         "dims": dims, "mode": "QUAD", "iters": iters,
         "window_caching": caching}
        for size in sizes
        for caching in (True, False)
    ]
    _grid(specs, series, jobs)
    ratios = [
        c / n for c, n in zip(series[0].values, series[1].values)
    ]
    metrics = {
        "max_caching_gain": max(ratios),
        "gain_at_largest": ratios[-1],
    }
    return ExperimentResult(
        "fig8", "Message size (bytes)", list(sizes), series, metrics
    )


# --------------------------------------------------------------------------
# Figure 9: scaling of the shared-address tree broadcast
# --------------------------------------------------------------------------
def fig9_scaling(
    machines: Sequence[Tuple[int, Tuple[int, int, int]]] = (
        (1024, (4, 8, 8)),
        (2048, (8, 8, 8)),
        (4096, (8, 8, 16)),
        (8192, (8, 16, 16)),
    ),
    sizes: Sequence[int] = (16 * KIB, 128 * KIB, 1 * MIB),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Fig 9: ``CollectiveNetwork+Shaddr`` at 1024/2048/4096/8192 processes.

    Paper: "the algorithm scales well for different process configurations"
    — the curves for different machine sizes nearly coincide because the
    collective network's throughput is size-independent (only the traversal
    latency grows, logarithmically).
    """
    series = [
        Series(f"CollectiveNetwork+Shaddr({procs})")
        for procs, _dims in machines
    ]
    specs = [
        {"family": "bcast", "algorithm": "tree-shaddr", "x": size,
         "dims": dims, "mode": "QUAD"}
        for size in sizes
        for _procs, dims in machines
    ]
    _grid(specs, series, jobs)
    # Spread of bandwidths across machine sizes at the largest message.
    last = [s.values[-1] for s in series]
    metrics = {
        "spread_at_largest": (max(last) - min(last)) / max(last),
    }
    return ExperimentResult(
        "fig9", "Message size (bytes)", list(sizes), series, metrics
    )


# --------------------------------------------------------------------------
# Figure 10: bandwidth of MPI_Bcast over the torus (large msgs)
# --------------------------------------------------------------------------
def fig10_torus_bandwidth(
    dims: Tuple[int, int, int] = (4, 4, 4),
    sizes: Sequence[int] = (
        64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, 1 * MIB, 2 * MIB, 4 * MIB
    ),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Fig 10: ``Torus+Shaddr`` vs ``Torus+FIFO`` vs ``Torus Direct Put``
    (quad) vs ``Torus Direct Put (SMP)``.

    Paper: Torus+Shaddr achieves 2.9x over the baseline at 2 MB (and is
    within ~15 % of the SMP envelope at the 64 KB end); Torus+FIFO reaches
    1.4x; Shaddr bandwidth drops at 4 MB when the working set exceeds the
    8 MB L3.
    """
    algos = [
        ("Torus+Shaddr", "torus-shaddr", Mode.QUAD),
        ("Torus+FIFO", "torus-fifo", Mode.QUAD),
        ("Torus Direct Put", "torus-direct-put", Mode.QUAD),
        ("Torus Direct Put(SMP)", "torus-direct-put-smp", Mode.SMP),
    ]
    series = [Series(label) for label, _n, _m in algos]
    specs = [
        {"family": "bcast", "algorithm": name, "x": size,
         "dims": dims, "mode": mode.name}
        for size in sizes
        for _label, name, mode in algos
    ]
    _grid(specs, series, jobs)
    shaddr = series[0].values
    fifo = series[1].values
    dput = series[2].values
    smp = series[3].values
    sizes_list = list(sizes)
    idx_2m = sizes_list.index(2 * MIB)
    metrics = {
        "shaddr_speedup_at_2M": shaddr[idx_2m] / dput[idx_2m],
        "fifo_speedup_at_2M": fifo[idx_2m] / dput[idx_2m],
        "shaddr_vs_smp_at_64K": shaddr[0] / smp[0],
        "shaddr_droop_4M_vs_2M": shaddr[-1] / shaddr[idx_2m],
    }
    return ExperimentResult(
        "fig10", "Message size (bytes)", sizes_list, series, metrics
    )


# --------------------------------------------------------------------------
# Table I: allreduce throughput over the torus
# --------------------------------------------------------------------------
def table1_allreduce(
    dims: Tuple[int, int, int] = (4, 4, 4),
    counts: Sequence[int] = (
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024
    ),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Table I: allreduce throughput (doubles), New vs Current.

    Paper: "performance benefits across the different messages but the
    algorithm is mostly useful for large messages ... about 33 % improvement
    for 512K doubles."
    """
    series = [Series("New (MB/s)"), Series("Current (MB/s)")]
    names = ["allreduce-torus-shaddr", "allreduce-torus-current"]
    specs = [
        {"family": "allreduce", "algorithm": name, "x": count,
         "dims": dims, "mode": "QUAD"}
        for count in counts
        for name in names
    ]
    _grid(specs, series, jobs)
    new = series[0].values
    cur = series[1].values
    ratios = [n / c for n, c in zip(new, cur)]
    metrics = {
        "improvement_at_512K": ratios[-1],
        "improvement_at_16K": ratios[0],
    }
    return ExperimentResult(
        "table1", "Doubles", list(counts), series, metrics, x_format="count"
    )
