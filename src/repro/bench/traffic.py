"""Seeded multi-tenant traffic: overlapping collective jobs on one machine.

Production machines rarely run one collective at a time: several jobs,
each on its own sub-communicator, share nodes and wires.  This module
reproduces that regime in simulation.  A **traffic scenario** is drawn
from a single integer seed: ``njobs`` collective jobs, each a
(family, algorithm, size) pick from a point-to-point-portable menu
placed on a contiguous — and usually overlapping — node range of one
:class:`~repro.hardware.machine.Machine`.  Every job is measured twice:

* **isolated** — the job alone on a fresh machine of the same geometry,
  through the standard :func:`~repro.bench.harness.run_collective`
  driver (so manifests, telemetry and the wire-compatibility gate all
  apply);
* **contended** — all jobs at once on one shared machine, their rank
  coroutines interleaved on a single DES engine, their transfers meeting
  in the shared :class:`~repro.sim.flownet.FlowNetwork` channels and
  node DMA/memory ports.

The per-job ``contended_us / isolated_us`` ratio is the cross-job
contention signal; jobs whose node ranges overlap contend for intra-node
ports too, not just wires.

Sub-communicators are modelled by :class:`MachineView`: a zero-copy view
of a contiguous node slice that quacks like a Machine (local rank space,
sliced ``nodes``/``dma``, a :class:`NetworkView` that translates node
indices before delegating to the parent backend).  Because the view
delegates to the *parent's* channels and ports, two views that share
nodes or links genuinely share their resources — contention is physical,
not modelled.  Views are for healthy machines: fault schedules address
the parent's global node space and are not translated.

Determinism: the whole report replays from ``seed`` alone.  Isolated
points and the contended scenario are independent deterministic
simulations dispatched through
:func:`~repro.bench.parallel.execute_points`, so ``jobs=N`` is
byte-identical to serial.  Every job carries a real payload and is
bit-verified in both regimes.

CLI: ``python -m repro traffic --seed 7 --network fattree --jobs 2``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.collectives.base import InvocationBase
from repro.collectives.registry import get_algorithm
from repro.hardware.machine import Machine, Mode
from repro.hardware.network import UnsupportedTopologyError
from repro.sim.sync import SimBarrier, SimCounter

#: the job menu: point-to-point algorithms that run on every backend,
#: with the sizes a job may draw.  Kept explicit (never "auto") so a
#: scenario replays identically even if the selection tables change.
JOB_MENU: Tuple[Tuple[str, str, Tuple[int, ...]], ...] = (
    ("bcast", "ring-pipelined", (16384, 65536)),
    ("allreduce", "allreduce-ring-pipelined", (512, 2048)),
    ("allgather", "allgather-ring-current", (1024, 4096)),
    ("reduce", "reduce-torus-current", (512, 2048)),
    ("gather", "gather-ring-current", (1024, 4096)),
    ("scatter", "scatter-ring-current", (1024, 4096)),
)


class NetworkView:
    """A sub-range window onto a parent :class:`NetworkBackend`.

    Topology queries and transfers translate the view's local node
    indices into the parent's space and delegate, so a transfer issued
    by a view rides the parent's actual channels (and contends with
    every other tenant's traffic).  The channel surface
    (``iter_channels`` / ``channels_touching`` / hooks) is the parent's,
    in global node space.

    Views host only the portable wires: the torus line-broadcast
    primitive needs full coordinate lines, which a node slice does not
    generally contain.
    """

    wires: Tuple[str, ...] = ("ptp", "gi")

    def __init__(self, view: "MachineView", parent) -> None:
        self._view = view
        self._parent = parent
        self.name = parent.name
        self.dims = parent.dims
        self.wrap = parent.wrap

    @property
    def nnodes(self) -> int:
        return self._view.nnodes

    def supports_wire(self, wire: str) -> bool:
        return wire in self.wires

    # -- topology (local node space, translated) --------------------------
    def coords(self, index: int):
        return self._parent.coords(index + self._view.node_start)

    def hop_distance(self, src: int, dst: int) -> int:
        off = self._view.node_start
        return self._parent.hop_distance(src + off, dst + off)

    def ring_order(self, color, root: int) -> List[int]:
        # A rotation is a valid Hamiltonian order on every backend; the
        # parent's ring (a torus snake, say) is over nodes the view may
        # not own, so the view picks its own.
        n = self._view.nnodes
        sign = getattr(color, "sign", 1)
        return [(root + sign * step) % n for step in range(n)]

    # -- transfers (translated, shared with the parent) --------------------
    def ptp_send(self, color: int, src: int, dst: int, nbytes: int,
                 name: str = "ptp"):
        off = self._view.node_start
        return self._parent.ptp_send(
            color, src + off, dst + off, nbytes, name=name
        )

    # -- channel surface (parent's, global node space) ---------------------
    def iter_channels(self):
        return self._parent.iter_channels()

    def channels_touching(self, node: int):
        return self._parent.channels_touching(node)

    def add_channel_hook(self, hook) -> None:
        self._parent.add_channel_hook(hook)

    def remove_channel_hook(self, hook) -> None:
        self._parent.remove_channel_hook(hook)


class MachineView:
    """A contiguous node slice of a Machine, presented as a Machine.

    Rank and node indices are local (``0 .. node_count*ppn-1`` and
    ``0 .. node_count-1``); ``nodes``/``dma`` are slices of the parent's
    lists, so the view's tenants run on the parent's actual cores, DMA
    engines and memory ports.  Everything not overridden here — engine,
    flow network, calibrated params, fault registry — delegates to the
    parent, which is what makes co-tenant contention real.
    """

    def __init__(self, parent: Machine, node_start: int, node_count: int):
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        if not 0 <= node_start <= parent.nnodes - node_count:
            raise ValueError(
                f"node range [{node_start}, {node_start + node_count}) "
                f"outside the parent's {parent.nnodes} nodes"
            )
        self.parent = parent
        self.node_start = node_start
        self.nnodes = node_count
        self.mode = parent.mode
        self.ppn = parent.ppn
        self.nprocs = node_count * parent.ppn
        self.nodes = parent.nodes[node_start:node_start + node_count]
        self.dma = parent.dma[node_start:node_start + node_count]
        self.network = NetworkView(self, parent.network)

    def __getattr__(self, name: str):
        # engine, flownet, params, memory_model, faults, retry_policy,
        # spawn, run, rebase_time, telemetry hooks, ... — the parent's.
        return getattr(self.parent, name)

    @property
    def torus(self):
        raise UnsupportedTopologyError(
            "a MachineView hosts only point-to-point wires; torus-only "
            "primitives are unavailable on a sub-communicator view"
        )

    # -- rank mapping (local space) ----------------------------------------
    def rank_to_node(self, rank: int) -> int:
        self.check_rank(rank)
        return rank // self.ppn

    def rank_to_local(self, rank: int) -> int:
        self.check_rank(rank)
        return rank % self.ppn

    def node_ranks(self, node_index: int) -> List[int]:
        if not 0 <= node_index < self.nnodes:
            raise ValueError(f"node index out of range: {node_index}")
        base = node_index * self.ppn
        return list(range(base, base + self.ppn))

    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise ValueError(
                f"rank out of range: {rank} (nprocs={self.nprocs})"
            )

    _check_rank = check_rank

    # -- machine services (view-scoped) ------------------------------------
    def make_barrier(self, parties: Optional[int] = None) -> SimBarrier:
        n = parties if parties is not None else self.nprocs
        return SimBarrier(
            self.parent.engine, n, latency=self.parent.params.barrier_latency
        )

    def make_counter(
        self, name: str = "counter", node: Optional[int] = None,
        value: float = 0.0,
    ) -> SimCounter:
        translated = None if node is None else node + self.node_start
        return self.parent.make_counter(name, node=translated, value=value)

    def set_working_set(self, nbytes: int):
        """Install the job's cache regime on the view's nodes only.

        Co-tenants sharing a node overwrite each other's regime in job
        order — deterministic, and the right bias: the contention signal
        traffic scenarios measure lives in the shared ports and wires,
        not in per-tenant cache partitioning (which BG/P does not do).
        """
        regime = self.parent.memory_model.regime(nbytes)
        for node in self.nodes:
            node.set_regime(regime)
        return regime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MachineView nodes=[{self.node_start}, "
            f"{self.node_start + self.nnodes}) of {self.parent!r}>"
        )


# -- scenario drawing -----------------------------------------------------

def overlapping_pairs(jobs: List[dict]) -> List[Tuple[int, int]]:
    """Index pairs of jobs whose node ranges intersect."""
    pairs = []
    for a in range(len(jobs)):
        for b in range(a + 1, len(jobs)):
            lo = max(jobs[a]["node_start"], jobs[b]["node_start"])
            hi = min(
                jobs[a]["node_start"] + jobs[a]["node_count"],
                jobs[b]["node_start"] + jobs[b]["node_count"],
            )
            if lo < hi:
                pairs.append((a, b))
    return pairs


def draw_jobs(seed: int, nnodes: int, njobs: int) -> List[dict]:
    """Draw a traffic scenario's job list from one integer seed.

    Each job is a menu pick plus a contiguous node range of at least two
    nodes.  If the draw happens to produce fully disjoint ranges, job 1
    is deterministically moved onto job 0's range — a scenario exists to
    measure cross-job contention, so it always contains at least one
    overlapping pair (when ``njobs >= 2``).
    """
    if nnodes < 2:
        raise ValueError(f"traffic needs >= 2 nodes, got {nnodes}")
    if njobs < 1:
        raise ValueError(f"njobs must be >= 1, got {njobs}")
    rng = np.random.default_rng(seed)
    jobs: List[dict] = []
    for index in range(njobs):
        family, algorithm, sizes = JOB_MENU[int(rng.integers(len(JOB_MENU)))]
        x = int(sizes[int(rng.integers(len(sizes)))])
        count = int(rng.integers(2, nnodes + 1))
        start = int(rng.integers(0, nnodes - count + 1))
        jobs.append({
            "job": index,
            "family": family,
            "algorithm": algorithm,
            "x": x,
            "node_start": start,
            "node_count": count,
            # distinct per-job payload so verification catches cross-job
            # payload bleed, not just intra-job corruption
            "payload_seed": seed * 7919 + index,
        })
    if njobs >= 2 and not overlapping_pairs(jobs):
        mover = jobs[1]
        mover["node_start"] = jobs[0]["node_start"]
        mover["node_count"] = min(
            mover["node_count"], nnodes - mover["node_start"]
        )
    return jobs


# -- execution ------------------------------------------------------------

def _build_machine(spec: dict) -> Machine:
    return Machine(
        torus_dims=tuple(spec["dims"]), mode=Mode[spec["mode"]],
        network=spec["network"],
    )


def run_contended(machine: Machine, jobs: List[dict]) -> List[dict]:
    """Run every job at once on ``machine``; per-job elapsed µs.

    Each job gets a :class:`MachineView` of its node range, its own
    barrier and its own payload; all jobs' rank coroutines are spawned
    before the engine runs, so their transfers genuinely interleave.
    Every job's payload is bit-verified after the drain.
    """
    from repro.bench.harness import FAMILY_SPECS

    engine = machine.engine
    entries = []
    procs = []
    for job in jobs:
        view = MachineView(machine, job["node_start"], job["node_count"])
        spec = FAMILY_SPECS[job["family"]]
        cls = get_algorithm(job["family"], job["algorithm"])
        wire = getattr(cls, "network", None)
        if wire is not None and not view.network.supports_wire(wire):
            raise UnsupportedTopologyError(
                f"{job['family']}/{cls.name} rides the {wire!r} wire, "
                "which a sub-communicator view does not provide "
                f"(supported: {list(view.network.wires)})"
            )
        payload = spec.payload(
            view, job["x"], np.random.default_rng(job["payload_seed"])
        )
        view.set_working_set(spec.working_set(view, job["x"]))
        invocation = InvocationBase.session().adopt(
            spec.build(cls, view, job["x"], payload, 0, True)
        )
        barrier = view.make_barrier()
        times = [0.0] * view.nprocs

        def rank_loop(rank, invocation=invocation, barrier=barrier,
                      times=times):
            yield barrier.wait()
            start = engine.now
            yield from invocation.proc(rank)
            times[rank] = engine.now - start

        procs.extend(
            machine.spawn(rank_loop(rank), name=f"job{job['job']}.r{rank}")
            for rank in range(view.nprocs)
        )
        entries.append((invocation, times))
    engine.run_until_processes_finish(procs)
    results = []
    for invocation, times in entries:
        invocation.verify()
        results.append({"elapsed_us": max(times)})
    return results


def traffic_point(spec: dict):
    """Worker task: one isolated job, or the whole contended scenario.

    Module-level and spec-driven so it fans out through
    :func:`~repro.bench.parallel.execute_points` (pickle specs, not
    machines).  Machines are always built fresh — identical in serial
    and parallel runs by construction.
    """
    machine = _build_machine(spec)
    if spec["scenario"] == "isolated":
        from repro.bench.harness import run_collective

        job = spec["job"]
        view = MachineView(machine, job["node_start"], job["node_count"])
        result = run_collective(
            view, job["family"], job["algorithm"], job["x"],
            iters=1, verify=True, seed=job["payload_seed"], analytic=False,
        )
        return {
            "elapsed_us": result.elapsed_us,
            "solver": result.manifest.solver_mode,
        }
    if spec["scenario"] == "contended":
        return run_contended(machine, spec["jobs"])
    raise ValueError(f"unknown traffic scenario {spec['scenario']!r}")


def run_traffic(
    *,
    seed: int = 0,
    njobs: int = 3,
    dims: Tuple[int, int, int] = (2, 2, 2),
    mode: Mode = Mode.QUAD,
    network: str = "torus",
    jobs: Optional[int] = None,
) -> dict:
    """Draw and measure a multi-tenant traffic scenario.

    Returns the traffic report: scenario metadata, one record per job
    (placement, isolated/contended elapsed µs, slowdown ratio), and the
    cross-job summary.  Replayable from ``seed`` alone; ``jobs`` fans the
    isolated points and the contended scenario across worker processes
    with byte-identical results.
    """
    from repro.bench.parallel import execute_points

    geometry = Machine(torus_dims=tuple(dims), mode=mode, network=network)
    job_list = draw_jobs(seed, geometry.nnodes, njobs)
    base = {"dims": tuple(dims), "mode": mode.name, "network": network}
    specs = [
        {"scenario": "isolated", "job": job, **base} for job in job_list
    ] + [
        {"scenario": "contended", "jobs": job_list, **base}
    ]
    measured = execute_points(specs, jobs, task=traffic_point)
    isolated, contended = measured[:njobs], measured[njobs]
    records = []
    for job, iso, con in zip(job_list, isolated, contended):
        slowdown = (
            con["elapsed_us"] / iso["elapsed_us"]
            if iso["elapsed_us"] > 0 else 1.0
        )
        records.append({
            **{k: job[k] for k in (
                "job", "family", "algorithm", "x",
                "node_start", "node_count",
            )},
            "isolated_us": iso["elapsed_us"],
            "contended_us": con["elapsed_us"],
            "slowdown": slowdown,
        })
    slowdowns = [r["slowdown"] for r in records]
    return {
        "meta": {
            "schema": 1,
            "seed": seed,
            "njobs": njobs,
            "dims": list(dims),
            "mode": mode.name,
            "network": network,
            "solver": isolated[0]["solver"] if isolated else "incremental",
        },
        "jobs": records,
        "summary": {
            "overlapping_pairs": len(overlapping_pairs(job_list)),
            "mean_slowdown": sum(slowdowns) / len(slowdowns),
            "max_slowdown": max(slowdowns),
        },
    }


# -- reporting ------------------------------------------------------------

def format_traffic_report(report: dict) -> str:
    """Render a traffic report as the table the CLI prints."""
    meta, summary = report["meta"], report["summary"]
    dims = "x".join(str(d) for d in meta["dims"])
    lines = [
        f"traffic seed={meta['seed']} network={meta['network']} "
        f"dims={dims} mode={meta['mode'].lower()} njobs={meta['njobs']}",
        f"{'job':>3}  {'family':10s} {'algorithm':24s} {'x':>7} "
        f"{'nodes':>9}  {'isolated':>11}  {'contended':>11}  {'slow':>6}",
    ]
    for record in report["jobs"]:
        nodes = (
            f"[{record['node_start']},"
            f"{record['node_start'] + record['node_count']})"
        )
        lines.append(
            f"{record['job']:>3}  {record['family']:10s} "
            f"{record['algorithm']:24s} {record['x']:>7} {nodes:>9}  "
            f"{record['isolated_us']:>9.3f}us  "
            f"{record['contended_us']:>9.3f}us  "
            f"{record['slowdown']:>5.2f}x"
        )
    lines.append(
        f"overlapping pairs: {summary['overlapping_pairs']}  "
        f"mean slowdown: {summary['mean_slowdown']:.2f}x  "
        f"max: {summary['max_slowdown']:.2f}x"
    )
    return "\n".join(lines)


def record_bench_entry(path: str, label: str, report: dict) -> dict:
    """Store a traffic report as a labelled ``BENCH_core.json`` entry.

    Three sweeps per entry, all gated by ``repro report --check-bench``'s
    per-point ``elapsed_us`` tolerance: per-job contended time
    (``multitenant``), per-job isolated time (``multitenant-isolated``),
    and the contended/isolated ratio (``multitenant-slowdown`` — the
    ratio rides the ``elapsed_us`` field, which is what the gate
    compares; the x axis is the job index throughout).
    """
    from repro.bench.perfsuite import save_entry

    solver = report["meta"].get("solver", "incremental")

    def sweep(points: List[Dict[str, float]]) -> dict:
        return {
            "points": points, "wall_s": 0.0,
            "solver": solver, "analytic_hits": 0,
        }

    sweeps = {
        "multitenant": sweep([
            {
                "x": r["job"], "elapsed_us": r["contended_us"],
                "isolated_us": r["isolated_us"],
                "slowdown": r["slowdown"],
                "family": r["family"], "algorithm": r["algorithm"],
            }
            for r in report["jobs"]
        ]),
        "multitenant-isolated": sweep([
            {"x": r["job"], "elapsed_us": r["isolated_us"]}
            for r in report["jobs"]
        ]),
        "multitenant-slowdown": sweep([
            {"x": r["job"], "elapsed_us": r["slowdown"]}
            for r in report["jobs"]
        ]),
    }
    return save_entry(path, label, sweeps, smoke=False)
