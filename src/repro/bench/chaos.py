"""Seeded chaos campaigns: collectives under transient-fault timelines.

Two layers live here:

:func:`run_resilient_collective`
    the resilience driver.  It runs one collective under an installed
    :class:`~repro.hardware.fault_schedule.FaultSchedule` with a deadline;
    when a :class:`~repro.sim.engine.TransientFaultError` escapes (window
    retry budget exhausted, counters stalled past the deadline), it
    discards the machine, degrades one rung down the fallback ladder
    (:func:`repro.collectives.registry.fallback_chain` — Shaddr -> FIFO ->
    DMA), reinstalls the *remaining* fault timeline on a fresh machine,
    and tries again.  Payloads are verified bit-exact on whatever protocol
    finally completes; the returned
    :class:`~repro.collectives.base.CollectiveResult` carries the
    ``retries`` / ``fallbacks`` / ``recovery_time`` story.

:func:`chaos_campaign`
    the seeded soak harness behind ``repro chaos``.  For every registered
    algorithm of the covered families it replays ``runs`` randomized fault
    campaigns (each point's schedule drawn from a generator seeded by the
    ``(seed, algorithm index, run)`` triple, so a campaign is replayable
    from a single integer), plus two *deterministic ladder scenarios* —
    permanent window-mapping exhaustion stacked with a permanent counter
    stall — that force a full Shaddr -> FIFO -> DMA walk on both the tree
    and torus chains.  Results, including recovery-latency distributions,
    land in ``BENCH_robustness.json``.

    Because every point reseeds from its own triple, points are mutually
    independent: ``jobs=N`` fans them across worker processes
    (:mod:`repro.bench.parallel`; each worker redraws its point's
    schedule locally from the triple — no sim object crosses the process
    boundary) and the merged report is identical to a serial campaign.

Verification cost: the payload is built **once** per resilient run and
reused across fallback attempts (``payload=`` on ``run_collective``), the
root's result buffer is copy-on-write, and the bit-exactness checks
compare through zero-copy ``memoryview`` casts
(:func:`repro.util.buffers.same_bytes`) — a 2 MB chaos attempt no longer
pays an extra O(n) payload copy per attempt.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.harness import build_payload, run_collective
from repro.bench.parallel import execute_points, resolve_jobs
from repro.collectives.base import CollectiveResult
from repro.collectives.registry import fallback_chain, iter_algorithms
from repro.hardware.fault_schedule import (
    CounterStall,
    FaultSchedule,
    WindowFault,
)
from repro.hardware.machine import Machine, Mode
from repro.hardware.network import backend_class
from repro.sim.engine import TransientFaultError

#: families the campaign sweeps (the fallback ladders under test)
CAMPAIGN_FAMILIES: Tuple[str, ...] = ("bcast", "allreduce")

#: per-family choices of the harness's natural size argument ``x``
SIZE_CHOICES: Dict[str, Tuple[int, ...]] = {
    "bcast": (4096, 65536),
    "allreduce": (512, 4096),
}
SMOKE_SIZE_CHOICES: Dict[str, Tuple[int, ...]] = {
    "bcast": (4096,),
    "allreduce": (512,),
}

#: one iteration of any campaign collective finishes far inside this
DEFAULT_DEADLINE_US = 20_000.0


def run_resilient_collective(
    machine_factory: Callable[[], Machine],
    family: str,
    algorithm: str,
    x: int,
    *,
    schedule: Optional[FaultSchedule] = None,
    deadline_us: float = DEFAULT_DEADLINE_US,
    root: int = 0,
    iters: int = 1,
    verify: bool = True,
    seed: int = 1234,
) -> CollectiveResult:
    """Run one collective, degrading down the fallback ladder on faults.

    ``machine_factory`` builds a fresh machine per attempt (a faulted
    machine is discarded, like a torn-down protocol context).  The fault
    timeline is re-installed on each fresh machine shifted by the campaign
    time already burned, so a window that opened during attempt 1 is still
    open (with its remaining duration) when attempt 2 starts.  Raises
    :class:`TransientFaultError` if every rung of the ladder faults out.
    """
    machine = machine_factory()
    chain = fallback_chain(family, algorithm, machine.ppn,
                           wires=machine.network.wires)
    # One payload for every attempt: rebuilding x pseudo-random bytes per
    # rung is pure waste (shapes depend only on geometry, which the
    # factory fixes), and the harness never mutates it — the root's
    # result buffer is copy-on-write over this very array.
    payload = build_payload(machine, family, x, seed) if verify else None
    fallbacks: List[str] = []
    recovery_us = 0.0
    retries = 0
    failures: List[str] = []
    for index, protocol in enumerate(chain):
        if index > 0:
            machine = machine_factory()
        if schedule is not None:
            schedule.install(machine, at=recovery_us)
        try:
            result = run_collective(
                machine, family, protocol, x,
                root=root, iters=iters, verify=verify, seed=seed,
                steady_state=False, deadline_us=deadline_us,
                payload=payload,
            )
        except TransientFaultError as fault:
            fallbacks.append(protocol)
            recovery_us += machine.engine.now
            retries += machine.faults.window_retries
            failures.append(f"{protocol}: {fault}")
            continue
        result.retries += retries
        result.fallbacks = fallbacks
        result.recovery_time = recovery_us
        return result
    raise TransientFaultError(
        f"{family}/{algorithm}: every protocol in the fallback chain "
        f"faulted out ({'; '.join(failures)})"
    )


# -- campaign ------------------------------------------------------------

def _mode_for(modes: Sequence[int]) -> Mode:
    """The richest operating mode an algorithm supports."""
    return Mode(max(modes))


def _machine_factory(dims: Tuple[int, int, int], mode: Mode,
                     network: str = "torus"):
    def build() -> Machine:
        return Machine(torus_dims=dims, mode=mode, network=network)
    return build


def _record(family: str, algorithm: str, mode: Mode, x: int,
            result: CollectiveResult) -> dict:
    return {
        "family": family,
        "algorithm": algorithm,
        "mode": mode.name,
        "x": x,
        "nbytes": result.nbytes,
        "completed_with": result.algorithm,
        "fallbacks": list(result.fallbacks),
        "retries": result.retries,
        "recovery_us": round(result.recovery_time, 3),
        "elapsed_us": round(result.elapsed_us, 3),
        "payload_ok": True,
    }


#: the deterministic full-ladder scenarios run by every campaign
_LADDER_CASES: Tuple[Tuple[str, str, int], ...] = (
    ("bcast", "torus-shaddr", 65536),
    ("bcast", "tree-shaddr", 65536),
)

#: ladder scenarios for switched point-to-point backends (no torus/tree
#: wires there): the shared-address allgather still walks down to its
#: DMA-counter-driven baseline
_PTP_LADDER_CASES: Tuple[Tuple[str, str, int], ...] = (
    ("allgather", "allgather-ring-shaddr", 4096),
)


def _ladder_cases(network: str) -> Tuple[Tuple[str, str, int], ...]:
    return _LADDER_CASES if network == "torus" else _PTP_LADDER_CASES


#: (family, name) pairs pinned out of a backend's random campaign.  The
#: committed BENCH_robustness.json replays its seeded draws from each
#: algorithm's position in the target list, so the torus list must stay
#: exactly as it was when the baseline was recorded: switched-fabric
#: algorithms added since are excluded there (they are exercised by the
#: fattree/leafspine campaigns, where they are the whole point).
_CAMPAIGN_EXCLUDE: Dict[str, frozenset] = {
    "torus": frozenset({
        ("bcast", "ring-pipelined"),
        ("allreduce", "allreduce-ring-pipelined"),
    }),
}


def chaos_point(spec: dict) -> dict:
    """Worker task: replay one campaign point from its picklable spec.

    Spawn-safety: the spec carries only names, dims and seed material —
    the worker redraws the point's fault schedule from its
    ``(seed, algorithm index, run)`` RNG triple (or rebuilds the
    permanent-fault ladder schedule) and constructs machines locally, so
    a parallel point is the exact computation the serial campaign runs.
    Payload mismatches come back as ``{"mismatch": ...}`` records instead
    of raising, preserving the serial campaign's keep-going behavior.
    """
    dims = tuple(spec["dims"])
    mode = Mode[spec["mode"]]
    network = spec.get("network", "torus")
    factory = _machine_factory(dims, mode, network)
    if spec["scenario"] == "ladder":
        # Permanent (never-clearing) window-mapping exhaustion kills the
        # shared-address rung; a permanent counter stall kills the
        # FIFO/shmem rung, whose progress rides software message
        # counters; the DMA rung uses hardware byte counters and events,
        # which neither fault touches, and completes bit-correct.
        schedule = FaultSchedule([
            WindowFault(start=0.0, duration=None, node=None,
                        slots_available=0),
            CounterStall(start=0.0, duration=None, node=None),
        ])
        x = spec["x"]
        verify_seed = 1234
        faults = None
    else:
        rng = np.random.default_rng(spec["rng_key"])
        x = int(rng.choice(spec["sizes"]))
        # Horizon chosen at collective scale (tens to hundreds of µs)
        # so drawn windows actually overlap the run.
        schedule = FaultSchedule.random(
            rng, factory().nnodes, horizon_us=400.0, max_faults=3
        )
        verify_seed = spec["verify_seed"]
        faults = [f.label() for f in schedule.faults]
    try:
        result = run_resilient_collective(
            factory, spec["family"], spec["algorithm"], x,
            schedule=schedule, deadline_us=spec["deadline_us"],
            verify=True, seed=verify_seed,
        )
    except AssertionError as mismatch:
        return {
            "mismatch": f"{spec['family']}/{spec['algorithm']}: {mismatch}"
        }
    record = _record(spec["family"], spec["algorithm"], mode, x, result)
    if spec["scenario"] == "ladder":
        record["scenario"] = "permanent-window-fault+counter-stall"
    else:
        record["faults"] = faults
    record["summary_line"] = str(result)
    return record


def _ladder_scenarios(dims: Tuple[int, int, int],
                      jobs: Optional[int] = None,
                      network: str = "torus") -> List[dict]:
    """Deterministic full-ladder walks: Shaddr -> FIFO -> DMA, forced."""
    specs = [
        {"scenario": "ladder", "family": family, "algorithm": algorithm,
         "x": x, "dims": dims, "mode": Mode.QUAD.name,
         "deadline_us": DEFAULT_DEADLINE_US,
         **({"network": network} if network != "torus" else {})}
        for family, algorithm, x in _ladder_cases(network)
    ]
    records = execute_points(specs, jobs, task=chaos_point)
    for record in records:
        record.pop("summary_line", None)
    return records


def chaos_campaign(
    *,
    seed: int = 0,
    runs: int = 3,
    dims: Tuple[int, int, int] = (2, 2, 2),
    deadline_us: float = DEFAULT_DEADLINE_US,
    smoke: bool = False,
    out_path: Optional[str] = "BENCH_robustness.json",
    verbose: bool = True,
    jobs: Optional[int] = None,
    network: str = "torus",
    farm: Optional[str] = None,
) -> dict:
    """Randomized fault campaigns over every registered campaign algorithm.

    Replayable from ``seed`` alone.  Returns (and, unless ``out_path`` is
    None, writes) the robustness report; ``smoke`` shrinks the sweep for
    CI.  Raises :class:`AssertionError` if any payload mismatched.

    ``jobs`` fans the campaign's points — every (algorithm, run) pair
    plus the two ladder scenarios — across worker processes.  Each point
    reseeds its own generator from ``(seed, algorithm index, run)``, so
    the schedule a worker draws is exactly the one the serial loop would
    have drawn: the report (records, fault labels, summary counters) is
    identical for any job count.  ``farm`` routes the same points to a
    sweep-farm work-server instead (:mod:`repro.bench.farm`) with the
    same byte-identical merge.
    """
    if smoke:
        runs = min(runs, 1)
    sizes = SMOKE_SIZE_CHOICES if smoke else SIZE_CHOICES
    jobs = resolve_jobs(jobs)

    # Only algorithms whose wire the chosen backend hosts enter the
    # campaign (a fat-tree machine has no torus or tree wires).
    wires = backend_class(network).wires
    excluded = _CAMPAIGN_EXCLUDE.get(network, frozenset())
    targets = [
        info for family in CAMPAIGN_FAMILIES
        for info in iter_algorithms(family)
        if info.data_carrying and info.network in wires
        and (info.family, info.name) not in excluded
    ]
    specs = [
        {
            "scenario": "random",
            "family": info.family,
            "algorithm": info.name,
            "mode": _mode_for(info.modes).name,
            "dims": dims,
            "sizes": sizes[info.family],
            "rng_key": [seed, alg_index, run],
            "verify_seed": seed + run,
            "deadline_us": deadline_us,
            **({"network": network} if network != "torus" else {}),
        }
        for alg_index, info in enumerate(targets)
        for run in range(runs)
    ] + [
        {"scenario": "ladder", "family": family, "algorithm": algorithm,
         "x": x, "dims": dims, "mode": Mode.QUAD.name,
         "deadline_us": deadline_us,
         **({"network": network} if network != "torus" else {})}
        for family, algorithm, x in _ladder_cases(network)
    ]
    outcomes = execute_points(specs, jobs, task=chaos_point, farm=farm)

    records: List[dict] = []
    ladder: List[dict] = []
    mismatches: List[str] = []
    for spec, outcome in zip(specs, outcomes):
        if "mismatch" in outcome:
            mismatches.append(outcome["mismatch"])
            continue
        summary_line = outcome.pop("summary_line", None)
        if spec["scenario"] == "ladder":
            ladder.append(outcome)
            if verbose:
                print(
                    f"  ladder {outcome['algorithm']}: "
                    f"{'>'.join(outcome['fallbacks'] + [outcome['completed_with']])}"
                )
        else:
            records.append(outcome)
            if verbose:
                run = spec["rng_key"][2]
                print(f"  {spec['family']}/{spec['algorithm']} run {run}: "
                      f"{summary_line}")

    all_records = records + ladder
    fallback_events = sum(len(r["fallbacks"]) for r in all_records)
    full_walks = sum(1 for r in all_records if len(r["fallbacks"]) >= 2)
    recovery: Dict[str, dict] = {}
    for record in all_records:
        bucket = recovery.setdefault(
            record["algorithm"],
            {"count": 0, "recovered": 0, "mean_us": 0.0, "max_us": 0.0},
        )
        bucket["count"] += 1
        if record["recovery_us"] > 0.0:
            bucket["recovered"] += 1
        bucket["mean_us"] += record["recovery_us"]
        bucket["max_us"] = max(bucket["max_us"], record["recovery_us"])
    for bucket in recovery.values():
        bucket["mean_us"] = round(bucket["mean_us"] / bucket["count"], 3)

    report = {
        "meta": {
            "seed": seed,
            "runs_per_algorithm": runs,
            "dims": list(dims),
            "deadline_us": deadline_us,
            "smoke": smoke,
            # recorded only off-torus so the committed torus
            # BENCH_robustness.json stays byte-identical
            **({"network": network} if network != "torus" else {}),
        },
        "runs": records,
        "ladder": ladder,
        "recovery_us": recovery,
        "summary": {
            "total_runs": len(all_records),
            "payload_mismatches": len(mismatches),
            "fallback_events": fallback_events,
            "full_ladder_walks": full_walks,
        },
    }
    if out_path is not None:
        # Labelled bench entries (e.g. the farm's robustness rollups, see
        # repro.bench.farm.record_farm_bench_entry) live in the same
        # document; a campaign rewrite must not drop them.
        try:
            with open(out_path) as handle:
                existing = json.load(handle).get("entries")
        except (OSError, json.JSONDecodeError):
            existing = None
        if existing is not None:
            report = {**report, "entries": existing}
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        if verbose:
            print(f"wrote {out_path}")
    if mismatches:
        raise AssertionError(
            f"{len(mismatches)} payload mismatch(es): " + "; ".join(mismatches)
        )
    return report


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    chaos_campaign(seed=0, smoke=True)
