"""Self-timing performance suite for the simulator core.

The repo's figures are produced by sweeping message sizes through the
Fig-5 harness; every sweep point is dominated by the DES engine's event
loop and the flow network's max-min re-solves.  This module times three
representative sweeps —

* ``tree_bcast``  — shared-address tree broadcast on a 512-node machine
  (deep collective-network pipelines, many small node-local components);
* ``torus_bcast`` — shared-address torus broadcast on a 4x4x4 machine
  (machine-spanning flow components, the solver's worst case);
* ``torus_allreduce`` — the reduce-scatter/allgather torus allreduce
  (long dependency chains through memory ports);

— and records wall-clock seconds plus the simulated results in
``BENCH_core.json``, establishing the repo's performance trajectory.
Entries are keyed by label (``baseline``, ``current``, ...), so a run
before and after an optimisation gives an honest speedup figure *and* a
semantic regression check: the simulated microseconds of two entries
recorded by the same harness must match bit-for-bit unless the model
itself changed.  (The committed ``baseline`` entry predates the
harness's clock rebasing, so it matches later entries only to ~1e-14
relative — the last-ulp measurement wobble the rebasing removed; the
bit-level regression gate lives in ``tests/test_perrank_reference.py``.)

CLI::

    python -m repro.bench.perfsuite --smoke            # quick CI variant
    python -m repro.bench.perfsuite --label current    # full suite
    python -m repro.bench.perfsuite --jobs 4           # parallel executor
    python -m repro.bench.perfsuite --no-steady        # opt out of the
                                                       # steady-state
                                                       # short-circuit

``--slow`` runs with ``REPRO_SIM_SLOWPATH=1`` (the reference from-scratch
solver) — the configuration used to record the pre-optimisation baseline.
``--analytic`` opts into the closed-form steady-state fast path
(:mod:`repro.sim.analytic`) for points covered by a validated law.

Every sweep record carries the solver mode its points actually ran under
(``"solver"``, derived from the returned run manifests so it is correct
across worker processes) and how many points the analytic fast path
served (``"analytic_hits"``); the entry gets the union tag, e.g.
``"vectorized"`` or ``"vectorized+analytic"``.  ``repro report
--check-bench`` refuses to compare entries recorded under different
solver tags unless ``--allow-cross-solver`` is passed.

``--jobs N`` fans every point of every sweep across ``N`` worker
processes (see :mod:`repro.bench.parallel`); the simulated microseconds
are bit-identical to a serial run — only the wall clock changes — and the
entry records ``jobs`` (and the host CPU count) so parallel and serial
records are distinguishable.  Per-point ``wall_s`` is measured inside the
worker; the sweep-level ``wall_s`` is the sum of its points' (busy time,
comparable across job counts), while the entry-level ``wall_s`` is the
end-to-end suite wall clock the parallel run actually improves.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.bench.parallel import execute_points, resolve_jobs, run_point_timed

DEFAULT_OUT = "BENCH_core.json"

#: full-suite sweep definitions: (kind, algorithm, dims, x values, iters)
SWEEPS = {
    "tree_bcast": {
        "kind": "bcast",
        "algorithm": "tree-shaddr",
        "dims": (8, 8, 8),
        "xs": [64 * 1024, 512 * 1024, 2 * 1024 * 1024],
        "iters": 6,
    },
    "torus_bcast": {
        "kind": "bcast",
        "algorithm": "torus-shaddr",
        "dims": (4, 4, 4),
        "xs": [128 * 1024, 512 * 1024, 1024 * 1024],
        "iters": 6,
    },
    "torus_allreduce": {
        "kind": "allreduce",
        "algorithm": "allreduce-torus-shaddr",
        "dims": (4, 4, 4),
        "xs": [16 * 1024, 64 * 1024, 256 * 1024],
        "iters": 2,
    },
}

#: CI-sized variant: same shape, tiny machines and messages
SMOKE_SWEEPS = {
    "tree_bcast": {
        "kind": "bcast",
        "algorithm": "tree-shaddr",
        "dims": (2, 2, 2),
        "xs": [16 * 1024, 64 * 1024],
        "iters": 5,
    },
    "torus_bcast": {
        "kind": "bcast",
        "algorithm": "torus-shaddr",
        "dims": (2, 2, 2),
        "xs": [64 * 1024, 128 * 1024],
        "iters": 5,
    },
    "torus_allreduce": {
        "kind": "allreduce",
        "algorithm": "allreduce-torus-shaddr",
        "dims": (2, 2, 2),
        "xs": [4 * 1024, 16 * 1024],
        "iters": 2,
    },
}

def _point_specs(spec: dict, steady_state: Optional[bool],
                 analytic: bool = False) -> List[dict]:
    """The sweep's x values as independent executor point specs."""
    specs = []
    for x in spec["xs"]:
        point = {
            "family": spec["kind"],
            "algorithm": spec["algorithm"],
            "x": x,
            "dims": tuple(spec["dims"]),
            "mode": "QUAD",
            "iters": spec["iters"],
        }
        if steady_state is not None:
            point["steady_state"] = steady_state
        if analytic:
            # Carried in the spec (not the environment) so it survives the
            # process boundary under any multiprocessing start method.
            point["analytic"] = True
        specs.append(point)
    return specs


def _sweep_record(spec: dict, timed_points: List[tuple]) -> dict:
    """Assemble one sweep's JSON record from (wall_s, result) pairs."""
    points = [
        {"x": x, "wall_s": round(wall, 4), "elapsed_us": result.elapsed_us}
        for x, (wall, result) in zip(spec["xs"], timed_points)
    ]
    # Solver attribution comes from the returned manifests, not from this
    # process's environment — the points may have run in worker processes.
    manifests = [
        result.manifest for _, result in timed_points
        if result.manifest is not None
    ]
    modes = sorted({m.solver_mode for m in manifests})
    return {
        "kind": spec["kind"],
        "algorithm": spec["algorithm"],
        "dims": list(spec["dims"]),
        "iters": spec["iters"],
        # busy seconds (sum over points), comparable across job counts;
        # the end-to-end wall clock lives on the suite entry.
        "wall_s": round(sum(p["wall_s"] for p in points), 4),
        "solver": "+".join(modes) if modes else "unknown",
        "analytic_hits": sum(1 for m in manifests if m.analytic),
        "points": points,
    }


def run_sweep_timed(spec: dict, steady_state: Optional[bool] = None,
                    jobs: Optional[int] = None,
                    analytic: bool = False,
                    farm: Optional[str] = None) -> dict:
    """Run one sweep; returns wall-clock and simulated-time records."""
    timed = execute_points(
        _point_specs(spec, steady_state, analytic), jobs,
        task=run_point_timed, farm=farm,
    )
    return _sweep_record(spec, timed)


def run_suite(
    smoke: bool = False, steady_state: Optional[bool] = None,
    jobs: Optional[int] = None, analytic: bool = False,
    farm: Optional[str] = None,
) -> Dict[str, dict]:
    """Run every sweep of the suite; returns ``{sweep_name: record}``.

    With ``jobs > 1`` every point of every sweep lands in one worker pool
    — the whole suite is the unit of load balancing, so the longest
    single point, not the longest sweep, bounds the wall clock.  The
    suite-level metadata (recorded-at stamp, job count, host CPU count,
    end-to-end wall seconds) rides along under the ``"__meta__"`` key,
    consumed by :func:`save_entry`.
    """
    sweeps = SMOKE_SWEEPS if smoke else SWEEPS
    jobs = resolve_jobs(jobs)
    # One stamp for the whole suite run; every entry written from this
    # run carries it, no matter how long the sweeps take.
    recorded_at = time.strftime("%Y-%m-%d %H:%M:%S")
    suite_start = time.perf_counter()
    all_specs: List[dict] = []
    slices: Dict[str, tuple] = {}
    for name, spec in sweeps.items():
        points = _point_specs(spec, steady_state, analytic)
        slices[name] = (len(all_specs), len(points))
        all_specs.extend(points)
    timed = execute_points(all_specs, jobs, task=run_point_timed, farm=farm)
    out: Dict[str, dict] = {}
    for name, spec in sweeps.items():
        offset, count = slices[name]
        record = _sweep_record(spec, timed[offset:offset + count])
        out[name] = record
        hits = record["analytic_hits"]
        tag = f" [{record['solver']}" + (
            f", {hits}/{len(record['points'])} analytic]" if hits else "]"
        )
        print(
            f"{name:18s} {record['wall_s']:8.2f}s busy  "
            + "  ".join(
                f"{p['x']}B:{p['elapsed_us']:.1f}us" for p in record["points"]
            )
            + tag
        )
    out["__meta__"] = {
        "recorded_at": recorded_at,
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "wall_s": round(time.perf_counter() - suite_start, 4),
    }
    return out


def load_results(path: str) -> dict:
    if os.path.exists(path):
        try:
            with open(path) as handle:
                return json.load(handle)
        except json.JSONDecodeError as exc:
            # Results are loaded *after* the (possibly long) suite run, so a
            # corrupt file must not throw the run away — start fresh instead.
            print(f"warning: {path} is not valid JSON ({exc}); starting fresh",
                  file=sys.stderr)
    return {"suite": "core", "entries": {}}


def save_entry(path: str, label: str, sweeps: Dict[str, dict], smoke: bool) -> dict:
    """Insert/replace one labelled entry in the results file.

    ``sweeps`` is :func:`run_suite`'s return value; its ``"__meta__"``
    rider (stamped once at suite start) becomes the entry's metadata, so
    ``recorded_at`` reflects when the suite *ran*, not when it was saved,
    and ``jobs``/``cpus``/``wall_s`` distinguish parallel records from
    serial ones.
    """
    sweeps = dict(sweeps)
    meta = sweeps.pop("__meta__", None) or {
        "recorded_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "jobs": 1,
        "cpus": os.cpu_count(),
    }
    # Entry-level solver attribution: the union of the sweep records'
    # manifest-derived modes, tagged "+analytic" when the fast path
    # actually served points.  ``repro report --check-bench`` refuses to
    # compare entries whose solver tags differ (see
    # :func:`repro.telemetry.manifest.bench_entry_solver`).
    modes = sorted({
        record.get("solver") for record in sweeps.values()
        if isinstance(record, dict) and record.get("solver")
    })
    solver = "+".join(modes) if modes else (
        "slowpath" if os.environ.get("REPRO_SIM_SLOWPATH", "") == "1"
        else "incremental"
    )
    if any(
        record.get("analytic_hits") for record in sweeps.values()
        if isinstance(record, dict)
    ):
        solver += "+analytic"
    results = load_results(path)
    results.setdefault("entries", {})[label] = {
        **meta,
        "python": platform.python_version(),
        "smoke": smoke,
        "slowpath": os.environ.get("REPRO_SIM_SLOWPATH", "") == "1",
        "solver": solver,
        "sweeps": sweeps,
    }
    with open(path, "w") as handle:
        json.dump(results, handle, indent=1)
        handle.write("\n")
    return results


def speedup_table(results: dict, base: str = "baseline", new: str = "current") -> str:
    """Per-sweep wall-clock speedup of ``new`` over ``base`` (when both exist)."""
    entries = results.get("entries", {})
    if base not in entries or new not in entries:
        return f"(no speedup table: need both {base!r} and {new!r} entries)"
    if entries[base].get("smoke") != entries[new].get("smoke"):
        return (
            f"(no speedup table: {base!r} and {new!r} were recorded at "
            "different sizes — smoke vs full suite)"
        )
    lines = [f"{'sweep':18s} {'base s':>9} {'new s':>9} {'speedup':>8}"]
    for name, record in entries[base]["sweeps"].items():
        if name not in entries[new]["sweeps"]:
            continue
        b = record["wall_s"]
        n = entries[new]["sweeps"][name]["wall_s"]
        lines.append(f"{name:18s} {b:9.2f} {n:9.2f} {b / n:7.2f}x")
    # Per-sweep rows compare busy seconds; the honest end-to-end number
    # for a parallel run is the suite wall clock, when both entries have
    # one (entries predating the parallel executor do not).
    b_wall = entries[base].get("wall_s")
    n_wall = entries[new].get("wall_s")
    if b_wall and n_wall:
        lines.append(
            f"{'suite wall':18s} {b_wall:9.2f} {n_wall:9.2f} "
            f"{b_wall / n_wall:7.2f}x  "
            f"(jobs {entries[base].get('jobs', 1)} -> "
            f"{entries[new].get('jobs', 1)})"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfsuite", description="Time the simulator core's hot sweeps."
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized variant")
    parser.add_argument("--label", default="current", help="entry label")
    parser.add_argument("--out", default=DEFAULT_OUT, help="results JSON path")
    parser.add_argument(
        "--no-steady", action="store_true",
        help="disable the harness steady-state short-circuit",
    )
    parser.add_argument(
        "--slow", action="store_true",
        help="use the reference from-scratch solver (REPRO_SIM_SLOWPATH=1)",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="opt into the closed-form steady-state fast path "
             "(repro.sim.analytic) where a validated law covers a point",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the point grid (default: REPRO_JOBS or "
             "serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--farm", default=None, metavar="HOST:PORT",
        help="route the point grid to a sweep-farm work-server (see "
             "repro farm serve); results stay byte-identical to serial",
    )
    args = parser.parse_args(argv)
    if args.slow:
        os.environ["REPRO_SIM_SLOWPATH"] = "1"
    steady = False if args.no_steady else None
    sweeps = run_suite(smoke=args.smoke, steady_state=steady, jobs=args.jobs,
                       analytic=args.analytic, farm=args.farm)
    meta = sweeps.get("__meta__", {})
    if meta:
        print(
            f"{'suite':18s} {meta['wall_s']:8.2f}s wall "
            f"(jobs={meta['jobs']}, cpus={meta['cpus']})"
        )
    results = save_entry(args.out, args.label, sweeps, args.smoke)
    print(f"\nwrote entry {args.label!r} to {args.out}")
    print(speedup_table(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
