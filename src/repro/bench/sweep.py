"""Config-driven parameter sweeps with JSON result persistence.

A sweep is described declaratively (dict or JSON file): a collective kind,
the algorithms to compare, the x-axis (sizes/counts/blocks), and the
machine.  ``run_sweep`` executes the grid and returns a
:class:`SweepResult` that renders as a table or chart and serializes to
JSON — the building block for custom studies beyond the paper's figures.

Example config::

    {
      "name": "my-bcast-study",
      "kind": "bcast",
      "algorithms": ["torus-shaddr", "torus-direct-put", "auto"],
      "sizes": ["64K", "512K", "2M"],
      "machine": {"dims": [4, 4, 4], "mode": "quad"},
      "iters": 1
    }

The machine block also accepts ``"network"`` (a backend name from
:func:`repro.hardware.network.known_backends`, default ``"torus"``) and
``"wrap"``.

Any registered algorithm name of the kind works, plus ``"auto"``: the
section-V selection table picks the protocol per x value, so the policy
itself can be swept as a series.

Every (algorithm, x) point is an independent deterministic simulation, so
``run_sweep(config, jobs=N)`` fans the grid across ``N`` worker processes
through :class:`~repro.bench.parallel.ParallelExecutor` and merges the
results in point order — byte-identical output to ``jobs=1``.

CLI: ``python -m repro sweep config.json [--out results.json] [--jobs N]``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.bench.parallel import execute_points
from repro.bench.report import Series, format_table
from repro.hardware.machine import Mode
from repro.util.units import parse_size

#: kind -> does x mean element count rather than bytes?  Every kind is
#: measured through the generic ``run_collective`` driver.
_KINDS = {
    "bcast": False,
    "allreduce": True,
    "reduce": True,
    "gather": False,
    "scatter": False,
    "allgather": False,
    "alltoall": False,
}


@dataclass
class SweepResult:
    """Outcome of one sweep: per-algorithm series over the x-axis."""

    name: str
    kind: str
    x_values: List[int]
    #: algorithm -> bandwidth MB/s per x value
    bandwidth: Dict[str, List[float]] = field(default_factory=dict)
    #: algorithm -> elapsed µs per x value
    elapsed_us: Dict[str, List[float]] = field(default_factory=dict)

    def table(self, metric: str = "bandwidth") -> str:
        data = self.bandwidth if metric == "bandwidth" else self.elapsed_us
        series = [Series(name, values) for name, values in data.items()]
        x_format = "count" if _KINDS[self.kind] else "bytes"
        return format_table(
            "x", self.x_values, series,
            value_format="{:.1f}", x_format=x_format,
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls(**json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())


def _validate_config(config: dict) -> None:
    for key in ("kind", "algorithms", "sizes"):
        if key not in config:
            raise KeyError(f"sweep config missing {key!r}")
    if config["kind"] not in _KINDS:
        raise KeyError(
            f"unknown sweep kind {config['kind']!r}; "
            f"known: {sorted(_KINDS)}"
        )
    if not config["algorithms"] or not config["sizes"]:
        raise ValueError("algorithms and sizes must be non-empty")


def run_sweep(config: dict, jobs: Optional[int] = None,
              farm: Optional[str] = None) -> SweepResult:
    """Execute the sweep described by ``config``.

    ``jobs`` fans the (algorithm, x) grid across that many worker
    processes (``None``: the ``REPRO_JOBS`` environment variable, else
    serial).  Results are merged in grid order, so the returned
    :class:`SweepResult` is identical whatever the job count.  ``farm``
    routes the grid to a sweep-farm work-server instead
    (:mod:`repro.bench.farm`) with the same deterministic merge.

    ``"analytic": true`` in the config opts every point into the
    closed-form steady-state fast path (:mod:`repro.sim.analytic`);
    points without a validated law run the full simulation as usual.
    """
    _validate_config(config)
    kind = config["kind"]
    machine_cfg = config.get("machine", {})
    dims = tuple(machine_cfg.get("dims", (2, 2, 2)))
    mode = Mode[machine_cfg.get("mode", "quad").upper()]
    wrap = bool(machine_cfg.get("wrap", True))
    network = machine_cfg.get("network", "torus")
    iters = int(config.get("iters", 1))
    analytic = bool(config.get("analytic", False))
    x_values = [parse_size(s) for s in config["sizes"]]
    result = SweepResult(
        name=config.get("name", f"{kind}-sweep"),
        kind=kind,
        x_values=x_values,
    )
    # ``"auto"`` re-selects per x through the section-V table (inside the
    # worker), so a sweep can plot the selection policy itself as a series.
    specs = [
        {
            "family": kind, "algorithm": algorithm, "x": x,
            "dims": dims, "mode": mode.name, "wrap": wrap, "iters": iters,
            **({"network": network} if network != "torus" else {}),
            **({"analytic": True} if analytic else {}),
        }
        for algorithm in config["algorithms"]
        for x in x_values
    ]
    measured = execute_points(specs, jobs, farm=farm)
    for start, algorithm in zip(
        range(0, len(specs), len(x_values)), config["algorithms"]
    ):
        points = measured[start:start + len(x_values)]
        result.bandwidth[algorithm] = [p.bandwidth_mbs for p in points]
        result.elapsed_us[algorithm] = [p.elapsed_us for p in points]
    return result


def run_sweep_file(path: str, jobs: Optional[int] = None,
                   farm: Optional[str] = None) -> SweepResult:
    """Execute a sweep from a JSON config file."""
    with open(path) as handle:
        return run_sweep(json.load(handle), jobs=jobs, farm=farm)
