"""Resource-utilization profiling of simulated collectives.

Every :class:`~repro.sim.flownet.FlowResource` integrates its load over
time; this module aggregates those integrals into the per-resource-class
picture the paper argues from — e.g. for the quad-mode direct-put baseline
the **DMA engines run at ~100 % while the wires idle**, and the
shared-address scheme flips that.

Typical use::

    machine = Machine(torus_dims=(4, 4, 4), mode=Mode.QUAD)
    result = run_bcast(machine, "torus-direct-put", nbytes="2M")
    report = utilization_report(machine)
    print(format_report(report))
    report.group("dma").mean      # ~1.0 for the DMA-bound baseline

Utilization is averaged over the full simulated time span of the machine,
so profile a *fresh* machine per measurement (the harness idiom throughout
this package).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.machine import Machine


@dataclass
class GroupStats:
    """Utilization summary for one class of resources."""

    name: str
    count: int
    mean: float
    peak: float
    #: total raw bytes served by the group over the window
    bytes_served: float


@dataclass
class UtilizationReport:
    """Per-class utilization over a simulated window."""

    window_us: float
    groups: Dict[str, GroupStats] = field(default_factory=dict)

    def group(self, name: str) -> GroupStats:
        if name not in self.groups:
            raise KeyError(
                f"no resource group {name!r}; have {sorted(self.groups)}"
            )
        return self.groups[name]


def _classify(name: str) -> str:
    """Map a resource name to its class."""
    if name.startswith("torus."):
        return "links"
    suffix = name.split(".")[-1]
    if suffix in ("mem", "dma", "tree_up", "tree_down"):
        return suffix
    if ".proto." in name or suffix.startswith("proto"):
        return "proto_core"
    return "other"


def utilization_report(
    machine: Machine, since: float = 0.0,
    until: Optional[float] = None,
) -> UtilizationReport:
    """Aggregate utilization of all machine resources over a window."""
    now = until if until is not None else machine.engine.now
    window = now - since
    report = UtilizationReport(window_us=window)
    if window <= 0:
        return report
    buckets: Dict[str, List] = {}
    for resource in machine.flownet.resources:
        buckets.setdefault(_classify(resource.name), []).append(resource)
    for name, resources in buckets.items():
        utils = [r.utilization(now, since) for r in resources]
        served = sum(r.busy_integral(now) for r in resources)
        report.groups[name] = GroupStats(
            name=name,
            count=len(resources),
            mean=sum(utils) / len(utils),
            peak=max(utils),
            bytes_served=served,
        )
    return report


def format_report(report: UtilizationReport) -> str:
    """Render a report as a fixed-width table."""
    lines = [
        f"resource utilization over {report.window_us:.1f} us",
        f"{'class':>10} {'n':>5} {'mean':>7} {'peak':>7} {'MB served':>11}",
    ]
    for name in sorted(report.groups):
        g = report.groups[name]
        lines.append(
            f"{g.name:>10} {g.count:>5} {g.mean:>6.1%} {g.peak:>6.1%} "
            f"{g.bytes_served / 1e6:>11.2f}"
        )
    return "\n".join(lines)
