"""Benchmark harness: the Fig-5 microbenchmark and per-figure experiments."""

from repro.bench.harness import (
    run_allgather,
    run_allreduce,
    run_bcast,
    run_collective,
)
from repro.bench.parallel import ParallelExecutor, execute_points, resolve_jobs
from repro.bench.profile import UtilizationReport, format_report, utilization_report
from repro.bench.report import Series, format_table, speedup


def __getattr__(name):
    # Lazy so `python -m repro.bench.perfsuite` doesn't import the module
    # twice (runpy warns when the target is already in sys.modules).
    if name in ("run_suite", "speedup_table"):
        from repro.bench import perfsuite

        return getattr(perfsuite, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ParallelExecutor",
    "execute_points",
    "resolve_jobs",
    "run_collective",
    "run_bcast",
    "run_allreduce",
    "run_allgather",
    "run_suite",
    "speedup_table",
    "Series",
    "format_table",
    "speedup",
    "UtilizationReport",
    "utilization_report",
    "format_report",
]
