"""Benchmark harness: the Fig-5 microbenchmark and per-figure experiments."""

from repro.bench.harness import run_allgather, run_allreduce, run_bcast
from repro.bench.profile import UtilizationReport, format_report, utilization_report
from repro.bench.report import Series, format_table, speedup

__all__ = [
    "run_bcast",
    "run_allreduce",
    "run_allgather",
    "Series",
    "format_table",
    "speedup",
    "UtilizationReport",
    "utilization_report",
    "format_report",
]
