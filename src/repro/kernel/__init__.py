"""Compute Node Kernel (CNK) model.

Section III-B of the paper: CNK is a lightweight kernel that statically maps
all application TLBs and reserves ``N`` TLB slots (default three — one per
peer process in quad mode) for *process windows*: a process can translate a
peer's virtual address to physical (one system call) and map that physical
region into its own address space (a second system call).

This subpackage models:

* :mod:`repro.kernel.windows` — window mapping with TLB-slot accounting,
  per-mapping syscall costs, and the mapping cache whose effect Figure 8
  measures;
* :mod:`repro.kernel.shmem` — mutually shared staging segments (the
  "shared memory" methods) including the *simulated* Bcast FIFO used by the
  ``Torus + FIFO`` algorithm (its thread-executable twin lives in
  :mod:`repro.structures`).
"""

from repro.kernel.windows import ProcessWindows, WindowMapping
from repro.kernel.shmem import SharedSegment, SimBcastFifo, SimPtPFifo

__all__ = [
    "ProcessWindows",
    "WindowMapping",
    "SharedSegment",
    "SimBcastFifo",
    "SimPtPFifo",
]
