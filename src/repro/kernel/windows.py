"""Process-window (shared address space) system-call model.

The mechanism (section III-B): for process A to read ``n`` bytes at virtual
address ``VA_b`` of process B,

1. B translates ``VA_b`` to a physical address (system call #1);
2. A maps that physical region into its own address space (system call #2),
   consuming one of its ``N`` reserved TLB slots (default ``N = 3`` — one
   per peer on the four-core node).

TLB slots come in 1 MB / 16 MB / 256 MB sizes; a buffer spanning more than
one slot-size region needs one mapping (and one pair of system calls) per
region.

Caching: "In our schemes, we internally cache the buffer information if the
same buffer is repeatedly used in the application" (section VI-A, Fig 8).
With caching on, the first use of a (peer, buffer) pair pays the system
calls and later uses are free; with caching off, every use pays.  Cache
entries are evicted LRU when the peer's slot budget is exhausted.

Faults: an active :class:`~repro.hardware.fault_schedule.WindowFault`
window caps the TLB slots the kernel will hand out on the mapping node.
A mapping attempt that needs more slots than the cap pays its system
calls, fails, and is retried under the machine's
:class:`~repro.hardware.fault_schedule.RetryPolicy` (exponential backoff);
when the budget is exhausted a
:class:`~repro.sim.engine.TransientFaultError` escapes to the resilience
layer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Tuple

from repro.sim.engine import TransientFaultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine


@dataclass(frozen=True)
class WindowMapping:
    """An installed mapping of a peer buffer into the local address space."""

    peer: int
    buffer_key: Hashable
    nbytes: int
    #: number of TLB slots (slot-size regions) the mapping occupies
    slots: int


class ProcessWindows:
    """Per-process window service: syscall accounting plus mapping cache.

    One instance per MPI process; ``caching=False`` reproduces the
    "nocaching" series of Figure 8.  ``node`` scopes fault queries to the
    owning process's node (``None`` = unscoped: any node's window fault
    applies).
    """

    def __init__(self, machine: "Machine", caching: bool = True,
                 node: Optional[int] = None):
        self.machine = machine
        self.params = machine.params
        self.caching = caching
        self.node = node
        # key -> WindowMapping, LRU-ordered (most recent last)
        self._cache: "OrderedDict[Tuple[int, Hashable], WindowMapping]" = (
            OrderedDict()
        )
        #: lifetime statistics, inspectable by tests and benchmarks
        self.syscalls = 0
        self.mappings_installed = 0
        self.cache_hits = 0
        #: mapping attempts retried after hitting an active window fault
        self.retries = 0
        #: mapping operations that exhausted the retry budget
        self.map_faults = 0

    # -- sizing ---------------------------------------------------------
    def slots_needed(self, nbytes: int) -> int:
        """TLB slots required for a buffer of ``nbytes``.

        "In the worst case, more than one mapping may be required to access
        one buffer if the buffer spans across multiple page boundaries";
        we charge one mapping per started slot-size region.
        """
        if nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {nbytes}")
        slot = self.params.tlb_slot_bytes
        return (nbytes + slot - 1) // slot

    # -- mapping ----------------------------------------------------------
    def map_buffer(self, peer: int, buffer_key: Hashable, nbytes: int):
        """Sub-generator: make ``peer``'s buffer addressable; returns mapping.

        Charges ``2 x syscall_cost`` per required TLB slot unless the mapping
        is cached.  The calling coroutine is the core doing the syscalls.
        Under an active window fault the attempt fails after paying its
        syscalls and is retried with exponential backoff; retry exhaustion
        raises :class:`TransientFaultError`.
        """
        slots = self.slots_needed(nbytes)
        key = (peer, buffer_key)
        if self.caching:
            cached = self._cache.get(key)
            if cached is not None and cached.nbytes >= nbytes:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                tel = self.machine.engine.telemetry
                if tel is not None:
                    tel.window_event(
                        self.machine.engine.now, self.node, peer, "hit",
                        cached.slots,
                    )
                return cached
        cost = 2.0 * self.params.syscall_cost * slots
        policy = self.machine.retry_policy
        attempt = 1
        while True:
            if cost > 0:
                yield self.machine.engine.timeout(cost)
            self.syscalls += 2 * slots
            cap = self.machine.faults.window_slot_cap(self.node)
            if cap is None or slots <= cap:
                break
            # The kernel refused the mapping: slot-exhaustion window active.
            if attempt >= policy.max_attempts:
                self.map_faults += 1
                self.machine.faults.window_failures += 1
                raise TransientFaultError(
                    f"window mapping for peer {peer} failed after "
                    f"{attempt} attempts (TLB slots capped at {cap}, "
                    f"need {slots})"
                )
            self.retries += 1
            self.machine.faults.window_retries += 1
            yield self.machine.engine.timeout(policy.backoff_us(attempt))
            attempt += 1
        self.mappings_installed += 1
        mapping = WindowMapping(peer, buffer_key, nbytes, slots)
        tel = self.machine.engine.telemetry
        if tel is not None:
            tel.window_event(
                self.machine.engine.now, self.node, peer, "map", slots
            )
        if self.caching:
            self._evict_for(peer, slots)
            self._cache[key] = mapping
        return mapping

    def _evict_for(self, peer: int, slots: int) -> None:
        """Evict LRU mappings of ``peer`` until ``slots`` fit in the budget.

        The slot budget is per peer: quad mode reserves one slot per peer
        process, so repeatedly mapping *different* large buffers of the same
        peer thrashes the slot (and the cache cannot help).
        """
        budget = max(1, self.params.tlb_slots // max(1, self._peers_expected()))
        budget = max(budget, slots)  # a single over-large buffer still maps

        def used() -> int:
            return sum(
                m.slots for (p, _k), m in self._cache.items() if p == peer
            )

        while used() + slots > budget:
            for (p, k) in self._cache:  # OrderedDict: oldest first
                if p == peer:
                    evicted = self._cache.pop((p, k))
                    tel = self.machine.engine.telemetry
                    if tel is not None:
                        tel.window_event(
                            self.machine.engine.now, self.node, p, "unmap",
                            evicted.slots,
                        )
                    break
            else:
                break

    def _peers_expected(self) -> int:
        return max(1, self.machine.ppn - 1)

    def invalidate(self, peer: int, buffer_key: Hashable) -> None:
        """Drop a cached mapping (e.g. the application freed the buffer)."""
        dropped = self._cache.pop((peer, buffer_key), None)
        if dropped is not None:
            tel = self.machine.engine.telemetry
            if tel is not None:
                tel.window_event(
                    self.machine.engine.now, self.node, peer, "unmap",
                    dropped.slots,
                )
