"""Shared-memory staging structures (simulated twins).

These are the *simulation-time* counterparts of the concurrent data
structures in :mod:`repro.structures`:

* the data-structure logic (slot reservation through fetch-and-increment,
  space checks against ``head``, per-slot consumer counters, head retirement
  by the last consumer) is the same algorithm as the thread-executable
  versions — the test suite cross-checks the two;
* every shared-memory operation charges its modelled cost: atomic ops,
  flag writes, per-chunk staging overhead, and the actual staging copies as
  core-driven memory flows.

Payloads are real ``numpy`` byte arrays, so collectives built on these
structures deliver bit-exact data and the tests can verify it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

import numpy as np

from repro.sim.events import Event
from repro.sim.sync import SimCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine
    from repro.hardware.node import Node


class SharedSegment:
    """A mutually shared staging segment on one node.

    Carries a real byte buffer plus a generation flag used for the simple
    "shared memory broadcast" (one producer stages a chunk, peers copy it
    out after observing the flag).
    """

    def __init__(self, machine: "Machine", nbytes: int, name: str = "shmem"):
        if nbytes <= 0:
            raise ValueError(f"segment size must be > 0, got {nbytes}")
        self.machine = machine
        self.nbytes = nbytes
        self.name = name
        self.buffer = np.zeros(nbytes, dtype=np.uint8)
        #: bytes staged so far by the producer (monotonic within one op)
        self.staged = SimCounter(machine.engine, name=f"{name}.staged")


class _Message:
    """One enqueued FIFO element (payload + metadata + consumer counter)."""

    __slots__ = ("payload", "meta", "consumers_left", "write_done")

    def __init__(self, engine, payload: np.ndarray, meta: Any, consumers: int):
        self.payload = payload
        self.meta = meta
        self.consumers_left = consumers
        self.write_done = Event(engine)


class SimPtPFifo:
    """Simulated point-to-point FIFO (section IV-A).

    Multiple producers may enqueue (each reserving a unique slot with a
    fetch-and-increment on Tail); exactly one consumer dequeues, in
    enqueue order.
    """

    def __init__(self, machine: "Machine", slots: int, slot_bytes: int,
                 name: str = "ptpfifo"):
        if slots < 1 or slot_bytes < 1:
            raise ValueError("slots and slot_bytes must be >= 1")
        self.machine = machine
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.name = name
        self._tail_reserved = 0  # fetch-and-increment target
        self._head = SimCounter(machine.engine, name=f"{name}.head")
        self._visible = SimCounter(machine.engine, name=f"{name}.tail")
        self._messages: Dict[int, _Message] = {}
        self._next_read = 0

    def enqueue(self, node: "Node", payload: np.ndarray, meta: Any = None):
        """Sub-generator: producer core enqueues one message."""
        if payload.nbytes > self.slot_bytes:
            raise ValueError(
                f"payload of {payload.nbytes} B exceeds slot size "
                f"{self.slot_bytes}"
            )
        params = self.machine.params
        engine = self.machine.engine
        yield engine.timeout(params.atomic_op_cost)  # fetch-and-inc Tail
        myslot = self._tail_reserved
        self._tail_reserved += 1
        # Space check: (myslot - Head) < fifoSize, waiting if full.
        contended = myslot - self._head.value >= self.slots
        tel = engine.telemetry
        if tel is not None:
            tel.fifo_fai(engine.now, self.name, node.index, myslot, contended)
        if contended:
            stall_start = engine.now
            yield self._head.wait_for(myslot - self.slots + 1)
            if tel is not None:
                tel.stall(stall_start, engine.now, None, node.index,
                          "waiting-on-slot")
        message = _Message(engine, np.array(payload, copy=True), meta, 1)
        self._messages[myslot] = message
        yield engine.timeout(params.shmem_chunk_overhead)
        yield from node.fifo_copy(payload.nbytes, name=f"{self.name}.in")
        yield engine.timeout(params.flag_cost)  # write-completion flag
        message.write_done.trigger(None)
        self._visible.add(1)
        if tel is not None:
            tel.fifo_depth(engine.now, self.name, node.index,
                           self._visible.value - self._head.value)

    def dequeue(self, node: "Node"):
        """Sub-generator: the single consumer core dequeues the next message.

        Returns ``(payload, meta)``.
        """
        params = self.machine.params
        engine = self.machine.engine
        seq = self._next_read
        self._next_read += 1
        if self._visible.value <= seq:
            yield self._visible.wait_for(seq + 1)
        message = self._messages[seq]
        yield message.write_done
        yield from node.fifo_copy(message.payload.nbytes, name=f"{self.name}.out")
        yield engine.timeout(params.atomic_op_cost)  # increment Head
        del self._messages[seq]
        self._head.add(1)
        tel = engine.telemetry
        if tel is not None:
            tel.fifo_depth(engine.now, self.name, node.index,
                           self._visible.value - self._head.value)
        return message.payload, message.meta


class SimBcastFifo:
    """Simulated broadcast FIFO (section IV-B, Fig 1).

    Enqueue works like the point-to-point FIFO; dequeue differs: *every*
    process except the producer must read each element.  A per-slot atomic
    counter starts at ``n - 1``; each reader decrements it after copying,
    and the last reader retires the element by incrementing Head.

    Consumers call :meth:`dequeue` with their own message sequence number —
    the real structure keeps this as a per-consumer cursor.
    """

    def __init__(self, machine: "Machine", slots: int, slot_bytes: int,
                 consumers: int, name: str = "bcastfifo"):
        if slots < 1 or slot_bytes < 1:
            raise ValueError("slots and slot_bytes must be >= 1")
        if consumers < 1:
            raise ValueError(f"consumers must be >= 1, got {consumers}")
        self.machine = machine
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.consumers = consumers
        self.name = name
        self._tail_reserved = 0
        self._head = SimCounter(machine.engine, name=f"{name}.head")
        self._visible = SimCounter(machine.engine, name=f"{name}.tail")
        self._messages: Dict[int, _Message] = {}

    @property
    def retired(self) -> float:
        """Number of fully consumed (retired) messages."""
        return self._head.value

    def enqueue(self, node: "Node", payload: np.ndarray, meta: Any = None):
        """Sub-generator: producer core enqueues one message for all readers."""
        if payload.nbytes > self.slot_bytes:
            raise ValueError(
                f"payload of {payload.nbytes} B exceeds slot size "
                f"{self.slot_bytes}"
            )
        params = self.machine.params
        engine = self.machine.engine
        yield engine.timeout(params.atomic_op_cost)  # fetch-and-inc Tail
        myslot = self._tail_reserved
        self._tail_reserved += 1
        contended = myslot - self._head.value >= self.slots
        tel = engine.telemetry
        if tel is not None:
            tel.fifo_fai(engine.now, self.name, node.index, myslot, contended)
        if contended:
            stall_start = engine.now
            yield self._head.wait_for(myslot - self.slots + 1)
            if tel is not None:
                tel.stall(stall_start, engine.now, None, node.index,
                          "waiting-on-slot")
        message = _Message(
            engine, np.array(payload, copy=True), meta, self.consumers
        )
        self._messages[myslot] = message
        yield engine.timeout(params.shmem_chunk_overhead)
        yield from node.fifo_copy(payload.nbytes, name=f"{self.name}.in")
        # Initialise the per-slot consumer counter and completion flag.
        yield engine.timeout(params.atomic_op_cost + params.flag_cost)
        message.write_done.trigger(None)
        self._visible.add(1)
        if tel is not None:
            tel.fifo_depth(engine.now, self.name, node.index,
                           self._visible.value - self._head.value)
        return myslot

    def dequeue(self, node: "Node", seq: int):
        """Sub-generator: one consumer reads message ``seq``.

        Returns ``(payload, meta)``.  The payload copy out of the FIFO slot
        is charged to the consumer's core; the last consumer additionally
        pays the Head retirement.
        """
        params = self.machine.params
        engine = self.machine.engine
        if self._visible.value <= seq:
            yield self._visible.wait_for(seq + 1)
        message = self._messages[seq]
        yield message.write_done
        yield from node.fifo_copy(message.payload.nbytes, name=f"{self.name}.out")
        yield engine.timeout(params.atomic_op_cost)  # decrement slot counter
        message.consumers_left -= 1
        if message.consumers_left == 0:
            yield engine.timeout(params.atomic_op_cost)  # increment Head
            del self._messages[seq]
            self._head.add(1)
            tel = engine.telemetry
            if tel is not None:
                tel.fifo_depth(engine.now, self.name, node.index,
                               self._visible.value - self._head.value)
        return message.payload, message.meta
