"""The assembled machine: nodes, networks, modes, and rank mapping.

A :class:`Machine` is the root object the MPI layer and the collective
algorithms work against.  It owns the DES engine and flow network, builds
every node and both interconnects, and maps MPI ranks onto (node, core)
pairs according to the operating mode (section III):

* ``SMP``  — one process per node (plus an optional helper communication
  thread on a second core);
* ``DUAL`` — two processes per node;
* ``QUAD`` — four processes per node (the mode this paper optimizes).

Rank mapping is node-major ("TXYZ"-style): ranks ``[n*ppn, (n+1)*ppn)``
live on node ``n`` with local ranks ``0..ppn-1``.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple

from repro.hardware.dma import DmaEngine
from repro.hardware.fault_schedule import ActiveFaults, RetryPolicy
from repro.hardware.memory import MemoryModel, MemoryRegime
from repro.hardware.network import (
    NetworkBackend,
    UnsupportedTopologyError,
    create_network,
)
from repro.hardware.node import Node
from repro.hardware.params import BGPParams
from repro.hardware.torus import TorusNetwork
from repro.hardware.tree import CollectiveNetwork
from repro.sim.engine import Engine, Process
from repro.sim.flownet import FlowNetwork
from repro.sim.sync import SimBarrier, SimCounter


class Mode(enum.Enum):
    """BG/P operating mode: MPI processes per node."""

    SMP = 1
    DUAL = 2
    QUAD = 4

    @property
    def processes_per_node(self) -> int:
        return self.value


class Machine:
    """A simulated BG/P partition."""

    def __init__(
        self,
        torus_dims: Tuple[int, int, int] = (4, 4, 4),
        mode: Mode = Mode.QUAD,
        params: Optional[BGPParams] = None,
        engine: Optional[Engine] = None,
        wrap: bool = True,
        network: str = "torus",
        network_params: Optional[dict] = None,
    ):
        self.params = params if params is not None else BGPParams()
        self.mode = mode
        self.engine = engine if engine is not None else Engine()
        self.flownet = FlowNetwork(self.engine)
        self.memory_model = MemoryModel(self.params)
        #: the interconnect backend (``torus`` by default); ``torus_dims``
        #: keeps its historical name — non-torus backends read it as a
        #: geometry tuple whose product is the node count
        self.network: NetworkBackend = create_network(
            network, self, tuple(torus_dims), wrap=wrap,
            params=network_params,
        )
        self.nnodes = self.network.nnodes
        self.nodes: List[Node] = [
            Node(self, i, self.network.coords(i)) for i in range(self.nnodes)
        ]
        self.dma: List[DmaEngine] = [DmaEngine(node) for node in self.nodes]
        self.tree = CollectiveNetwork(self)
        self.ppn = mode.processes_per_node
        self.nprocs = self.nnodes * self.ppn
        #: registry of active transient-fault windows (queried at protocol
        #: boundaries; empty on a healthy machine)
        self.faults = ActiveFaults(self)
        #: retry/backoff budget for faultable protocol operations
        self.retry_policy = RetryPolicy()
        #: hooks re-run after :meth:`set_working_set` reinstalls capacities,
        #: so injectors and fault windows survive regime changes
        self._reapply_hooks: List[Callable[[], None]] = []
        if self.ppn > self.params.cores_per_node:
            raise ValueError(
                f"mode {mode} needs {self.ppn} cores but the node has "
                f"{self.params.cores_per_node}"
            )

    @property
    def torus(self) -> TorusNetwork:
        """The torus backend, when this machine has one.

        Torus-only code paths (the rectangle schedules, deposit-bit line
        broadcasts, the analytic laws) reach the interconnect through this
        property; on a non-torus backend it raises
        :class:`UnsupportedTopologyError` instead of silently handing out
        an object without ``line_broadcast``.
        """
        if isinstance(self.network, TorusNetwork):
            return self.network
        raise UnsupportedTopologyError(
            f"machine network is {self.network.name!r}, not a torus; "
            "torus-only primitives are unavailable"
        )

    # -- rank mapping ----------------------------------------------------
    def rank_to_node(self, rank: int) -> int:
        """MPI rank -> node index (node-major mapping)."""
        self.check_rank(rank)
        return rank // self.ppn

    def rank_to_local(self, rank: int) -> int:
        """MPI rank -> local rank on its node (0..ppn-1)."""
        self.check_rank(rank)
        return rank % self.ppn

    def node_ranks(self, node_index: int) -> List[int]:
        """All MPI ranks living on node ``node_index``."""
        if not 0 <= node_index < self.nnodes:
            raise ValueError(f"node index out of range: {node_index}")
        base = node_index * self.ppn
        return list(range(base, base + self.ppn))

    def check_rank(self, rank: int) -> None:
        """Validate an MPI rank against this machine (raises ValueError)."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank out of range: {rank} (nprocs={self.nprocs})")

    #: deprecated private spelling, kept for callers that predate the
    #: public name
    _check_rank = check_rank

    # -- configuration ----------------------------------------------------
    def set_working_set(self, nbytes: int) -> MemoryRegime:
        """Install the cache regime for an upcoming collective on all nodes.

        Capacity injectors registered via :meth:`add_reapply_hook` are
        re-run afterwards, so their perturbations survive the regime
        reinstall instead of being silently reset.
        """
        regime = self.memory_model.regime(nbytes)
        for node in self.nodes:
            node.set_regime(regime)
        for hook in self._reapply_hooks:
            hook()
        tel = self.engine.telemetry
        if tel is not None:
            tel.working_set(self.engine.now, nbytes)
        return regime

    def add_reapply_hook(self, hook: Callable[[], None]) -> None:
        """Register a hook re-run after every :meth:`set_working_set`."""
        self._reapply_hooks.append(hook)

    def remove_reapply_hook(self, hook: Callable[[], None]) -> None:
        """Unregister a reapply hook (no-op if absent)."""
        try:
            self._reapply_hooks.remove(hook)
        except ValueError:
            pass

    # -- telemetry ---------------------------------------------------------
    def attach_telemetry(self, recorder=None):
        """Attach a :class:`~repro.telemetry.recorder.TelemetryRecorder`.

        Creates one if ``recorder`` is None; returns the attached recorder.
        Recording is purely observational — timings are bit-identical with
        or without it — so it is safe to attach before any measured run.
        """
        if recorder is None:
            from repro.telemetry.recorder import TelemetryRecorder
            recorder = TelemetryRecorder()
        self.engine.telemetry = recorder
        return recorder

    def detach_telemetry(self):
        """Detach and return the current recorder (None if absent)."""
        recorder, self.engine.telemetry = self.engine.telemetry, None
        return recorder

    # -- conveniences ------------------------------------------------------
    def spawn(self, generator, name: str = "?") -> Process:
        """Spawn a simulation process on this machine's engine."""
        return self.engine.spawn(generator, name=name)

    def make_barrier(self, parties: Optional[int] = None) -> SimBarrier:
        """A barrier across ``parties`` processes (default: all MPI ranks),
        with the global-interrupt-network latency."""
        n = parties if parties is not None else self.nprocs
        return SimBarrier(self.engine, n, latency=self.params.barrier_latency)

    def make_counter(
        self, name: str = "counter", node: Optional[int] = None,
        value: float = 0.0,
    ) -> SimCounter:
        """A fault-aware software counter published by cores on ``node``.

        The paper's software message counters are mirrored by a core, so an
        injected :class:`~repro.hardware.fault_schedule.CounterStall` on the
        publishing node defers watcher wake-ups until the stall window
        clears.  Hardware DMA counters are *not* built through this factory
        and therefore keep publishing through a stall — which is what lets
        the DMA protocols act as the last rung of the fallback ladder.
        """
        return SimCounter(
            self.engine, value=value, name=name,
            stall_fn=lambda: self.faults.stall_remaining(node),
        )

    def run(self) -> float:
        """Drain the event queue; returns the final simulation time."""
        return self.engine.run()

    def rebase_time(self) -> None:
        """Reset the simulation clock origin to the current instant.

        Folds every resource's busy integral up to now, shifts any
        in-flight flow's progress bookkeeping, and rebases the engine
        (see :meth:`Engine.rebase`).  The harness calls this at each
        iteration barrier so every iteration runs the same float
        arithmetic regardless of how much virtual time has passed.
        """
        now = self.engine.now
        if now == 0.0:
            return
        shifted = set()
        for resource in self.flownet.resources:
            resource.integrate(now)
            resource._busy_last = 0.0
            for flow in resource.flows:
                if id(flow) not in shifted:
                    shifted.add(id(flow))
                    flow.advance(now)
                    flow.last_update = 0.0
        self.engine.rebase(now)
        # Fault windows are stored in absolute engine time; keep them in
        # step with the rebased clock.
        self.faults.rebase(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        net = "" if self.network.name == "torus" else f" net={self.network.name}"
        return (
            f"<Machine {self.network.dims} mode={self.mode.name} "
            f"nprocs={self.nprocs}{net}>"
        )
