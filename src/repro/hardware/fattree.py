"""A k-ary fat-tree backend with ECMP-style deterministic path coloring.

Geometry (the classic three-tier k-ary fat-tree of Al-Fares et al.):

* ``k`` pods, each with ``k/2`` edge switches and ``k/2`` aggregation
  switches; ``(k/2)**2`` core switches; ``k**3 / 4`` host slots.
* Host ``h`` sits under edge switch ``(h // radix) % radix`` of pod
  ``h // radix**2`` where ``radix = k // 2``.

``k`` is derived as the smallest even value whose host capacity covers
the machine's node count (the geometry tuple's product), so the familiar
``--dims 2x2x2`` spellings keep working; pass ``{"k": 8}`` through
``network_params`` to pin it.

Routing is the fat-tree's standard up/down ECMP: a packet climbs
``host -> edge [-> agg [-> core]]`` until it reaches a common ancestor,
then descends.  Real fabrics hash flows across the ``radix`` equal-cost
aggregation/core choices; we make that hash *deterministic and
color-aware* — ``(src + dst + color) % radix`` — so (a) a given
(src, dst, color) triple always rides the same switches (reproducible
contention), and (b) the multi-color collectives spread their colors
across distinct equal-cost paths, the ECMP analogue of the torus'
edge-disjoint color routes.

Every link is a lazily-created :class:`~repro.sim.flownet.FlowResource`
channel owned by the :class:`~repro.hardware.network.NetworkBackend`
base, so the flow solver, ``LinkFlap`` fault schedules, and telemetry
treat fat-tree links exactly like torus links.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.hardware.network import NetworkBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine
    from repro.msg.color import Color


def _fit_k(nnodes: int) -> int:
    """Smallest even ``k`` whose ``k**3 / 4`` host slots cover ``nnodes``."""
    k = 2
    while k * k * k // 4 < nnodes:
        k += 2
    return k


@register_backend
class FatTreeNetwork(NetworkBackend):
    """Three-tier k-ary fat-tree with deterministic ECMP coloring."""

    name = "fattree"
    wires = ("ptp", "gi")

    def __init__(self, machine: "Machine", dims: Sequence[int],
                 wrap: bool = True, k: int = 0):
        super().__init__(machine, dims, wrap=wrap)
        nnodes = 1
        for d in self.dims:
            if d < 1:
                raise ValueError(
                    f"fattree dims must be positive ints, got {self.dims}"
                )
            nnodes *= d
        if k:
            if k % 2 or k < 2:
                raise ValueError(f"fat-tree k must be even and >= 2, got {k}")
            if k * k * k // 4 < nnodes:
                raise ValueError(
                    f"fat-tree k={k} holds {k * k * k // 4} hosts, "
                    f"need {nnodes}"
                )
            self.k = k
        else:
            self.k = _fit_k(nnodes)
        #: equal-cost choices per tier (edge->agg and agg->core fan-out)
        self.radix = self.k // 2
        self.nnodes = nnodes

    # -- placement ---------------------------------------------------------
    def pod(self, index: int) -> int:
        """Host index -> pod number."""
        return index // (self.radix * self.radix)

    def edge(self, index: int) -> int:
        """Host index -> edge-switch number within its pod."""
        return (index // self.radix) % self.radix

    def coords(self, index: int) -> Tuple[int, int, int]:
        """Host index -> (pod, edge switch, port) placement."""
        return (self.pod(index), self.edge(index), index % self.radix)

    def hop_distance(self, src: int, dst: int) -> int:
        """Link hops of the up/down route: 0, 2 (same edge), 4 (same
        pod), or 6 (via core)."""
        if src == dst:
            return 0
        if self.pod(src) == self.pod(dst):
            if self.edge(src) == self.edge(dst):
                return 2
            return 4
        return 6

    def ring_order(self, color: "Color", root: int) -> List[int]:
        """Index-order ring rotated to ``root``; the color's sign picks
        the direction, so paired colors stream in opposite directions."""
        n = self.nnodes
        return [(root + color.sign * i) % n for i in range(n)]

    # -- routing -----------------------------------------------------------
    def _ecmp(self, color: int, src: int, dst: int) -> int:
        """Deterministic equal-cost choice for (src, dst, color)."""
        return (src + dst + color) % self.radix

    def route_channel_keys(self, color: int, src: int, dst: int
                           ) -> List[Tuple]:
        spod, sedge = self.pod(src), self.edge(src)
        dpod, dedge = self.pod(dst), self.edge(dst)
        if spod == dpod and sedge == dedge:
            # host -> edge -> host
            return [("hup", color, src), ("hdn", color, dst)]
        choice = self._ecmp(color, src, dst)
        if spod == dpod:
            # host -> edge -> agg -> edge -> host (within the pod)
            return [
                ("hup", color, src),
                ("eup", color, spod, sedge, choice),
                ("edn", color, dpod, choice, dedge),
                ("hdn", color, dst),
            ]
        # host -> edge -> agg -> core -> agg -> edge -> host
        return [
            ("hup", color, src),
            ("eup", color, spod, sedge, choice),
            ("aup", color, spod, choice),
            ("adn", color, dpod, choice),
            ("edn", color, dpod, choice, dedge),
            ("hdn", color, dst),
        ]

    def channel_touches(self, key: Tuple, node: int) -> bool:
        """Whether the link under ``key`` carries ``node``'s traffic.

        Host links match their host; edge<->agg links match every host
        under that edge switch; agg<->core links match every host in the
        pod (a flap there degrades the whole pod's inter-pod paths).
        """
        kind = key[0]
        if kind in ("hup", "hdn"):
            return key[2] == node
        if kind in ("eup", "edn"):
            _kind, _color, pod, first, second = key
            edge = first if kind == "eup" else second
            return self.pod(node) == pod and self.edge(node) == edge
        # aup / adn
        return self.pod(node) == key[2]

    def _channel_name(self, key: Tuple) -> str:
        kind = key[0]
        if kind in ("hup", "hdn"):
            return f"fattree.c{key[1]}.{kind}.n{key[2]}"
        if kind == "eup":
            _kind, color, pod, edge, agg = key
            return f"fattree.c{color}.eup.p{pod}.e{edge}.a{agg}"
        if kind == "edn":
            _kind, color, pod, agg, edge = key
            return f"fattree.c{color}.edn.p{pod}.a{agg}.e{edge}"
        _kind, color, pod, agg = key
        return f"fattree.c{color}.{kind}.p{pod}.a{agg}"
