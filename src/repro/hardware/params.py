"""Calibrated Blue Gene/P model parameters.

Bandwidths are in bytes/µs (numerically MB/s with 1 MB = 1e6 bytes); times
are in µs.  Primary sources for the raw numbers are the paper itself
(section III) and the public BG/P overview literature; constants that the
paper does not pin down numerically (core copy ceilings, DMA aggregate
budget, per-hop latencies) are calibrated so that the *relative* results of
the evaluation section hold — see ``EXPERIMENTS.md`` for paper-vs-measured.

Key calibration reasoning (quad-mode broadcast over the torus, Fig 10):

* The six edge-disjoint color routes give a link-level ceiling of
  ``6 x 425 = 2550 MB/s``; the paper reports the SMP-mode direct-put
  broadcast running close to that peak.
* In quad mode the current (baseline) algorithm also uses the DMA for the
  intra-node "fourth dimension".  Per payload byte the DMA then moves:
  1 byte network reception + 1 byte network forwarding + 2x3 bytes local
  copies to the three peers (read + write each) = 8 raw bytes, versus 2 in
  SMP mode.  With ``dma_total_bw = 4800`` — just enough for the 2 x 2550
  of a fully forwarding SMP node — the quad baseline lands at ~600 MB/s.
* The proposed shared-address scheme leaves the DMA at 2 raw bytes per
  payload byte and moves the three peer copies onto cores through the
  memory system; at the streaming copy ceiling the scheme tracks the
  network rate, giving the ~2.9x of Figure 10, and degrades toward DRAM
  speed beyond the 8 MB L3 — the droop at 4 MB.
* The Bcast-FIFO scheme funnels every byte through the master core's
  staging copy at the (cache-coherence-limited) ``fifo_copy_bw``, landing
  at the ~1.4x of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.util.units import KIB, MIB


@dataclass(frozen=True)
class BGPParams:
    """All model constants for a simulated BG/P installation."""

    # ------------------------------------------------------------------ node
    #: MPI-visible cores per node (PowerPC 450, 850 MHz).
    cores_per_node: int = 4
    #: Core clock in MHz; used to express per-packet costs in cycles.
    clock_mhz: float = 850.0

    # ---------------------------------------------------------------- memory
    #: Aggregate raw memory-port bandwidth (bytes/µs of reads+writes) while
    #: the working set is L3-resident.  A copy of n payload bytes consumes
    #: 2n raw bytes.
    mem_bw_l3: float = 16000.0
    #: Aggregate raw memory-port bandwidth once the working set spills to
    #: DDR2 (13.6 GB/s theoretical; ~11 GB/s achievable raw).
    mem_bw_dram: float = 9000.0
    #: Single-core copy ceiling (payload bytes/µs), L3-resident.
    core_copy_bw_l3: float = 2000.0
    #: Single-core copy ceiling, DRAM-resident working set.
    core_copy_bw_dram: float = 1350.0
    #: Single-core copy ceiling through a small shared staging FIFO
    #: (payload bytes/µs).  Producer/consumer traffic through freshly
    #: written staging slots ping-pongs cache lines between cores and runs
    #: well below the streaming-copy rate — the key cost separating the
    #: Bcast-FIFO scheme from the shared-address scheme.
    fifo_copy_bw_l3: float = 790.0
    #: Staging-FIFO copy ceiling in the DRAM regime.
    fifo_copy_bw_dram: float = 660.0
    #: Single-core reduction ceiling in *output* bytes/µs (sum of doubles on
    #: the 850 MHz dual-FPU core), L3-resident.  Reducing k input buffers
    #: into one output moves (k+1) raw bytes per output byte.
    core_reduce_bw_l3: float = 2000.0
    #: Single-core reduction ceiling, DRAM regime.
    core_reduce_bw_dram: float = 1400.0
    #: Shared L3 cache size; working sets beyond it shift the memory system
    #: toward the DRAM regime (the Fig-10 droop at 4 MB).
    l3_bytes: int = 8 * MIB

    # ----------------------------------------------------------------- torus
    #: Raw throughput of one torus link (payload bytes/µs); section III
    #: gives 425 MB/s per link, six links per node.
    torus_link_bw: float = 425.0
    #: Per-hop deposit/forwarding latency on the torus (µs).
    torus_hop_latency: float = 0.065
    #: Torus packet size (bytes); granularity of hardware transfers.
    torus_packet_bytes: int = 256

    # ------------------------------------------------------------------- DMA
    #: Aggregate DMA engine budget in raw bytes/µs.  Calibrated (see module
    #: docstring): saturating six links costs 2 raw bytes per payload byte
    #: (receive + forward), leaving no headroom for three 2-byte/byte local
    #: copies on top.
    dma_total_bw: float = 5100.0
    #: Raw DMA bytes consumed per payload byte of an intra-node copy.
    #: Local copies read and write through the same engine port and carry
    #: per-chunk descriptor processing with no torus offload, making them
    #: less efficient than network transfers (calibrated; see EXPERIMENTS.md).
    dma_local_copy_weight: float = 3.0
    #: Core cost of posting one DMA descriptor (µs).
    dma_startup: float = 0.55
    #: Latency between DMA byte-counter hitting its threshold and a polling
    #: core observing it (µs).
    dma_counter_poll: float = 0.12
    #: Extra latency of DMA memory-FIFO delivery (packet header handling,
    #: FIFO pointer updates) per chunk (µs).
    dma_fifo_overhead: float = 0.9

    # ---------------------------------------------------- collective network
    #: Raw throughput of the collective (tree) network: 850 MB/s.
    tree_link_bw: float = 850.0
    #: Per-hop latency of the combining/broadcast tree (µs).
    tree_hop_latency: float = 0.12
    #: Collective network packet size (bytes).
    tree_packet_bytes: int = 256
    #: Ceiling of a single core injecting packets into the tree (payload
    #: bytes/µs).  One core alternating between injection and reception gets
    #: roughly half of each — hence the two-core requirement of section V-B.
    tree_core_inject_bw: float = 850.0
    #: Ceiling of a single core receiving packets from the tree.
    tree_core_recv_bw: float = 850.0
    #: Fixed cost of starting a tree operation from a core (µs).
    tree_inject_startup: float = 0.9
    #: Hardware in-flight window: number of pipeline chunks the tree may
    #: buffer before the slowest receiver backpressures the root.
    tree_window_chunks: int = 2

    # ------------------------------------------------------------------- CNK
    #: Cost of one CNK system call (µs).  Mapping a buffer costs two calls:
    #: virtual->physical translation, then the map itself (section III-B).
    syscall_cost: float = 1.4
    #: Process-window TLB slots reserved per process (N, default three: one
    #: per peer process in quad mode).
    tlb_slots: int = 3
    #: Largest configurable TLB slot size (section III-B: 1 MB / 16 MB /
    #: 256 MB).
    tlb_slot_bytes: int = 256 * MIB
    #: Allowed TLB slot sizes.
    tlb_slot_sizes: Tuple[int, ...] = (1 * MIB, 16 * MIB, 256 * MIB)

    # ------------------------------------------------- shared memory/atomics
    #: Cost of an uncontended atomic fetch-and-increment (µs).
    atomic_op_cost: float = 0.09
    #: Cost of setting/reading a shared signalling flag or counter (µs).
    flag_cost: float = 0.05
    #: Shared-memory staging segment copy startup (cache-line alignment,
    #: pointer arithmetic) per chunk (µs).
    shmem_chunk_overhead: float = 0.3

    # ------------------------------------------------------------- software
    #: MPI/CCMI software stack entry overhead per collective call (µs).
    mpi_overhead: float = 1.9
    #: Global-interrupt-network barrier latency (µs).
    barrier_latency: float = 1.3
    #: Default pipeline width (bytes) for message-counter pipelining.
    pipeline_width: int = 64 * KIB
    #: Default Bcast FIFO slot payload size (bytes).
    fifo_slot_bytes: int = 8 * KIB
    #: Default Bcast FIFO depth (slots).
    fifo_slots: int = 16

    # ------------------------------------------------------------ validation
    def __post_init__(self) -> None:
        positive_fields = [
            "cores_per_node",
            "clock_mhz",
            "mem_bw_l3",
            "mem_bw_dram",
            "core_copy_bw_l3",
            "core_copy_bw_dram",
            "core_reduce_bw_l3",
            "core_reduce_bw_dram",
            "l3_bytes",
            "torus_link_bw",
            "torus_packet_bytes",
            "dma_total_bw",
            "tree_link_bw",
            "tree_packet_bytes",
            "tree_core_inject_bw",
            "tree_core_recv_bw",
            "tree_window_chunks",
            "tlb_slots",
            "tlb_slot_bytes",
            "pipeline_width",
            "fifo_slot_bytes",
            "fifo_slots",
        ]
        for name in positive_fields:
            if not getattr(self, name) > 0:
                raise ValueError(f"BGPParams.{name} must be > 0")
        non_negative_fields = [
            "torus_hop_latency",
            "dma_startup",
            "dma_counter_poll",
            "dma_fifo_overhead",
            "tree_hop_latency",
            "tree_inject_startup",
            "syscall_cost",
            "atomic_op_cost",
            "flag_cost",
            "shmem_chunk_overhead",
            "mpi_overhead",
            "barrier_latency",
        ]
        for name in non_negative_fields:
            if getattr(self, name) < 0:
                raise ValueError(f"BGPParams.{name} must be >= 0")
        if self.mem_bw_dram > self.mem_bw_l3:
            raise ValueError("DRAM memory bandwidth cannot exceed L3 bandwidth")
        if self.tlb_slot_bytes not in self.tlb_slot_sizes:
            raise ValueError(
                f"tlb_slot_bytes must be one of {self.tlb_slot_sizes}"
            )

    def with_overrides(self, **kwargs) -> "BGPParams":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **kwargs)
