"""Models of the Blue Gene/P hardware.

Everything the paper's algorithms touch is modelled here:

* :mod:`repro.hardware.params` — every calibrated constant, documented.
* :mod:`repro.hardware.memory` — the cache-aware memory-port model (the 8 MB
  L3 knee that bends Figure 10's right edge lives here).
* :mod:`repro.hardware.node` — a compute node: four cores, a memory port, a
  DMA engine, torus and collective-network ports.
* :mod:`repro.hardware.dma` — DMA descriptor/counter semantics (direct
  put/get, memory FIFO, local copies).
* :mod:`repro.hardware.torus` — the 3D torus with deposit-bit line
  broadcasts and point-to-point sends.
* :mod:`repro.hardware.tree` — the collective network (tree) with its ALU.
* :mod:`repro.hardware.machine` — assembles nodes + networks and maps MPI
  ranks onto cores according to the operating mode (SMP/DUAL/QUAD).
"""

from repro.hardware.params import BGPParams
from repro.hardware.machine import Machine, Mode
from repro.hardware.node import Node

__all__ = ["BGPParams", "Machine", "Mode", "Node"]
# Fault injection lives in repro.hardware.faults (imported explicitly by
# users; not re-exported to keep the failure-injection surface deliberate).
