"""Models of the Blue Gene/P hardware (and alternative interconnects).

Everything the paper's algorithms touch is modelled here:

* :mod:`repro.hardware.params` — every calibrated constant, documented.
* :mod:`repro.hardware.memory` — the cache-aware memory-port model (the 8 MB
  L3 knee that bends Figure 10's right edge lives here).
* :mod:`repro.hardware.node` — a compute node: four cores, a memory port, a
  DMA engine, torus and collective-network ports.
* :mod:`repro.hardware.dma` — DMA descriptor/counter semantics (direct
  put/get, memory FIFO, local copies).
* :mod:`repro.hardware.network` — the pluggable :class:`NetworkBackend`
  interface and backend registry (see ``docs/topologies.md``).
* :mod:`repro.hardware.torus` — the 3D torus with deposit-bit line
  broadcasts and point-to-point sends.
* :mod:`repro.hardware.fattree` — a k-ary fat-tree with deterministic
  ECMP path coloring.
* :mod:`repro.hardware.leafspine` — a two-tier leaf–spine Clos.
* :mod:`repro.hardware.tree` — the collective network (tree) with its ALU.
* :mod:`repro.hardware.machine` — assembles nodes + networks and maps MPI
  ranks onto cores according to the operating mode (SMP/DUAL/QUAD).
"""

from repro.hardware.params import BGPParams
from repro.hardware.machine import Machine, Mode
from repro.hardware.network import (
    NetworkBackend,
    UnsupportedTopologyError,
    known_backends,
    known_networks,
)
from repro.hardware.node import Node

__all__ = [
    "BGPParams",
    "Machine",
    "Mode",
    "NetworkBackend",
    "Node",
    "UnsupportedTopologyError",
    "known_backends",
    "known_networks",
]
# Fault injection lives in repro.hardware.faults (imported explicitly by
# users; not re-exported to keep the failure-injection surface deliberate).
