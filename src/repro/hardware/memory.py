"""Cache-aware memory-system model.

The PowerPC 450 cores share an 8 MB L3.  Intra-node collective traffic whose
working set fits in L3 runs at L3 speed; once the buffers spill, copy
bandwidth degrades toward DDR2 speed.  The paper attributes the bandwidth
drop of the shared-address broadcast at 4 MB messages exactly to this
("This is due to the L cache size which is 8MB in size", section VI-B).

We model the transition as a linear blend between the L3-regime and
DRAM-regime value over one additional L3-size of working set:

* ``working_set <= L3``          -> pure L3 value,
* ``working_set >= 2 x L3``      -> pure DRAM value,
* linear in between.

The *working set* of a collective is computed by the algorithm itself (it
knows which buffers the node touches per iteration) and installed on the
machine before a run via :meth:`MemoryModel.regime`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.params import BGPParams


@dataclass(frozen=True)
class MemoryRegime:
    """Effective memory-system rates for a given working-set size."""

    working_set: int
    #: aggregate raw bytes/µs through the node's memory port
    raw_capacity: float
    #: single-core copy ceiling, payload bytes/µs
    core_copy_cap: float
    #: single-core staging-FIFO copy ceiling, payload bytes/µs
    fifo_copy_cap: float
    #: single-core reduce ceiling, output bytes/µs
    core_reduce_cap: float


class MemoryModel:
    """Computes :class:`MemoryRegime` values from :class:`BGPParams`."""

    def __init__(self, params: BGPParams):
        self.params = params

    def _blend(self, l3_value: float, dram_value: float, working_set: int) -> float:
        l3 = self.params.l3_bytes
        if working_set <= l3:
            return l3_value
        if working_set >= 2 * l3:
            return dram_value
        frac = (working_set - l3) / l3
        return l3_value * (1.0 - frac) + dram_value * frac

    def regime(self, working_set: int) -> MemoryRegime:
        """Effective rates when a node's hot buffers total ``working_set`` bytes."""
        if working_set < 0:
            raise ValueError(f"working_set must be >= 0, got {working_set}")
        p = self.params
        return MemoryRegime(
            working_set=working_set,
            raw_capacity=self._blend(p.mem_bw_l3, p.mem_bw_dram, working_set),
            core_copy_cap=self._blend(
                p.core_copy_bw_l3, p.core_copy_bw_dram, working_set
            ),
            fifo_copy_cap=self._blend(
                p.fifo_copy_bw_l3, p.fifo_copy_bw_dram, working_set
            ),
            core_reduce_cap=self._blend(
                p.core_reduce_bw_l3, p.core_reduce_bw_dram, working_set
            ),
        )
