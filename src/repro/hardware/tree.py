"""The collective (tree) network.

Section III-A: "The collective network has a tree topology and supports
reliable data movement at a raw throughput of 850MB/s. The hardware is
capable of routing packets upward to the root or downward to the leaves,
and it has an integer arithmetic logic unit (ALU). ... Note that there is
no DMA on this network. Packet injection and reception on the collective
network is handled by a processor core."

Model
-----
Operations on this network are *global*: every node contributes packets
(the root injects data, the others inject zeros into a global OR for a
broadcast) and every node receives the combined result.  We model an
operation as a sequence of pipeline chunks:

* each node injects chunk *k* (a core-driven flow on its ``tree_up`` port);
* the combined chunk becomes *available* once every node's injection has
  completed, plus the up+down traversal latency (``2 x depth x hop``);
* each node then drains chunk *k* from its ``tree_down`` port (another
  core-driven flow);
* the hardware has only :attr:`BGPParams.tree_window_chunks` chunks of
  in-flight buffering: injection of chunk ``k`` blocks until every node has
  drained chunk ``k - window`` (token backpressure).

This makes the paper's two observations emerge naturally: a single core
doing injection *and* reception serializes them (half throughput — hence
"two cores within a node are required to fully saturate the collective
network"), and a receiving core slowed by extra copies backpressures the
entire machine.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List

from repro.sim.events import Event
from repro.sim.sync import SimCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine


def split_chunks(nbytes: int, chunk_bytes: int) -> List[int]:
    """Split ``nbytes`` into pipeline chunks of at most ``chunk_bytes``."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be > 0, got {chunk_bytes}")
    if nbytes == 0:
        return []
    full, rest = divmod(nbytes, chunk_bytes)
    chunks = [chunk_bytes] * full
    if rest:
        chunks.append(rest)
    return chunks


class CollectiveNetwork:
    """The tree network shared by all nodes of a machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.nnodes = machine.nnodes

    @property
    def depth(self) -> int:
        """Tree depth used for latency: ``ceil(log2(nnodes))`` (min 1)."""
        return max(1, math.ceil(math.log2(max(2, self.nnodes))))

    @property
    def traversal_latency(self) -> float:
        """Up-and-down combining latency of one packet (µs)."""
        return 2.0 * self.depth * self.machine.params.tree_hop_latency

    def operation(self, nbytes: int, chunk_bytes: int) -> "TreeOperation":
        """Create the bookkeeping for one global tree operation."""
        return TreeOperation(self, nbytes, chunk_bytes)


class TreeOperation:
    """One global operation (broadcast-via-OR or allreduce) on the tree.

    Used by the collective algorithms: every node's injecting coroutine
    calls :meth:`inject` for each chunk, every receiving coroutine awaits
    :meth:`available` and then issues its drain flow via
    :meth:`receive`.  The class enforces the in-flight window.
    """

    def __init__(self, network: CollectiveNetwork, nbytes: int, chunk_bytes: int):
        self.network = network
        machine = network.machine
        self.machine = machine
        self.chunks = split_chunks(nbytes, chunk_bytes)
        self.nchunks = len(self.chunks)
        nnodes = network.nnodes
        engine = machine.engine
        # chunk k available (combined result left the root downward)
        self._inject_done = [
            SimCounter(engine, name=f"tree.inj{k}") for k in range(self.nchunks)
        ]
        self._available = [Event(engine) for _ in range(self.nchunks)]
        # chunk k fully drained machine-wide (releases a window token)
        self._drained = [
            SimCounter(engine, name=f"tree.drn{k}") for k in range(self.nchunks)
        ]
        self._all_drained = [Event(engine) for _ in range(self.nchunks)]
        self._nnodes = nnodes
        for k in range(self.nchunks):
            latency = network.traversal_latency

            def arm(k: int = k, latency: float = latency) -> None:
                def fire(_v) -> None:
                    engine.call_after(latency, self._available[k].trigger, None)

                self._inject_done[k].wait_for(nnodes).on_trigger(fire)
                self._drained[k].wait_for(nnodes).on_trigger(
                    lambda _v, k=k: self._all_drained[k].trigger(None)
                )

            arm()

    # -- node-side coroutines ------------------------------------------------
    def inject(self, node_index: int, k: int):
        """Sub-generator: node ``node_index``'s core injects chunk ``k``."""
        window = self.machine.params.tree_window_chunks
        if k >= window:
            yield self._all_drained[k - window]
        node = self.machine.nodes[node_index]
        yield node.tree_inject_flow(self.chunks[k], name=f"tree-inj{k}")
        self._inject_done[k].add(1)

    def available(self, k: int) -> Event:
        """Event: combined chunk ``k`` has arrived at every node's FIFO."""
        return self._available[k]

    def receive(self, node_index: int, k: int):
        """Sub-generator: node's core drains chunk ``k`` from the tree FIFO."""
        yield self._available[k]
        node = self.machine.nodes[node_index]
        yield node.tree_receive_flow(self.chunks[k], name=f"tree-rcv{k}")
        self._drained[k].add(1)

    def mark_drained(self, k: int) -> None:
        """Alternative to :meth:`receive` for callers that drain manually."""
        self._drained[k].add(1)
