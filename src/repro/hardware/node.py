"""A Blue Gene/P compute node.

A node owns four flow-network resources:

``mem``
    The shared memory port, in raw bytes/µs (reads + writes).  A copy of
    ``n`` payload bytes consumes ``2n`` raw bytes; a reduction of ``k``
    buffers into one consumes ``(k+1)n``.
``dma``
    The DMA engine's aggregate budget.  Torus injection/reception and
    DMA-driven local copies all draw from it (and from ``mem``).
``tree_up`` / ``tree_down``
    The collective-network injection and reception ports (850 MB/s each
    way).  There is *no DMA* on this network: a core must drive each port,
    which is why these flows are issued from core coroutines.

Core-driven operations are exposed as sub-generators (``yield from
node.core_copy(n)``): the calling coroutine *is* the core, so the core is
busy — and unavailable for other work — for the duration, exactly like the
real PPC450 doing a memcpy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.hardware.memory import MemoryRegime
from repro.sim.flownet import Flow, FlowResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine


class Node:
    """One compute node: resources plus core-op helpers."""

    def __init__(self, machine: "Machine", index: int, coords: Tuple[int, ...]):
        self.machine = machine
        self.index = index
        self.coords = coords
        params = machine.params
        net = machine.flownet
        initial = machine.memory_model.regime(0)
        self.regime: MemoryRegime = initial
        self.mem: FlowResource = net.add_resource(
            f"n{index}.mem", initial.raw_capacity
        )
        self.dma: FlowResource = net.add_resource(
            f"n{index}.dma", params.dma_total_bw
        )
        self.tree_up: FlowResource = net.add_resource(
            f"n{index}.tree_up", params.tree_link_bw
        )
        self.tree_down: FlowResource = net.add_resource(
            f"n{index}.tree_down", params.tree_link_bw
        )

    # -- configuration ----------------------------------------------------
    def set_regime(self, regime: MemoryRegime) -> None:
        """Install the cache regime for the upcoming collective run."""
        self.regime = regime
        self.mem.set_capacity(regime.raw_capacity)

    # -- core-driven flows ---------------------------------------------------
    def core_copy_flow(self, nbytes: int, name: str = "core-copy") -> Flow:
        """Start (without waiting) a single-core memory copy of ``nbytes``."""
        return self.machine.flownet.transfer(
            {self.mem: 2.0},
            nbytes,
            cap=self.regime.core_copy_cap,
            name=f"n{self.index}.{name}",
        )

    def core_copy(self, nbytes: int, name: str = "core-copy"):
        """Sub-generator: the calling core copies ``nbytes`` (blocking it)."""
        yield self.core_copy_flow(nbytes, name=name)

    def fifo_copy(self, nbytes: int, name: str = "fifo-copy"):
        """Sub-generator: a copy into/out of small shared staging slots.

        Producer/consumer traffic through staging FIFOs ping-pongs cache
        lines between cores, so it runs at the lower
        :attr:`~repro.hardware.memory.MemoryRegime.fifo_copy_cap` ceiling.
        """
        yield self.machine.flownet.transfer(
            {self.mem: 2.0},
            nbytes,
            cap=self.regime.fifo_copy_cap,
            name=f"n{self.index}.{name}",
        )

    def core_reduce(self, out_bytes: int, nbuffers: int, name: str = "core-reduce"):
        """Sub-generator: the calling core reduces ``nbuffers`` input buffers
        into one output of ``out_bytes`` (e.g. the local sum of the allreduce).
        """
        if nbuffers < 2:
            raise ValueError(f"reduction needs >= 2 buffers, got {nbuffers}")
        yield self.machine.flownet.transfer(
            {self.mem: float(nbuffers + 1)},
            out_bytes,
            cap=self.regime.core_reduce_cap,
            name=f"n{self.index}.{name}",
        )

    def tree_inject_flow(self, nbytes: int, name: str = "tree-inject") -> Flow:
        """Start a core-driven injection into the collective network."""
        params = self.machine.params
        return self.machine.flownet.transfer(
            {self.mem: 1.0, self.tree_up: 1.0},
            nbytes,
            cap=params.tree_core_inject_bw,
            name=f"n{self.index}.{name}",
        )

    def tree_receive_flow(self, nbytes: int, name: str = "tree-recv") -> Flow:
        """Start a core-driven drain of the collective network's output FIFO."""
        params = self.machine.params
        return self.machine.flownet.transfer(
            {self.mem: 1.0, self.tree_down: 1.0},
            nbytes,
            cap=params.tree_core_recv_bw,
            name=f"n{self.index}.{name}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} coords={self.coords}>"
