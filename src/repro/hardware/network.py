"""Pluggable network backends: the channel-owning interconnect interface.

The paper's intra-node techniques (shared-address, FIFO, DMA direct-put)
are topology-agnostic; only the *inter-node* stage of each collective
cares what wire the bytes ride.  This module extracts the interface that
:class:`~repro.hardware.torus.TorusNetwork` always half-exposed — lazy
per-color channel ownership (``iter_channels`` / ``channels_touching`` /
channel hooks) plus a point-to-point transfer primitive — into an
abstract :class:`NetworkBackend`, so a :class:`~repro.hardware.machine.
Machine` can be built over any registered interconnect:

* ``torus``     — the BG/P 3D torus (deposit-bit line broadcasts plus
  dimension-ordered point-to-point sends);
* ``fattree``   — a k-ary fat-tree with ECMP-style deterministic path
  coloring (:mod:`repro.hardware.fattree`);
* ``leafspine`` — a two-tier leaf–spine Clos (:mod:`repro.hardware.
  leafspine`).

Every backend creates its channels through the same
:class:`~repro.sim.flownet.FlowResource` machinery, so the max-min
fair-share solver, the fault schedules (``LinkFlap`` scales channels
found via ``channels_touching`` and catches late ones via channel
hooks), and the telemetry layer work unchanged on all of them.

Wires vs backends
-----------------

Algorithm capability metadata (``AlgorithmInfo.network``) names the
*wire* an algorithm rides, which is not always a constructible backend:

* ``"torus"`` — needs the deposit-bit ``line_broadcast`` primitive that
  only the torus provides;
* ``"tree"``  — the BG/P collective network (a per-node port pair, built
  by :class:`~repro.hardware.tree.CollectiveNetwork`);
* ``"gi"``    — the global interrupt network (barriers);
* ``"ptp"``   — plain point-to-point sends, available on every backend
  through :meth:`NetworkBackend.ptp_send`.

A backend declares the wires it can host in :attr:`NetworkBackend.wires`;
the harness refuses (with :class:`UnsupportedTopologyError`) to run an
algorithm whose wire the machine's backend does not provide.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.events import Event
from repro.sim.flownet import FlowResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine
    from repro.msg.color import Color


class UnsupportedTopologyError(RuntimeError):
    """An algorithm/selection was asked for on a network it cannot ride.

    Deliberately *not* a :class:`KeyError`: a missing-topology condition
    is a configuration statement ("this machine has no torus"), not a
    lookup typo, and callers that retry on ``KeyError`` must not swallow
    it.
    """


#: wire tags that are not constructible backends (see module docstring)
AUX_WIRES: Tuple[str, ...] = ("tree", "gi", "ptp")

#: backend name -> module whose import registers the backend class.
#: Kept as a static table (like the collective-family registry) so
#: ``known_backends`` needs no imports and ``@register`` validation stays
#: cheap at class-decoration time.
_BACKEND_MODULES: Dict[str, str] = {
    "torus": "repro.hardware.torus",
    "fattree": "repro.hardware.fattree",
    "leafspine": "repro.hardware.leafspine",
}

_BACKENDS: Dict[str, type] = {}


def register_backend(cls: type) -> type:
    """Class decorator: add a :class:`NetworkBackend` subclass by its
    ``name`` to the backend registry."""
    name = getattr(cls, "name", None)
    if not name or name == "?":
        raise ValueError(
            f"{cls.__name__} must define a backend `name` attribute"
        )
    if name not in _BACKEND_MODULES:
        raise ValueError(
            f"backend {name!r} missing from the _BACKEND_MODULES table; "
            f"known: {sorted(_BACKEND_MODULES)}"
        )
    previous = _BACKENDS.get(name)
    if previous is not None and previous is not cls:
        raise ValueError(
            f"duplicate backend registration for {name!r}: "
            f"{previous.__name__} vs {cls.__name__}"
        )
    _BACKENDS[name] = cls
    return cls


def known_backends() -> List[str]:
    """Names of every constructible network backend."""
    return sorted(_BACKEND_MODULES)


def known_networks() -> List[str]:
    """Every valid ``AlgorithmInfo.network`` tag: backends plus wires."""
    return sorted(set(_BACKEND_MODULES) | set(AUX_WIRES))


def backend_class(name: str) -> type:
    """The registered backend class for ``name`` (imports its module).

    Lets policy layers inspect a backend's capabilities (e.g.
    :attr:`NetworkBackend.wires`) without constructing a machine.
    """
    if name not in _BACKEND_MODULES:
        raise UnsupportedTopologyError(
            f"unknown network backend {name!r}; known: {known_backends()}"
        )
    import importlib

    importlib.import_module(_BACKEND_MODULES[name])
    return _BACKENDS[name]


def create_network(
    name: str,
    machine: "Machine",
    dims: Sequence[int],
    wrap: bool = True,
    params: Optional[dict] = None,
) -> "NetworkBackend":
    """Construct the named backend for ``machine``.

    ``dims`` is the machine geometry (its product is the node count on
    non-torus backends); ``params`` passes backend-specific geometry
    knobs (e.g. ``{"k": 8}`` for the fat-tree) through to the backend
    constructor.
    """
    cls = backend_class(name)
    return cls(machine, tuple(dims), wrap=wrap, **(params or {}))


class NetworkBackend:
    """Abstract interconnect: topology, channel ownership, transfers.

    Subclasses provide the topology surface (:meth:`coords`,
    :meth:`hop_distance`, :meth:`ring_order`), the routing surface
    (:meth:`route_channel_keys` + :meth:`channel_touches` +
    :meth:`_channel_name`), and set :attr:`nnodes` in their constructor.
    The channel machinery — lazy :class:`FlowResource` creation,
    creation hooks, fault-injection lookups — is shared here, and the
    generic :meth:`ptp_send` covers every backend whose routes reduce to
    a key list (the torus overrides it with its historical
    dimension-ordered implementation).
    """

    #: registry name of this backend ("torus", "fattree", ...)
    name: str = "?"
    #: algorithm wires this backend can host (see module docstring)
    wires: Tuple[str, ...] = ("ptp", "gi")

    def __init__(self, machine: "Machine", dims: Sequence[int],
                 wrap: bool = True):
        self.machine = machine
        #: geometry tuple the machine was configured with (reported in
        #: manifests/reprs; its semantics are backend-specific)
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        self.wrap = bool(wrap)
        #: node count — set by the subclass constructor
        self.nnodes: int = 0
        self._channels: Dict[Tuple, FlowResource] = {}
        #: callbacks fired when a channel is lazily created (fault injectors
        #: use this so flaps also catch channels built mid-window)
        self._channel_hooks: List[Callable[[Tuple, FlowResource], None]] = []

    # -- capability -------------------------------------------------------
    def supports_wire(self, wire: str) -> bool:
        """Whether algorithms riding ``wire`` can run on this backend."""
        return wire in self.wires

    # -- topology (subclass responsibility) -------------------------------
    def coords(self, index: int) -> Tuple[int, ...]:
        """Node index -> placement coordinates (backend-specific tuple)."""
        raise NotImplementedError

    def hop_distance(self, src: int, dst: int) -> int:
        """Link hops between two nodes under this backend's routing."""
        raise NotImplementedError

    def ring_order(self, color: "Color", root: int) -> List[int]:
        """A deterministic ring over every node, starting at ``root``.

        The ring collectives (allgather/gather/scatter, the allreduce's
        reduce-scatter pipeline) only need *some* Hamiltonian order per
        color; each backend picks the one its topology makes cheap (the
        torus snakes, switched fabrics rotate).
        """
        raise NotImplementedError

    # -- channels ---------------------------------------------------------
    def iter_channels(self) -> Iterator[Tuple[Tuple, FlowResource]]:
        """Yield ``(key, channel)`` for every channel created so far.

        Channels are created lazily, so the listing grows as collectives
        build their routes; injectors that must also catch future
        channels register an :meth:`add_channel_hook` callback.
        """
        yield from self._channels.items()

    def channel_touches(self, key: Tuple, node: int) -> bool:
        """Whether the channel under ``key`` carries traffic through
        ``node`` (backend-specific key interpretation)."""
        raise NotImplementedError

    def channels_touching(self, node: int) -> List[FlowResource]:
        """Existing channels whose route passes through ``node``."""
        return [
            channel for key, channel in self.iter_channels()
            if self.channel_touches(key, node)
        ]

    def add_channel_hook(
        self, hook: Callable[[Tuple, FlowResource], None]
    ) -> None:
        """Call ``hook(key, channel)`` whenever a channel is lazily created."""
        self._channel_hooks.append(hook)

    def remove_channel_hook(
        self, hook: Callable[[Tuple, FlowResource], None]
    ) -> None:
        """Deregister a channel-creation hook (no-op if absent)."""
        if hook in self._channel_hooks:
            self._channel_hooks.remove(hook)

    def _install_channel(self, key: Tuple, channel: FlowResource) -> None:
        self._channels[key] = channel
        for hook in self._channel_hooks:
            hook(key, channel)

    def _channel(self, key: Tuple) -> FlowResource:
        """The wire resource under ``key``, lazily created."""
        channel = self._channels.get(key)
        if channel is None:
            channel = self.machine.flownet.add_resource(
                self._channel_name(key), self._channel_capacity(key)
            )
            self._install_channel(key, channel)
        return channel

    def _channel_name(self, key: Tuple) -> str:
        """Flow-resource name for the channel under ``key``."""
        raise NotImplementedError

    def _channel_capacity(self, key: Tuple) -> float:
        """Capacity (MB/s) of the channel under ``key``.

        Every backend's links default to the calibrated BG/P torus link
        bandwidth so cross-topology comparisons vary exactly one thing —
        the wiring, not the wire.
        """
        return self.machine.params.torus_link_bw

    # -- routing ----------------------------------------------------------
    def route_channel_keys(self, color: int, src: int, dst: int
                           ) -> List[Tuple]:
        """Channel keys of every link a ``src -> dst`` transfer traverses."""
        raise NotImplementedError

    # -- primitives --------------------------------------------------------
    def ptp_send(
        self,
        color: int,
        src: int,
        dst: int,
        nbytes: int,
        name: str = "ptp",
    ) -> Event:
        """Start a point-to-point DMA send; returns the delivery event.

        The flow holds the color channel of every link on the route
        (:meth:`route_channel_keys`) plus both endpoints' DMA and memory
        ports; delivery fires one per-hop cut-through latency after the
        source finishes injecting.
        """
        machine = self.machine
        engine = machine.engine
        delivered = Event(engine)
        if src == dst or nbytes == 0:
            delivered.trigger(engine.now)
            return delivered
        src_node, dst_node = machine.nodes[src], machine.nodes[dst]
        usage: Dict[FlowResource, float] = {
            src_node.dma: 1.0,
            src_node.mem: 1.0,
            dst_node.dma: 1.0,
            dst_node.mem: 1.0,
        }
        keys = self.route_channel_keys(color, src, dst)
        for key in keys:
            channel = self._channel(key)
            usage[channel] = usage.get(channel, 0.0) + 1.0
        flow = machine.flownet.transfer(usage, nbytes, name=f"{name}.c{color}")
        hops = len(keys)
        hop_lat = machine.params.torus_hop_latency

        def on_complete(_value) -> None:
            engine.call_after(hops * hop_lat, delivered.trigger, None)

        flow.event.on_trigger(on_complete)
        return delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        geometry = "x".join(str(d) for d in self.dims)
        return f"<{type(self).__name__} {geometry} nnodes={self.nnodes}>"
