"""Fault and perturbation injection.

Real machines are not uniform: links train down, a node's DRAM throttles,
OS noise steals core cycles.  This module perturbs a built machine so the
test suite can check that the collectives stay *correct* under degradation
and that the performance model reacts the way hardware would — e.g. a
single slow drain core backpressures the whole collective network, and a
degraded torus link throttles every color stream crossing it.

All injectors operate on resource capacities (and, for jitter, on
per-process delays), so they compose with every algorithm unmodified.
Injectors that touch capacities reinstalled by
:meth:`Machine.set_working_set` register a reapply hook on the machine,
so the perturbation persists across regime changes.  For *time-windowed*
faults driven by the simulation clock, see
:mod:`repro.hardware.fault_schedule`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.hardware.fault_schedule import (  # noqa: F401 - re-exported
    ActiveFaults,
    CounterStall,
    Fault,
    FaultSchedule,
    LinkFlap,
    NodeSlowdown,
    RetryPolicy,
    TreePortFlap,
    WindowFault,
)
from repro.hardware.machine import Machine


def degrade_node_memory(machine: Machine, node: int, factor: float) -> None:
    """Scale one node's memory-port capacity by ``factor`` (0 < f <= 1).

    Models a node whose DRAM is throttled (thermal limits, ECC storms).
    The scaling persists across :meth:`Machine.set_working_set` — a reapply
    hook re-multiplies the freshly installed regime capacity by ``factor``.
    """
    _check_factor(factor)
    mem = machine.nodes[node].mem
    mem.set_capacity(mem.capacity * factor)
    machine.add_reapply_hook(
        lambda: mem.set_capacity(mem.capacity * factor)
    )


def degrade_node_dma(machine: Machine, node: int, factor: float) -> None:
    """Scale one node's DMA budget by ``factor``."""
    _check_factor(factor)
    machine.nodes[node].dma.set_capacity(
        machine.nodes[node].dma.capacity * factor
    )


def degrade_tree_port(machine: Machine, node: int, factor: float,
                      direction: str = "down") -> None:
    """Scale one node's tree injection/reception port by ``factor``.

    A single degraded drain port backpressures the whole tree through the
    in-flight window — the machine-wide straggler effect.
    """
    _check_factor(factor)
    port = (
        machine.nodes[node].tree_down
        if direction == "down"
        else machine.nodes[node].tree_up
    )
    port.set_capacity(port.capacity * factor)


def degrade_torus_channels(machine: Machine, node: int, factor: float) -> None:
    """Scale every existing torus channel touching lines through ``node``.

    Torus channels are created lazily, so call this after the collective's
    invocation has been constructed (routes built), or re-apply before each
    run.  Channels whose line passes through the node are scaled — the
    moral equivalent of one node's links training down to a lower rate.
    Uses the public :meth:`NetworkBackend.channels_touching` enumeration
    (any backend, not just the torus).
    """
    _check_factor(factor)
    for channel in machine.network.channels_touching(node):
        channel.set_capacity(channel.capacity * factor)


class DegradedMemoryMachine:
    """Deprecated shim: persistent single-node memory degradation.

    Kept for callers that predate the reapply-hook mechanism.  New code
    should call :func:`degrade_node_memory` directly — its scaling already
    survives :meth:`Machine.set_working_set` — or install a
    :class:`~repro.hardware.fault_schedule.NodeSlowdown` window for
    time-bounded degradation.  Wraps (does not subclass) a machine.
    """

    def __init__(self, machine: Machine, node: int, factor: float):
        degrade_node_memory(machine, node, factor)
        self.machine = machine
        self.node = node
        self.factor = factor

    def __getattr__(self, name):
        return getattr(self.machine, name)


class JitterInjector:
    """OS-noise model: random extra delays charged to ranks' cores.

    Use from a wrapped invocation ``proc`` or via :func:`jittered_procs`:
    every call to :meth:`delay` draws a non-negative delay (exponential,
    mean ``mean_us``) from a seeded RNG, so runs stay reproducible.
    """

    def __init__(self, machine: Machine, mean_us: float, seed: int = 99):
        if mean_us < 0:
            raise ValueError(f"mean_us must be >= 0, got {mean_us}")
        self.machine = machine
        self.mean_us = mean_us
        self._rng = np.random.default_rng(seed)

    def delay(self):
        """Sub-generator: one noise event on the calling core."""
        if self.mean_us > 0:
            yield self.machine.engine.timeout(
                float(self._rng.exponential(self.mean_us))
            )
        else:
            yield self.machine.engine.timeout(0.0)


def jittered_proc(invocation, rank: int, jitter: JitterInjector):
    """Wrap an invocation's per-rank coroutine with entry/exit OS noise."""
    yield from jitter.delay()
    yield from invocation.proc(rank)
    yield from jitter.delay()


def _check_factor(factor: float) -> None:
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
