"""Transient-fault timelines driven by the simulation engine.

The static injectors of :mod:`repro.hardware.faults` perturb a machine once,
before a run.  Real machines misbehave *mid-collective*: a link trains down
for a few hundred microseconds and recovers, a node's DRAM throttles through
a thermal event, the kernel transiently runs out of the TLB slots backing
shared-address windows, a core servicing a software message counter stalls.
This module models those as a :class:`FaultSchedule` — a timeline of
:class:`Fault` windows installed into a machine's engine.  Each window is
emitted into the engine trace as a paired ``flow+ fault.*`` / ``flow-
fault.*`` event, so :mod:`repro.sim.tracing` renders the fault timeline as
its own row in the chrome trace.

Two fault families exist:

*capacity faults* (:class:`LinkFlap`, :class:`NodeSlowdown`,
:class:`TreePortFlap`)
    applied and reverted by engine callbacks at the window edges; they scale
    flow-network capacities, so every algorithm slows but stays correct.

*protocol faults* (:class:`WindowFault`, :class:`CounterStall`)
    recorded in the machine's :class:`ActiveFaults` registry and *queried*
    at the protocol boundary: :meth:`repro.kernel.windows.ProcessWindows.\
map_buffer` consults :meth:`ActiveFaults.window_slot_cap` (bounded TLB-slot
    exhaustion, retried with exponential backoff under the machine's
    :class:`RetryPolicy`), and software counters built with
    :meth:`~repro.hardware.machine.Machine.make_counter` consult
    :meth:`ActiveFaults.stall_remaining`.  When the retry budget is
    exhausted — or a collective misses its deadline because its counters
    never advance — a :class:`~repro.sim.engine.TransientFaultError`
    escapes the run and the resilience layer
    (:mod:`repro.bench.chaos`) degrades to the next protocol in the
    fallback ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine

#: "never clears within this run": a stall deferral far past any plausible
#: deadline, kept finite so heap/rebase arithmetic stays well-defined
_NEVER_US = 1e12


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry budget for faultable operations.

    An operation that hits a transient fault is retried up to
    ``max_attempts`` times total; retry *k* (1-based) first waits
    ``base_backoff_us * backoff_factor**(k-1)`` microseconds, capped at
    ``max_backoff_us`` — classic bounded exponential backoff.

    The policy is pure arithmetic over its fields, so it serves two
    clock domains: the simulator's protocol retries (microseconds of
    engine time, via :meth:`backoff_us`) and the sweep farm's wall-clock
    retries — chunk re-queues after lease expiry, worker/driver
    reconnects across a server restart — via :meth:`backoff_s`
    (:mod:`repro.bench.farm`).
    """

    max_attempts: int = 5
    base_backoff_us: float = 8.0
    backoff_factor: float = 2.0
    max_backoff_us: float = 512.0

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = self.base_backoff_us * self.backoff_factor ** (attempt - 1)
        return min(delay, self.max_backoff_us)

    def backoff_s(self, attempt: int) -> float:
        """:meth:`backoff_us` in seconds, for wall-clock (non-simulator) use."""
        return self.backoff_us(attempt) / 1e6


@dataclass(frozen=True)
class Fault:
    """One fault window: active on ``[start, start + duration)`` µs.

    ``duration=None`` means the fault never clears during the run (the
    harness treats it as lasting past any deadline).
    """

    start: float = 0.0
    duration: Optional[float] = None

    def label(self) -> str:  # pragma: no cover - overridden
        return "fault"

    @property
    def end(self) -> Optional[float]:
        if self.duration is None:
            return None
        return self.start + self.duration


@dataclass(frozen=True)
class LinkFlap(Fault):
    """Torus channels through ``node`` run at ``factor`` during the window.

    Also catches channels lazily created while the flap is active, via the
    torus channel-creation hook.
    """

    node: int = 0
    factor: float = 0.5

    def label(self) -> str:
        return f"fault.linkflap.n{self.node}"


@dataclass(frozen=True)
class TreePortFlap(Fault):
    """One node's collective-network port degrades during the window."""

    node: int = 0
    factor: float = 0.5
    direction: str = "down"

    def label(self) -> str:
        return f"fault.treeport.n{self.node}.{self.direction}"


@dataclass(frozen=True)
class NodeSlowdown(Fault):
    """One node's memory and DMA ports run at ``factor`` during the window.

    The memory scaling survives :meth:`Machine.set_working_set` through the
    machine's capacity reapply hooks.
    """

    node: int = 0
    factor: float = 0.5

    def label(self) -> str:
        return f"fault.slowdown.n{self.node}"


@dataclass(frozen=True)
class WindowFault(Fault):
    """Bounded TLB-slot exhaustion: window mappings fail during the window.

    While active, a mapping attempt on ``node`` (``None`` = every node)
    needing more than ``slots_available`` TLB slots fails and is retried
    under the machine's :class:`RetryPolicy`; with the default
    ``slots_available=0`` every mapping attempt fails until the window
    clears or the retry budget runs out.
    """

    node: Optional[int] = None
    slots_available: int = 0

    def label(self) -> str:
        where = "all" if self.node is None else f"n{self.node}"
        return f"fault.winmap.{where}"


@dataclass(frozen=True)
class CounterStall(Fault):
    """Software message-counter publishes on ``node`` stall in the window.

    Watchers of counters built via :meth:`Machine.make_counter` whose
    threshold is met during the window are woken only when the window
    clears — the paper's master core stops mirroring DMA counters into the
    software counter.  Already-published values stay readable.
    """

    node: Optional[int] = None

    def label(self) -> str:
        where = "all" if self.node is None else f"n{self.node}"
        return f"fault.ctrstall.{where}"


class ActiveFaults:
    """Per-machine registry of protocol-fault windows plus fault stats.

    Pure query layer: the fast path (no faults installed) is a single
    ``if not list`` check.  Window times are stored in engine time and are
    shifted by :meth:`rebase` whenever the machine rebases its clock, so
    queries stay consistent across the harness's per-iteration rebasing.
    """

    def __init__(self, machine: "Machine"):
        self.machine = machine
        # (start, end-or-None, node-or-None, slots_available)
        self._window_faults: List[
            Tuple[float, Optional[float], Optional[int], int]
        ] = []
        # (start, end-or-None, node-or-None)
        self._counter_stalls: List[
            Tuple[float, Optional[float], Optional[int]]
        ] = []
        #: windows retried after a faulted mapping attempt
        self.window_retries = 0
        #: mapping operations that exhausted their retry budget
        self.window_failures = 0
        #: counter publishes that hit an active stall
        self.counter_stalls_hit = 0
        #: fault windows ever armed on this machine (any family).  Unlike
        #: ``_window_faults``/``_counter_stalls`` this also counts capacity
        #: faults (LinkFlap, NodeSlowdown, TreePortFlap), which act through
        #: engine callbacks rather than the query lists — it is the one
        #: signal "this machine's timing may deviate from the fault-free
        #: model" that the analytic fast path checks before engaging.
        self.armed = 0

    def any_armed(self) -> bool:
        """True once any fault window was ever installed on this machine."""
        return self.armed > 0

    # -- installation (used by FaultSchedule) ---------------------------
    def add_window_fault(
        self,
        start: float,
        end: Optional[float],
        node: Optional[int],
        slots_available: int,
    ) -> None:
        self._window_faults.append((start, end, node, slots_available))

    def add_counter_stall(
        self, start: float, end: Optional[float], node: Optional[int]
    ) -> None:
        self._counter_stalls.append((start, end, node))

    # -- queries ---------------------------------------------------------
    @staticmethod
    def _active(start: float, end: Optional[float], now: float) -> bool:
        return start <= now and (end is None or now < end)

    @staticmethod
    def _matches(fault_node: Optional[int], node: Optional[int]) -> bool:
        # A machine-wide fault hits every caller; a node-scoped fault hits
        # that node plus callers whose node is unknown.
        return fault_node is None or node is None or fault_node == node

    def window_slot_cap(self, node: Optional[int]) -> Optional[int]:
        """Active TLB-slot cap for mappings on ``node`` (None = healthy)."""
        if not self._window_faults:
            return None
        now = self.machine.engine.now
        cap: Optional[int] = None
        for start, end, fault_node, slots in self._window_faults:
            if self._active(start, end, now) and self._matches(fault_node, node):
                cap = slots if cap is None else min(cap, slots)
        return cap

    def stall_remaining(self, node: Optional[int]) -> float:
        """Microseconds until counter publishes on ``node`` unstall (0 = now)."""
        if not self._counter_stalls:
            return 0.0
        now = self.machine.engine.now
        until = now
        for start, end, fault_node in self._counter_stalls:
            if not self._active(start, end, now):
                continue
            if not self._matches(fault_node, node):
                continue
            if end is None:
                # Never clears within this run: stall past any deadline.
                until = now + _NEVER_US
                break
            until = max(until, end)
        remaining = until - now
        if remaining > 0.0:
            self.counter_stalls_hit += 1
            return remaining
        return 0.0

    def rebase(self, origin: float) -> None:
        """Shift stored windows when the machine rebases its clock."""
        if origin == 0.0:
            return
        self._window_faults = [
            (s - origin, None if e is None else e - origin, n, c)
            for (s, e, n, c) in self._window_faults
        ]
        self._counter_stalls = [
            (s - origin, None if e is None else e - origin, n)
            for (s, e, n) in self._counter_stalls
        ]


class FaultSchedule:
    """An ordered timeline of transient faults, installable into a machine.

    The schedule itself is immutable and machine-independent, so one
    schedule can be installed into successive fresh machines — the chaos
    harness reinstalls the *remainder* of the timeline into each fallback
    attempt by passing the campaign time already consumed as ``at``.
    """

    def __init__(self, faults: List[Fault]):
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: f.start)
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule {[f.label() for f in self.faults]}>"

    # -- installation -----------------------------------------------------
    def install(self, machine: "Machine", at: float = 0.0) -> int:
        """Arm the timeline on ``machine``; returns the faults installed.

        ``at`` is the campaign time at which this machine starts running:
        fault windows are shifted left by ``at``, windows already over are
        skipped, and windows already open start immediately with their
        remaining duration.  Requires the machine's engine to be at its
        start-of-run clock (install before running).
        """
        installed = 0
        for fault in self.faults:
            start = fault.start - at
            end = None if fault.end is None else fault.end - at
            if end is not None and end <= 0.0:
                continue  # window fully in the past
            start = max(0.0, start)
            self._arm(machine, fault, start, end)
            machine.faults.armed += 1
            installed += 1
        return installed

    def _arm(
        self,
        machine: "Machine",
        fault: Fault,
        start: float,
        end: Optional[float],
    ) -> None:
        engine = machine.engine
        label = fault.label()
        base = engine.now

        if isinstance(fault, WindowFault):
            machine.faults.add_window_fault(
                base + start, None if end is None else base + end,
                fault.node, fault.slots_available,
            )
            apply_fn, revert_fn = None, None
        elif isinstance(fault, CounterStall):
            machine.faults.add_counter_stall(
                base + start, None if end is None else base + end, fault.node,
            )
            apply_fn, revert_fn = None, None
        elif isinstance(fault, LinkFlap):
            apply_fn, revert_fn = self._link_flap_actions(machine, fault)
        elif isinstance(fault, NodeSlowdown):
            apply_fn, revert_fn = self._slowdown_actions(machine, fault)
        elif isinstance(fault, TreePortFlap):
            apply_fn, revert_fn = self._tree_port_actions(machine, fault)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown fault type {type(fault).__name__}")

        def on_start(_value) -> None:
            engine.trace(f"flow+ {label}")
            if apply_fn is not None:
                apply_fn()

        def on_end(_value) -> None:
            if revert_fn is not None:
                revert_fn()
            engine.trace(f"flow- {label}")

        engine.call_at(base + start, on_start, None)
        if end is not None:
            engine.call_at(base + end, on_end, None)

    # -- capacity-fault actions ------------------------------------------
    @staticmethod
    def _link_flap_actions(machine: "Machine", fault: LinkFlap):
        _check_factor(fault.factor)
        network = machine.network
        scaled: List = []

        def hook(key, channel) -> None:
            if network.channel_touches(key, fault.node):
                channel.set_capacity(channel.capacity * fault.factor)
                scaled.append(channel)

        def apply() -> None:
            for channel in network.channels_touching(fault.node):
                channel.set_capacity(channel.capacity * fault.factor)
                scaled.append(channel)
            network.add_channel_hook(hook)

        def revert() -> None:
            network.remove_channel_hook(hook)
            for channel in scaled:
                channel.set_capacity(channel.capacity / fault.factor)
            scaled.clear()

        return apply, revert

    @staticmethod
    def _slowdown_actions(machine: "Machine", fault: NodeSlowdown):
        _check_factor(fault.factor)
        node = machine.nodes[fault.node]
        dma = machine.nodes[fault.node].dma

        def reapply() -> None:
            # set_working_set just reinstalled the regime capacity; rescale.
            node.mem.set_capacity(node.mem.capacity * fault.factor)

        def apply() -> None:
            node.mem.set_capacity(node.mem.capacity * fault.factor)
            dma.set_capacity(dma.capacity * fault.factor)
            machine.add_reapply_hook(reapply)

        def revert() -> None:
            machine.remove_reapply_hook(reapply)
            node.mem.set_capacity(node.mem.capacity / fault.factor)
            dma.set_capacity(dma.capacity / fault.factor)

        return apply, revert

    @staticmethod
    def _tree_port_actions(machine: "Machine", fault: TreePortFlap):
        _check_factor(fault.factor)
        node = machine.nodes[fault.node]
        port = node.tree_down if fault.direction == "down" else node.tree_up

        def apply() -> None:
            port.set_capacity(port.capacity * fault.factor)

        def revert() -> None:
            port.set_capacity(port.capacity / fault.factor)

        return apply, revert

    # -- generation -------------------------------------------------------
    @classmethod
    def random(
        cls,
        rng,
        nnodes: int,
        *,
        horizon_us: float,
        max_faults: int = 3,
    ) -> "FaultSchedule":
        """Draw a seeded random campaign of 1..``max_faults`` fault windows.

        ``rng`` is a :class:`numpy.random.Generator`; the same generator
        state always yields the same schedule, which is what makes chaos
        campaigns replayable from a single seed.  Window starts land in the
        first half of ``horizon_us``; durations are sized around the
        default retry-backoff budget so both recovery outcomes — retry
        succeeds, retry exhausts and falls back — occur across a campaign.
        """
        kinds = ("link", "slowdown", "treeport", "window", "ctrstall")
        faults: List[Fault] = []
        for _ in range(int(rng.integers(1, max_faults + 1))):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            node = int(rng.integers(0, nnodes))
            start = float(rng.uniform(0.0, horizon_us * 0.5))
            duration = float(rng.uniform(horizon_us * 0.05, horizon_us * 0.6))
            factor = float(rng.uniform(0.2, 0.8))
            if kind == "link":
                faults.append(LinkFlap(start, duration, node, factor))
            elif kind == "slowdown":
                faults.append(NodeSlowdown(start, duration, node, factor))
            elif kind == "treeport":
                direction = "down" if rng.integers(0, 2) == 0 else "up"
                faults.append(
                    TreePortFlap(start, duration, node, factor, direction)
                )
            elif kind == "window":
                faults.append(WindowFault(start, duration, node, 0))
            else:
                faults.append(CounterStall(start, duration, node))
        return cls(faults)


def _check_factor(factor: float) -> None:
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
