"""DMA engine semantics: descriptors, byte counters, direct put/get,
memory-FIFO delivery, and intra-node copies.

The BG/P DMA (section III-A of the paper) is the workhorse of the *current*
(baseline) algorithms: it injects/receives torus packets and also performs
"local intra-node memory copies".  Its crucial property for this paper is a
finite aggregate budget — "the DMA, though capable of keeping all the six
links busy ... is not enough to concurrently transfer the data within the
node along with the network transfers".  The budget is the node's ``dma``
flow resource; this module adds the *semantics* around it:

* ``post`` — the descriptor-injection cost paid by the posting core;
* ``local_copy`` / ``direct_put_local`` — a DMA-driven node-local copy
  (2 raw bytes/byte on both the DMA and the memory port), completion
  observable through a :class:`DmaCounter`;
* ``fifo_deliver`` — delivery into a reception memory FIFO: the DMA writes
  packets into a staging FIFO (1 write byte/byte) and the *receiving core*
  must then copy payload out to the application buffer (modelled by the
  caller as a core copy), plus per-chunk FIFO bookkeeping latency.

Byte counters mirror the hardware: a counter is allocated per operation,
decremented (we count *up* for convenience) as bytes land, and polled by
cores with :attr:`BGPParams.dma_counter_poll` observation latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.flownet import Flow
from repro.sim.sync import SimCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.node import Node


class DmaCounter:
    """A DMA byte counter plus the polling discipline of the cores.

    Hardware counters are decremented by the DMA as chunks land; processes
    poll them.  ``wait_for(threshold)`` models a poll loop observing the
    counter having reached ``threshold`` bytes, including the poll-detection
    latency.
    """

    def __init__(self, node: "Node", name: str = "dma-counter"):
        self.node = node
        self.name = name
        self._counter = SimCounter(node.machine.engine, 0.0, name=name)

    @property
    def value(self) -> float:
        return self._counter.value

    def add(self, nbytes: float) -> None:
        """DMA-side: account ``nbytes`` more landed bytes."""
        self._counter.add(nbytes)

    def wait_for(self, threshold: float):
        """Sub-generator: core polls until the counter reaches ``threshold``."""
        engine = self.node.machine.engine
        if self._counter.value < threshold:
            yield self._counter.wait_for(threshold)
            # Detection latency of the poll loop.
            yield engine.timeout(self.node.machine.params.dma_counter_poll)
        return self._counter.value


class DmaEngine:
    """Per-node facade over the node's ``dma`` flow resource."""

    def __init__(self, node: "Node"):
        self.node = node
        self.params = node.machine.params
        self._net = node.machine.flownet

    # -- costs paid by cores -----------------------------------------------
    def post(self):
        """Sub-generator: the calling core posts one DMA descriptor."""
        yield self.node.machine.engine.timeout(self.params.dma_startup)

    # -- DMA-driven movement ---------------------------------------------
    def local_copy_flow(self, nbytes: int, name: str = "dma-copy") -> Flow:
        """Start a DMA-driven node-local copy (direct put to a local buffer).

        Consumes :attr:`BGPParams.dma_local_copy_weight` raw bytes per
        payload byte on the DMA engine (read + write + descriptor handling
        through the same port) and 2 on the memory port.
        """
        return self._net.transfer(
            {self.node.dma: self.params.dma_local_copy_weight,
             self.node.mem: 2.0},
            nbytes,
            name=f"n{self.node.index}.{name}",
        )

    def local_copy(self, nbytes: int, counter: DmaCounter | None = None,
                   name: str = "dma-copy"):
        """Sub-generator: wait for a DMA local copy; bumps ``counter`` if given.

        Note the *waiting* process is not doing the work — the DMA is — but
        generators are the cheapest way to sequence; callers that want
        overlap keep the flow (`local_copy_flow`) and wait later.
        """
        yield self.local_copy_flow(nbytes, name=name)
        if counter is not None:
            counter.add(nbytes)

    def fifo_deliver_flow(self, nbytes: int, name: str = "dma-fifo") -> Flow:
        """Start DMA delivery of ``nbytes`` into a reception memory FIFO.

        One raw write byte per payload byte on DMA and memory; the follow-up
        copy from the FIFO to the application buffer is a *core* copy that
        the caller issues separately (that extra copy is precisely why the
        memory-FIFO path loses to direct put and to the shared-address
        schemes).
        """
        return self._net.transfer(
            {self.node.dma: 1.0, self.node.mem: 1.0},
            nbytes,
            name=f"n{self.node.index}.{name}",
        )

    def fifo_overhead(self):
        """Sub-generator: per-chunk FIFO pointer/packet-header bookkeeping."""
        yield self.node.machine.engine.timeout(self.params.dma_fifo_overhead)

    def make_counter(self, name: str = "dma-counter") -> DmaCounter:
        """Allocate a fresh byte counter bound to this node."""
        return DmaCounter(self.node, name=name)
