"""The 3D torus interconnect.

Topology: an ``Lx x Ly x Lz`` torus; every node has six links (X+, X-, Y+,
Y-, Z+, Z-) of :attr:`BGPParams.torus_link_bw` (425 MB/s) each.

Two hardware transfer primitives are modelled:

``line_broadcast``
    A deposit-bit line broadcast: the source injects packets along one
    dimension and every node on the line receives a copy as the packets
    stream through (section III-A).  The multi-color rectangle algorithms
    (Fig 2) are phases of line broadcasts.

``ptp_send``
    A plain point-to-point send along a dimension-ordered route, used by
    the ring phases of the allreduce.

Color channels
--------------
The collective algorithms of [2] (Faraj et al., Hot Interconnects'09) use
three/six *edge-disjoint* routes ("colors"); edge-disjointness is an input
assumption of this paper, not a contribution (section V-A-1 simply cites
it).  We therefore give each color its own set of per-line channel
resources: flows of different colors never contend on the wire — exactly
the guarantee the route construction provides — while flows of the *same*
color on the same line (successive pipeline chunks, competing phases) do
contend and serialize at 425 MB/s.  Aggregate per-node wire throughput is
still bounded by six colors x 425 MB/s = the physical six-link limit, and
every transfer additionally consumes the node-local DMA and memory ports,
which is where this paper's contention story happens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.hardware.network import NetworkBackend, register_backend
from repro.sim.events import Event
from repro.sim.flownet import Flow, FlowResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine
    from repro.msg.color import Color

Coords = Tuple[int, int, int]


class LineTransfer:
    """Handle for one in-flight deposit-bit line broadcast.

    ``delivered[node_index]`` is an event firing when the *last byte* of the
    transfer has landed at that node (source completion plus per-hop
    cut-through latency).  ``done`` fires when the source finishes injecting.
    """

    def __init__(self, flow: Flow, delivered: Dict[int, Event], done: Event):
        self.flow = flow
        self.delivered = delivered
        self.done = done


@register_backend
class TorusNetwork(NetworkBackend):
    """The 3D torus: topology bookkeeping plus transfer primitives."""

    name = "torus"
    #: the torus hosts every wire: its own deposit-bit line broadcasts,
    #: plain point-to-point sends, and the BG/P tree/GI networks the
    #: Machine builds alongside it
    wires = ("torus", "ptp", "tree", "gi")

    def __init__(self, machine: "Machine", dims: Coords, wrap: bool = True):
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(f"torus dims must be 3 positive ints, got {dims}")
        # wrap: True = torus (wraparound links), False = 3D mesh.  The
        # paper's multi-color algorithms use six edge-disjoint routes on a
        # torus but only three on a mesh (section V-A-1).
        super().__init__(machine, dims, wrap=wrap)
        self.nnodes = dims[0] * dims[1] * dims[2]

    # -- topology -----------------------------------------------------------
    def coords(self, index: int) -> Coords:
        """Node index -> (x, y, z) coordinates (x fastest)."""
        lx, ly, _lz = self.dims
        x = index % lx
        y = (index // lx) % ly
        z = index // (lx * ly)
        return (x, y, z)

    def index(self, coords: Coords) -> int:
        """(x, y, z) coordinates -> node index."""
        lx, ly, lz = self.dims
        x, y, z = (coords[0] % lx, coords[1] % ly, coords[2] % lz)
        return x + y * lx + z * lx * ly

    def neighbor(self, index: int, dim: int, sign: int) -> int:
        """Index of the next node along ``dim`` in direction ``sign`` (+-1)."""
        c = list(self.coords(index))
        c[dim] = (c[dim] + sign) % self.dims[dim]
        return self.index(tuple(c))

    def line_nodes(self, index: int, dim: int, sign: int) -> List[int]:
        """Nodes along the line through ``index`` in hop order (src excluded).

        On a torus the whole ring line is covered from either direction; on
        a mesh the walk stops at the boundary, so covering a line takes
        broadcasts in both directions.
        """
        length = self.dims[dim]
        if self.wrap:
            return [
                self._offset(index, dim, sign * h) for h in range(1, length)
            ]
        position = self.coords(index)[dim]
        if sign > 0:
            steps = length - 1 - position
        else:
            steps = position
        return [
            self._offset(index, dim, sign * h) for h in range(1, steps + 1)
        ]

    def _offset(self, index: int, dim: int, delta: int) -> int:
        c = list(self.coords(index))
        c[dim] = (c[dim] + delta) % self.dims[dim]
        return self.index(tuple(c))

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes (dimension-ordered routing)."""
        sc, dc = self.coords(src), self.coords(dst)
        total = 0
        for d in range(3):
            delta = abs(sc[d] - dc[d])
            if self.wrap:
                delta = min(delta, self.dims[d] - delta)
            total += delta
        return total

    def ring_order(self, color: "Color", root: int) -> List[int]:
        """The color's boustrophedon snake ring, rotated to ``root``."""
        from repro.msg.routes import ring_order

        return ring_order(self, color, root)

    # -- channels -----------------------------------------------------------
    def iter_channels(self):
        """Yield ``(key, channel)`` for every channel created so far.

        Keys are ``("line", color, dim, sign, line_id)`` for deposit-bit
        line channels and ``("seg", color, dim, sign, src)`` for
        point-to-point segment channels.  Channels are created lazily, so
        the listing grows as collectives build their routes; injectors that
        must also catch future channels register an
        :meth:`add_channel_hook` callback.
        """
        yield from self._channels.items()

    def channel_touches(self, key: Tuple, node: int) -> bool:
        """Whether the channel under ``key`` carries traffic through ``node``.

        A line channel matches when the node sits on the line (all fixed
        coordinates equal); a segment channel matches when the node is the
        segment's source.
        """
        kind = key[0]
        if kind == "line":
            _kind, _color, dim, _sign, line_id = key
            coords = self.coords(node)
            return all(
                line_id[d] == coords[d] for d in range(3) if d != dim
            )
        return key[4] == node

    def _line_channel(self, color: int, dim: int, sign: int, line_id: Tuple
                      ) -> FlowResource:
        """The per-color wire resource of one line (lazily created)."""
        key = ("line", color, dim, sign, line_id)
        channel = self._channels.get(key)
        if channel is None:
            channel = self.machine.flownet.add_resource(
                f"torus.c{color}.d{dim}{'+' if sign > 0 else '-'}.{line_id}",
                self.machine.params.torus_link_bw,
            )
            self._install_channel(key, channel)
        return channel

    def _segment_channel(self, color: int, dim: int, sign: int, src: int
                         ) -> FlowResource:
        """The per-color wire resource of a point-to-point segment."""
        key = ("seg", color, dim, sign, src)
        channel = self._channels.get(key)
        if channel is None:
            channel = self.machine.flownet.add_resource(
                f"torus.c{color}.seg.n{src}.d{dim}{'+' if sign > 0 else '-'}",
                self.machine.params.torus_link_bw,
            )
            self._install_channel(key, channel)
        return channel

    def _line_id(self, index: int, dim: int) -> Tuple:
        """Identifier of the line through ``index`` along ``dim``."""
        c = list(self.coords(index))
        c[dim] = -1  # collapse the traversed coordinate
        return tuple(c)

    # -- primitives --------------------------------------------------------
    def line_broadcast(
        self,
        color: int,
        src: int,
        dim: int,
        sign: int,
        nbytes: int,
        name: str = "linebcast",
    ) -> LineTransfer:
        """Start a deposit-bit broadcast of ``nbytes`` along a line.

        The flow consumes: the source's DMA and memory ports (packet
        injection), the line's color channel, and every receiver's DMA and
        memory ports (packet reception) — receivers under local pressure
        therefore backpressure the whole line, as the hardware's token flow
        control does.
        """
        if sign not in (1, -1):
            raise ValueError(f"sign must be +-1, got {sign}")
        if not 0 <= dim < 3:
            raise ValueError(f"dim must be 0..2, got {dim}")
        machine = self.machine
        engine = machine.engine
        receivers = self.line_nodes(src, dim, sign)
        done = Event(engine)
        delivered: Dict[int, Event] = {r: Event(engine) for r in receivers}
        if not receivers or nbytes == 0:
            done.trigger(engine.now)
            for event in delivered.values():
                event.trigger(engine.now)
            flow = machine.flownet.transfer({}, 0, name=name)
            return LineTransfer(flow, delivered, done)

        src_node = machine.nodes[src]
        usage: Dict[FlowResource, float] = {
            src_node.dma: 1.0,
            src_node.mem: 1.0,
            self._line_channel(color, dim, sign, self._line_id(src, dim)): 1.0,
        }
        for r in receivers:
            node = machine.nodes[r]
            usage[node.dma] = usage.get(node.dma, 0.0) + 1.0
            usage[node.mem] = usage.get(node.mem, 0.0) + 1.0
        flow = machine.flownet.transfer(
            usage, nbytes, name=f"{name}.c{color}"
        )
        hop = machine.params.torus_hop_latency

        def on_complete(_value) -> None:
            done.trigger(engine.now)
            for h, r in enumerate(receivers, start=1):
                engine.call_after(h * hop, delivered[r].trigger, None)

        flow.event.on_trigger(on_complete)
        return LineTransfer(flow, delivered, done)

    def ptp_send(
        self,
        color: int,
        src: int,
        dst: int,
        nbytes: int,
        name: str = "ptp",
    ) -> Event:
        """Start a point-to-point DMA send; returns the delivery event.

        Routing is dimension-ordered; the flow holds the color channel of
        every traversed line segment plus both endpoints' DMA/memory ports.
        """
        machine = self.machine
        engine = machine.engine
        delivered = Event(engine)
        if src == dst or nbytes == 0:
            delivered.trigger(engine.now)
            return delivered
        src_node, dst_node = machine.nodes[src], machine.nodes[dst]
        usage: Dict[FlowResource, float] = {
            src_node.dma: 1.0,
            src_node.mem: 1.0,
            dst_node.dma: 1.0,
            dst_node.mem: 1.0,
        }
        # Dimension-ordered route: one *per-segment* channel per traversed
        # dimension.  Point-to-point segments starting at different nodes of
        # the same line use distinct physical links (e.g. the concurrent
        # neighbour sends of a pipelined ring), so — unlike line broadcasts,
        # which occupy the whole line — each segment gets its own channel,
        # keyed by its start node.
        hops = 0
        current = src
        for dim in range(3):
            sc, dc = self.coords(current)[dim], self.coords(dst)[dim]
            if sc == dc:
                continue
            length = self.dims[dim]
            if self.wrap:
                forward = (dc - sc) % length
                backward = (sc - dc) % length
                sign = 1 if forward <= backward else -1
                hops += min(forward, backward)
            else:
                sign = 1 if dc > sc else -1
                hops += abs(dc - sc)
            channel = self._segment_channel(color, dim, sign, current)
            usage[channel] = usage.get(channel, 0.0) + 1.0
            c = list(self.coords(current))
            c[dim] = dc
            current = self.index(tuple(c))
        flow = machine.flownet.transfer(usage, nbytes, name=f"{name}.c{color}")
        hop_lat = machine.params.torus_hop_latency

        def on_complete(_value) -> None:
            engine.call_after(hops * hop_lat, delivered.trigger, None)

        flow.event.on_trigger(on_complete)
        return delivered
