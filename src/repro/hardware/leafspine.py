"""A two-tier leaf–spine Clos backend.

Geometry: hosts are packed ``leaf_width`` per leaf switch; every leaf
uplinks to all ``nspines`` spine switches.  Defaults (``leaf_width=4``,
``nspines=2``) give small study machines more hosts per leaf than the
fat-tree's pods, so intra-leaf and inter-leaf traffic mix differently —
the point of having a second switched topology to compare against.

Pass ``{"leaf_width": 8, "nspines": 4}`` through ``network_params`` to
change the shape.

Routing: intra-leaf traffic is ``host -> leaf -> host`` (2 hops);
inter-leaf traffic climbs to a spine and back down (4 hops), with the
spine chosen ECMP-style by the deterministic color-aware hash
``(src + dst + color) % nspines`` — same scheme as
:mod:`repro.hardware.fattree`, see there for why determinism matters.

Channels ride the shared :class:`~repro.hardware.network.NetworkBackend`
machinery, so the flow solver, fault schedules, and telemetry need no
leaf-spine-specific code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.hardware.network import NetworkBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.machine import Machine
    from repro.msg.color import Color


@register_backend
class LeafSpineNetwork(NetworkBackend):
    """Two-tier leaf–spine Clos with deterministic ECMP spine choice."""

    name = "leafspine"
    wires = ("ptp", "gi")

    def __init__(self, machine: "Machine", dims: Sequence[int],
                 wrap: bool = True, leaf_width: int = 0, nspines: int = 2):
        super().__init__(machine, dims, wrap=wrap)
        nnodes = 1
        for d in self.dims:
            if d < 1:
                raise ValueError(
                    f"leafspine dims must be positive ints, got {self.dims}"
                )
            nnodes *= d
        self.nnodes = nnodes
        #: hosts per leaf switch (default: 4, capped at the node count)
        self.leaf_width = leaf_width if leaf_width else min(4, nnodes)
        if self.leaf_width < 1:
            raise ValueError(f"leaf_width must be >= 1, got {leaf_width}")
        #: number of spine switches every leaf uplinks to
        self.nspines = nspines
        if self.nspines < 1:
            raise ValueError(f"nspines must be >= 1, got {nspines}")
        self.nleaves = (nnodes + self.leaf_width - 1) // self.leaf_width

    # -- placement ---------------------------------------------------------
    def leaf(self, index: int) -> int:
        """Host index -> leaf-switch number."""
        return index // self.leaf_width

    def coords(self, index: int) -> Tuple[int, int]:
        """Host index -> (leaf switch, port) placement."""
        return (self.leaf(index), index % self.leaf_width)

    def hop_distance(self, src: int, dst: int) -> int:
        """0 (same host), 2 (same leaf), or 4 (via a spine)."""
        if src == dst:
            return 0
        return 2 if self.leaf(src) == self.leaf(dst) else 4

    def ring_order(self, color: "Color", root: int) -> List[int]:
        """Index-order ring rotated to ``root``; the color's sign picks
        the direction, so paired colors stream in opposite directions."""
        n = self.nnodes
        return [(root + color.sign * i) % n for i in range(n)]

    # -- routing -----------------------------------------------------------
    def route_channel_keys(self, color: int, src: int, dst: int
                           ) -> List[Tuple]:
        sleaf, dleaf = self.leaf(src), self.leaf(dst)
        if sleaf == dleaf:
            return [("hup", color, src), ("hdn", color, dst)]
        spine = (src + dst + color) % self.nspines
        return [
            ("hup", color, src),
            ("lup", color, sleaf, spine),
            ("ldn", color, spine, dleaf),
            ("hdn", color, dst),
        ]

    def channel_touches(self, key: Tuple, node: int) -> bool:
        """Host links match their host; leaf<->spine uplinks and
        downlinks match every host under that leaf."""
        kind = key[0]
        if kind in ("hup", "hdn"):
            return key[2] == node
        leaf = key[2] if kind == "lup" else key[3]
        return self.leaf(node) == leaf

    def _channel_name(self, key: Tuple) -> str:
        kind = key[0]
        if kind in ("hup", "hdn"):
            return f"leafspine.c{key[1]}.{kind}.n{key[2]}"
        if kind == "lup":
            _kind, color, leaf, spine = key
            return f"leafspine.c{color}.lup.l{leaf}.s{spine}"
        _kind, color, spine, leaf = key
        return f"leafspine.c{color}.ldn.s{spine}.l{leaf}"
