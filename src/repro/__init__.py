"""repro — a reproduction of *Optimizing MPI Collectives Using Efficient
Intra-node Communication Techniques over the Blue Gene/P Supercomputer*
(Mamidala, Faraj, Kumar, Miller, Blocksome, Gooding, Heidelberger, Dozsa;
IBM Research Report RC25088 / IPDPS 2011).

The package has two faces:

* a **calibrated discrete-event simulator** of the BG/P platform — nodes,
  memory system, DMA engine, 3D torus with deposit-bit line broadcasts, the
  combining collective network, and the CNK process-window system calls —
  over which every collective algorithm of the paper (baselines and
  proposed) is implemented and measured (see :mod:`repro.hardware`,
  :mod:`repro.collectives`, :mod:`repro.bench`);
* **thread-executable concurrent data structures** from section IV — the
  atomic-counter point-to-point FIFO, the Bcast FIFO, and software message
  counters — runnable on real OS threads (:mod:`repro.structures`).

Quickstart
----------
>>> from repro import Machine, Mode, Communicator
>>> machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
>>> comm = Communicator(machine)
>>> result = comm.bcast(nbytes="1M", algorithm="torus-shaddr", verify=True)
>>> print(result)  # doctest: +SKIP
"""

from repro.collectives.base import CollectiveResult
from repro.hardware import BGPParams, Machine, Mode
from repro.mpi import (
    DOUBLE,
    FLOAT,
    INT32,
    INT64,
    MAX,
    MIN,
    PROD,
    SUM,
    UINT8,
    Communicator,
)
from repro.structures import (
    AtomicCounter,
    BcastConsumer,
    BcastFifo,
    CompletionCounter,
    MessageCounter,
    PtPFifo,
)

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "Mode",
    "BGPParams",
    "Communicator",
    "CollectiveResult",
    "UINT8",
    "INT32",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "AtomicCounter",
    "PtPFifo",
    "BcastFifo",
    "BcastConsumer",
    "MessageCounter",
    "CompletionCounter",
    "__version__",
]
