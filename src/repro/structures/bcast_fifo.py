"""Broadcast FIFO (section IV-B, Fig 1).

One or more producers enqueue; **every** registered consumer reads every
element.  The element is retired — Head advanced, slot reusable — only when
the per-slot atomic counter, initialised to the number of consumers
(``n - 1`` in the paper, which counts the producer among ``n`` processes),
reaches zero: "the last arriving process completes the dequeue operation".

The enqueue side is the point-to-point FIFO's: fetch-and-increment on Tail
reserves a unique slot; the producer waits for ``myslot - Head < fifoSize``
(space) before writing, then publishes with the write-completion step.

Consumers hold a :class:`BcastConsumer` cursor that tracks the next
sequence number to read, mirroring how each process keeps a private read
position against the shared FIFO.

Alongside the payload each slot carries metadata ("the number of data bytes
copied into the slot and the connection id of the global broadcast flow",
section V-A-2), which is what lets the six torus colors multiplex one FIFO.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.structures.atomic import AtomicCounter

_EMPTY = -1


class BcastFifo:
    """A bounded FIFO where every consumer observes every element."""

    def __init__(self, slots: int, slot_bytes: int, consumers: int,
                 telemetry=None):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        if consumers < 1:
            raise ValueError(f"consumers must be >= 1, got {consumers}")
        #: optional :class:`repro.telemetry.recorder.ThreadTelemetry` —
        #: counts-only (threaded timestamps would be nondeterministic)
        self.telemetry = telemetry
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.consumers = consumers
        self._storage = np.zeros((slots, slot_bytes), dtype=np.uint8)
        self._lengths = [0] * slots
        self._metas: List[Any] = [None] * slots
        self._published = [_EMPTY] * slots
        #: per-slot reader countdown ("atomic counter ... set to (n-1)")
        self._remaining = [AtomicCounter(0) for _ in range(slots)]
        self._tail = AtomicCounter()
        self._head = AtomicCounter()
        self._retired: set[int] = set()
        self._cond = threading.Condition()

    # -- producer -------------------------------------------------------
    def enqueue(
        self, data: bytes | np.ndarray, meta: Any = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Enqueue one element for all consumers; returns its sequence."""
        payload = np.frombuffer(
            data.tobytes() if isinstance(data, np.ndarray) else bytes(data),
            dtype=np.uint8,
        )
        if payload.nbytes > self.slot_bytes:
            raise ValueError(
                f"payload of {payload.nbytes} B exceeds slot size "
                f"{self.slot_bytes}"
            )
        with self._cond:
            # The paper reserves first (fetch-and-increment on Tail) and
            # spins for space; with a timeout API a timed-out reservation
            # would leak the slot, so we wait for space *before* reserving.
            # Under the lock the two orders are observationally identical.
            contended = self._tail.load() - self._head.load() >= self.slots
            if not self._cond.wait_for(
                lambda: self._tail.load() - self._head.load() < self.slots,
                timeout=timeout,
            ):
                raise TimeoutError("FIFO full")
            myslot = self._tail.fetch_and_increment()
            if self.telemetry is not None:
                self.telemetry.record("fifo_fai")
                if contended:
                    self.telemetry.record("fifo_fai_contended")
            index = myslot % self.slots
            self._storage[index, : payload.nbytes] = payload
            self._lengths[index] = payload.nbytes
            self._metas[index] = meta
            self._remaining[index].store(self.consumers)
            self._published[index] = myslot  # write-completion step
            self._cond.notify_all()
        return myslot

    # -- consumer-side (via cursor) -------------------------------------
    def consumer(self) -> "BcastConsumer":
        """Create a cursor for one consumer (call exactly ``consumers`` times)."""
        return BcastConsumer(self)

    def _read(self, seq: int, timeout: Optional[float]) -> Tuple[bytes, Any]:
        index = seq % self.slots
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._published[index] == seq, timeout=timeout
            ):
                raise TimeoutError("FIFO empty")
            payload = bytes(self._storage[index, : self._lengths[index]])
            meta = self._metas[index]
            previous = self._remaining[index].fetch_and_decrement()
            if previous == 1:
                # Last reader retires the element.  Head only advances over
                # the contiguous retired prefix (readers of different slots
                # can finish out of order).
                self._published[index] = _EMPTY
                self._retired.add(seq)
                while self._head.load() in self._retired:
                    self._retired.remove(self._head.load())
                    self._head.fetch_and_increment()
                self._cond.notify_all()
        return payload, meta

    def __len__(self) -> int:
        """Elements enqueued and not yet retired."""
        return max(0, self._tail.load() - self._head.load())


class BcastConsumer:
    """A single consumer's read cursor over a :class:`BcastFifo`."""

    def __init__(self, fifo: BcastFifo):
        self.fifo = fifo
        self._next_seq = 0

    def read(self, timeout: Optional[float] = None) -> Tuple[bytes, Any]:
        """Read the next element in order; returns ``(payload, meta)``."""
        seq = self._next_seq
        result = self.fifo._read(seq, timeout)
        self._next_seq += 1
        return result

    @property
    def position(self) -> int:
        """Sequence number of the next element this consumer will read."""
        return self._next_seq
