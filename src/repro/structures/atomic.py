"""Atomic fetch-and-increment counter.

The PPC450 exposes lwarx/stwcx-based atomics; CPython exposes none, so the
counter serializes through a mutex.  The algorithms built on it only ever
assume the *fetch-and-increment interface*, so they port unchanged to a
platform with a native primitive — which is exactly the portability claim
the paper makes for the Bcast FIFO.
"""

from __future__ import annotations

import threading


class AtomicCounter:
    """A thread-safe integer counter with fetch-and-add semantics."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: int = 0):
        self._value = int(initial)
        self._lock = threading.Lock()

    def fetch_and_increment(self, amount: int = 1) -> int:
        """Atomically add ``amount``; return the *previous* value."""
        with self._lock:
            previous = self._value
            self._value += amount
            return previous

    def fetch_and_decrement(self, amount: int = 1) -> int:
        """Atomically subtract ``amount``; return the *previous* value."""
        return self.fetch_and_increment(-amount)

    def add(self, amount: int) -> int:
        """Atomically add ``amount``; return the *new* value."""
        with self._lock:
            self._value += amount
            return self._value

    def load(self) -> int:
        """Read the current value."""
        with self._lock:
            return self._value

    def store(self, value: int) -> None:
        """Overwrite the value (initialisation/reset only — not a RMW op)."""
        with self._lock:
            self._value = int(value)

    def compare_and_swap(self, expected: int, new: int) -> bool:
        """CAS: set to ``new`` iff currently ``expected``; return success."""
        with self._lock:
            if self._value == expected:
                self._value = int(new)
                return True
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCounter({self.load()})"
