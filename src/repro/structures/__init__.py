"""Thread-executable implementations of the paper's concurrent structures.

Unlike the rest of the package, nothing here is simulated: these classes run
under real OS threads and move real bytes.  They are faithful Python
renderings of section IV:

* :class:`~repro.structures.atomic.AtomicCounter` — the fetch-and-increment
  primitive everything else is built on.  CPython has no portable lock-free
  fetch-and-add, so the counter wraps a mutex; the *interface* (and
  therefore the algorithms above it) is exactly the one the paper assumes
  ("the FIFO can be designed on any platform supporting the fetch and
  increment atomic operation").
* :class:`~repro.structures.ptp_fifo.PtPFifo` — the point-to-point FIFO of
  section IV-A: producers reserve unique slots with fetch-and-increment on
  Tail; items drain in reservation order.
* :class:`~repro.structures.bcast_fifo.BcastFifo` — the broadcast FIFO of
  section IV-B (Fig 1): every consumer reads every element; a per-slot
  atomic counter initialised to ``n-1`` is decremented by each reader and
  the last reader retires the slot by incrementing Head.
* :class:`~repro.structures.msg_counter.MessageCounter` — the software
  message counter of section IV-C: a (base buffer, bytes-arrived) pair that
  a producer advances and consumers watch; plus the completion counter used
  to return buffer ownership to the master.

The simulator uses timing-annotated twins of these structures
(:mod:`repro.kernel.shmem`); the test suite checks both implementations
against the same invariants.
"""

from repro.structures.atomic import AtomicCounter
from repro.structures.ptp_fifo import PtPFifo
from repro.structures.bcast_fifo import BcastFifo, BcastConsumer
from repro.structures.msg_counter import CompletionCounter, MessageCounter

__all__ = [
    "AtomicCounter",
    "PtPFifo",
    "BcastFifo",
    "BcastConsumer",
    "MessageCounter",
    "CompletionCounter",
]
