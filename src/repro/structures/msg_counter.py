"""Software message counters (section IV-C) — thread-executable version.

"The central idea adopted in our approach is to dedicate a counter for a
given broadcast and whenever the data arrives in the buffer, it is
incremented by the total number of bytes received in the buffer."

A :class:`MessageCounter` pairs a data buffer with a monotonically growing
bytes-arrived count.  The producer (the master process receiving from the
network) appends data and advances the counter; consumers wait for a
threshold and then read the newly valid prefix directly out of the shared
buffer — the zero-staging-copy discipline of the shared-address broadcast.

A :class:`CompletionCounter` is the paper's "atomic completion counter ...
initialized to zero by the master. All the processes increment this counter
after they finished copying the data from the master. Once this counter
equals n-1 ... the master can go ahead and start using his buffer."
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.structures.atomic import AtomicCounter


class MessageCounter:
    """A shared buffer plus a bytes-arrived watermark.

    The two fields of the paper's counter object are the base address of the
    data buffer and the total bytes written into it; here the "base address"
    is the numpy buffer itself.
    """

    def __init__(self, buffer: np.ndarray, telemetry=None):
        if buffer.dtype != np.uint8 or buffer.ndim != 1:
            raise ValueError("MessageCounter buffer must be a 1-D uint8 array")
        self.buffer = buffer
        self._arrived = 0
        self._cond = threading.Condition()
        #: optional :class:`repro.telemetry.recorder.ThreadTelemetry` —
        #: counts-only (threaded timestamps would be nondeterministic)
        self.telemetry = telemetry

    @property
    def arrived(self) -> int:
        """Bytes valid in the buffer so far."""
        with self._cond:
            return self._arrived

    def append(self, data: bytes | np.ndarray) -> int:
        """Producer: write ``data`` after the watermark, then advance it.

        Returns the new watermark.  The write happens *before* the counter
        update, matching the hardware-mirroring semantics (the DMA bumps its
        counter only after the chunk has landed).
        """
        chunk = np.frombuffer(
            data.tobytes() if isinstance(data, np.ndarray) else bytes(data),
            dtype=np.uint8,
        )
        with self._cond:
            end = self._arrived + chunk.nbytes
            if end > self.buffer.nbytes:
                raise ValueError(
                    f"append of {chunk.nbytes} B overflows buffer of "
                    f"{self.buffer.nbytes} B at watermark {self._arrived}"
                )
            self.buffer[self._arrived:end] = chunk
            self._arrived = end
            self._cond.notify_all()
        if self.telemetry is not None:
            self.telemetry.record("counter_advances")
        return end

    def wait_for(self, threshold: int, timeout: Optional[float] = None) -> int:
        """Consumer: block until at least ``threshold`` bytes have arrived.

        Returns the watermark at wake-up (may exceed ``threshold``); raises
        ``TimeoutError`` on timeout.  Consumers then read
        ``counter.buffer[local:watermark]`` directly — the direct copy of
        the shared-address scheme.
        """
        if threshold > self.buffer.nbytes:
            raise ValueError(
                f"threshold {threshold} exceeds buffer size {self.buffer.nbytes}"
            )
        if self.telemetry is not None:
            self.telemetry.record("counter_polls")
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._arrived >= threshold, timeout=timeout
            ):
                raise TimeoutError(
                    f"message counter stuck at {self._arrived} < {threshold}"
                )
            return self._arrived

    def reset(self) -> None:
        """Rewind the watermark for buffer reuse (no concurrent consumers)."""
        with self._cond:
            self._arrived = 0


class CompletionCounter:
    """Countdown used to return buffer ownership to the master."""

    def __init__(self, expected: int):
        if expected < 0:
            raise ValueError(f"expected must be >= 0, got {expected}")
        self.expected = expected
        self._count = AtomicCounter(0)
        self._cond = threading.Condition()

    def signal(self) -> int:
        """A consumer finished copying; returns the new count."""
        value = self._count.add(1)
        if value > self.expected:
            raise RuntimeError(
                f"completion counter over-signalled: {value} > {self.expected}"
            )
        with self._cond:
            self._cond.notify_all()
        return value

    def wait(self, timeout: Optional[float] = None) -> None:
        """Master: block until all ``expected`` consumers signalled."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._count.load() >= self.expected, timeout=timeout
            ):
                raise TimeoutError(
                    f"completion counter at {self._count.load()}"
                    f"/{self.expected}"
                )

    @property
    def count(self) -> int:
        return self._count.load()
