"""Point-to-point FIFO (section IV-A).

Semantics required by the paper:

a) each producer reserves a *unique* slot via fetch-and-increment on Tail —
   no two producers ever write the same slot;
b) items drain in reservation order.

Dequeuers likewise reserve read sequence numbers with fetch-and-increment,
so the structure is multi-producer/multi-consumer with every element
consumed exactly once.  The physical slot of sequence ``s`` is
``s % fifo_size``; before writing, a producer checks
``myslot - Head < fifoSize`` (the paper's space condition) and waits
otherwise.

Blocking uses a condition variable rather than the paper's spin loop; the
visible ordering semantics are identical, and the test suite checks them
under genuine thread interleavings.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.structures.atomic import AtomicCounter

#: slot marker meaning "no published element"
_EMPTY = -1


class PtPFifo:
    """A bounded MPMC FIFO carrying byte payloads plus metadata."""

    def __init__(self, slots: int, slot_bytes: int, telemetry=None):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        #: optional :class:`repro.telemetry.recorder.ThreadTelemetry` —
        #: counts-only (threaded timestamps would be nondeterministic)
        self.telemetry = telemetry
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._storage = np.zeros((slots, slot_bytes), dtype=np.uint8)
        self._lengths = [0] * slots
        self._metas: List[Any] = [None] * slots
        #: sequence number published in each slot (_EMPTY when free)
        self._published = [_EMPTY] * slots
        self._tail = AtomicCounter()  # producer slot reservations
        self._read = AtomicCounter()  # consumer sequence reservations
        self._head = AtomicCounter()  # contiguously retired prefix (frees slots)
        self._retired: set[int] = set()  # out-of-order retirements pending
        self._cond = threading.Condition()

    # -- producers ------------------------------------------------------
    def enqueue(
        self, data: bytes | np.ndarray, meta: Any = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Enqueue one element; returns its sequence number.

        Raises ``TimeoutError`` if the FIFO stays full past ``timeout``
        seconds, and ``ValueError`` for over-long payloads.
        """
        payload = np.frombuffer(
            data.tobytes() if isinstance(data, np.ndarray) else bytes(data),
            dtype=np.uint8,
        )
        if payload.nbytes > self.slot_bytes:
            raise ValueError(
                f"payload of {payload.nbytes} B exceeds slot size "
                f"{self.slot_bytes}"
            )
        with self._cond:
            # Space check ((Tail - Head) < fifoSize) before reserving — the
            # paper reserves first and spins, but a timed-out reservation
            # would leak the slot; under the lock the orders are equivalent.
            contended = self._tail.load() - self._head.load() >= self.slots
            if not self._cond.wait_for(
                lambda: self._tail.load() - self._head.load() < self.slots,
                timeout=timeout,
            ):
                raise TimeoutError("FIFO full")
            myslot = self._tail.fetch_and_increment()
            if self.telemetry is not None:
                self.telemetry.record("fifo_fai")
                if contended:
                    self.telemetry.record("fifo_fai_contended")
            index = myslot % self.slots
            self._storage[index, : payload.nbytes] = payload
            self._lengths[index] = payload.nbytes
            self._metas[index] = meta
            self._published[index] = myslot  # write-completion step
            self._cond.notify_all()
        return myslot

    # -- consumers --------------------------------------------------------
    def dequeue(self, timeout: Optional[float] = None) -> Tuple[bytes, Any]:
        """Dequeue the next element in order; returns ``(payload, meta)``."""
        myread = self._read.fetch_and_increment()
        index = myread % self.slots
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._published[index] == myread, timeout=timeout
            ):
                raise TimeoutError("FIFO empty")
            payload = bytes(self._storage[index, : self._lengths[index]])
            meta = self._metas[index]
            self._published[index] = _EMPTY
            # Retirements may complete out of order across consumer threads;
            # Head may only advance over the contiguous retired prefix, or a
            # producer could overwrite a slot whose element is still unread.
            self._retired.add(myread)
            while self._head.load() in self._retired:
                self._retired.remove(self._head.load())
                self._head.fetch_and_increment()
            self._cond.notify_all()
        return payload, meta

    def __len__(self) -> int:
        """Number of elements enqueued and not yet retired."""
        return max(0, self._tail.load() - self._head.load())
