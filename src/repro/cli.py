"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``list``
    Show registered algorithms for each collective.
``bcast`` / ``allreduce`` / ``allgather``
    Measure one collective on a simulated machine, optionally verifying
    payload delivery and printing a resource-utilization profile.
``predict``
    Print the analytic steady-state bounds for a broadcast algorithm.
``figure``
    Regenerate one of the paper's figures/tables (fig6..fig10, table1).
``chaos``
    Run a seeded transient-fault campaign over the registered collectives
    and write ``BENCH_robustness.json``.
``report``
    Run one collective with telemetry attached and print the per-role /
    per-stage / protocol breakdown; ``--compare`` gates the run's manifest
    against a committed baseline, ``--check-bench`` gates two labelled
    ``BENCH_core.json`` entries.
``trace``
    Run one collective with flow tracing (and telemetry role timelines)
    and write a Chrome Trace Format JSON for ``chrome://tracing``.
``traffic``
    Run a seeded multi-tenant workload (overlapping collective jobs on
    one machine) and report per-job elapsed plus cross-job slowdown.
``farm``
    The distributed sweep farm (``docs/robustness.md``): ``farm serve``
    hosts the leased work-server with its crash-resumable progress
    journal (``--resume`` continues an interrupted campaign), ``farm
    work`` runs a pull-worker against it, ``farm status`` prints
    campaign progress and robustness rollups (``--bench`` records them
    as a labelled ``BENCH_robustness.json`` entry).
``serve``
    The prediction service (``docs/serving.md``): a long-running query
    server answering predict/select/sweep requests through tiered
    caching — analytic fast path, warm machine pools, manifest-keyed
    memoization (``--cache`` persists it across restarts), in-flight
    coalescing.  ``serve --stats HOST:PORT`` prints a running server's
    tier hit rates, pool occupancy and latency percentiles.
``query``
    The line-delimited-JSON client for ``serve``: one predict/select/
    sweep/stats/ping/shutdown request per invocation.
``params``
    Dump the calibrated model constants.

Machine-building commands accept ``--network`` to pick an interconnect
backend (``torus``, ``fattree``, ``leafspine`` — see
``docs/topologies.md``); ``repro list --network <name>`` filters the
algorithm listing to that backend.

``figure``, ``chaos`` and ``sweep`` accept ``--jobs N`` (or the
``REPRO_JOBS`` env var) to fan their independent simulation points across
worker processes; output is merged deterministically and is identical to
a serial run (see ``docs/performance.md``).  ``chaos`` and ``sweep`` also
accept ``--farm HOST:PORT`` (or the ``REPRO_FARM`` env var) to route the
same points through a sweep-farm work-server instead — same merge, same
bytes.

Examples
--------
::

    python -m repro bcast --size 2M --algorithm torus-shaddr --dims 4x4x4
    python -m repro bcast --size 2M --profile --verify
    python -m repro predict --algorithm torus-direct-put --size 2M
    python -m repro figure fig10
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.analysis import predict_torus_bcast, predict_tree_bcast
from repro.bench import format_report, utilization_report
from repro.bench.harness import run_collective
from repro.collectives.registry import families, iter_algorithms
from repro.hardware import (
    BGPParams,
    Machine,
    Mode,
    UnsupportedTopologyError,
    known_backends,
)
from repro.util.units import parse_size

_FIGURES = ("fig6", "fig7", "fig8", "fig9", "fig10", "table1")


def _parse_dims(text: str):
    parts = text.lower().split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"dims must look like 4x4x4, got {text!r}"
        )
    try:
        dims = tuple(int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    if any(d < 1 for d in dims):
        raise argparse.ArgumentTypeError("dims must be positive")
    return dims


def _parse_mode(text: str) -> Mode:
    try:
        return Mode[text.upper()]
    except KeyError as exc:
        raise argparse.ArgumentTypeError(
            f"mode must be smp/dual/quad, got {text!r}"
        ) from exc


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for independent points (default: the "
             "REPRO_JOBS env var, else serial; 0 = one per CPU); results "
             "are merged deterministically, identical to serial",
    )


def _add_farm_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--farm", default=None, metavar="HOST:PORT",
        help="route the points to a sweep-farm work-server (default: the "
             "REPRO_FARM env var, else local execution); see "
             "'repro farm serve' and docs/robustness.md",
    )


def _add_network_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--network", default="torus", choices=known_backends(),
        help="interconnect backend (default torus); see docs/topologies.md",
    )


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dims", type=_parse_dims, default=(2, 2, 2),
        help="machine geometry, e.g. 4x4x4 (default 2x2x2; the product "
             "is the node count on non-torus networks)",
    )
    _add_network_arg(parser)
    parser.add_argument(
        "--mode", type=_parse_mode, default=Mode.QUAD,
        help="operating mode: smp, dual or quad (default quad)",
    )
    parser.add_argument(
        "--mesh", action="store_true",
        help="3D mesh instead of torus (no wraparound; 3 colors, not 6)",
    )
    parser.add_argument(
        "--iters", type=int, default=1,
        help="Fig-5 measurement iterations (default 1)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="carry real payload bytes and check bit-exact delivery",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="serve the point from the validated closed-form steady-state "
             "law (repro.sim.analytic) when one covers it; falls back to "
             "the full simulation otherwise",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a resource-utilization report after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Optimizing MPI Collectives ... over the Blue "
            "Gene/P Supercomputer' (IPDPS'11): simulate the paper's "
            "collectives and regenerate its evaluation."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list registered algorithms")
    p.add_argument(
        "--network", default=None, choices=known_backends(),
        help="only algorithms that can run on this backend",
    )

    p = sub.add_parser("bcast", help="measure an MPI_Bcast")
    p.add_argument("--size", default="1M", help="message size, e.g. 128K")
    p.add_argument(
        "--algorithm", default="auto",
        help="algorithm name or 'auto' (message-size policy)",
    )
    p.add_argument("--root", type=int, default=0)
    _add_machine_args(p)

    p = sub.add_parser("allreduce", help="measure an MPI_Allreduce (doubles)")
    p.add_argument("--count", default="128K",
                   help="element count, e.g. 512K")
    p.add_argument("--algorithm", default="allreduce-torus-shaddr",
                   help="algorithm name or 'auto' (message-size policy)")
    _add_machine_args(p)

    p = sub.add_parser("allgather", help="measure an MPI_Allgather")
    p.add_argument("--block", default="64K", help="per-rank block size")
    p.add_argument("--algorithm", default="allgather-ring-shaddr",
                   help="algorithm name or 'auto' (block-size policy)")
    _add_machine_args(p)

    p = sub.add_parser("gather", help="measure an MPI_Gather (root 0)")
    p.add_argument("--block", default="64K", help="per-rank block size")
    p.add_argument("--algorithm", default="gather-ring-shaddr")
    _add_machine_args(p)

    p = sub.add_parser("scatter", help="measure an MPI_Scatter (root 0)")
    p.add_argument("--block", default="64K", help="per-rank block size")
    p.add_argument("--algorithm", default="scatter-ring-shaddr")
    _add_machine_args(p)

    p = sub.add_parser("reduce", help="measure an MPI_Reduce (doubles)")
    p.add_argument("--count", default="128K", help="element count")
    p.add_argument("--algorithm", default="reduce-torus-shaddr",
                   help="algorithm name or 'auto' (mode policy)")
    _add_machine_args(p)

    p = sub.add_parser("alltoall", help="measure an MPI_Alltoall")
    p.add_argument("--block", default="8K", help="per-pair block size")
    p.add_argument("--algorithm", default="alltoall-shift-shaddr")
    _add_machine_args(p)

    p = sub.add_parser("barrier", help="measure an MPI_Barrier")
    p.add_argument("--algorithm", default="barrier-gi")
    _add_machine_args(p)

    p = sub.add_parser(
        "pingpong", help="measure point-to-point latency/bandwidth"
    )
    p.add_argument("--size", default="1K", help="message size")
    p.add_argument(
        "--protocol", default="auto",
        choices=["auto", "eager", "rendezvous"],
    )
    p.add_argument("--rank-a", type=int, default=0)
    p.add_argument("--rank-b", type=int, default=None)
    _add_machine_args(p)

    p = sub.add_parser(
        "predict", help="analytic steady-state bounds for a broadcast"
    )
    p.add_argument("--algorithm", required=True)
    p.add_argument("--size", default="2M")
    p.add_argument("--dims", type=_parse_dims, default=(4, 4, 4))
    p.add_argument("--ppn", type=int, default=4)

    p = sub.add_parser("figure", help="regenerate a paper figure/table")
    p.add_argument("name", choices=_FIGURES)
    p.add_argument(
        "--plot", action="store_true",
        help="also render the series as an ASCII chart",
    )
    _add_jobs_arg(p)

    p = sub.add_parser(
        "chaos",
        help="seeded fault campaign: collectives under transient faults",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (the whole campaign replays from it)",
    )
    p.add_argument(
        "--runs", type=int, default=3,
        help="randomized fault campaigns per algorithm (default 3)",
    )
    p.add_argument(
        "--dims", type=_parse_dims, default=(2, 2, 2),
        help="machine geometry, e.g. 2x2x2",
    )
    _add_network_arg(p)
    p.add_argument(
        "--smoke", action="store_true",
        help="shrink the sweep for CI (1 run, smallest sizes)",
    )
    p.add_argument(
        "--out", default="BENCH_robustness.json",
        help="robustness report path (default BENCH_robustness.json)",
    )
    _add_jobs_arg(p)
    _add_farm_arg(p)

    p = sub.add_parser(
        "traffic",
        help="seeded multi-tenant workload: overlapping jobs on one machine",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (the whole scenario replays from it)",
    )
    p.add_argument(
        "--njobs", type=int, default=3,
        help="concurrent collective jobs to draw (default 3)",
    )
    p.add_argument(
        "--dims", type=_parse_dims, default=(2, 2, 2),
        help="machine geometry, e.g. 2x2x2",
    )
    p.add_argument(
        "--mode", type=_parse_mode, default=Mode.QUAD,
        help="operating mode: smp, dual or quad (default quad)",
    )
    _add_network_arg(p)
    p.add_argument(
        "--out", default=None,
        help="write the traffic report JSON here",
    )
    p.add_argument(
        "--bench", default=None, metavar="BENCH_JSON",
        help="also record the scenario as a labelled entry in this "
             "BENCH_core.json (see --label)",
    )
    p.add_argument(
        "--label", default="multitenant",
        help="entry label for --bench (default multitenant)",
    )
    _add_jobs_arg(p)

    p = sub.add_parser(
        "report",
        help="telemetry breakdown of one collective run (+ manifest gate)",
    )
    p.add_argument(
        "--family", default="bcast", choices=sorted(_MEASURE_COMMANDS),
        help="collective family (default bcast)",
    )
    p.add_argument(
        "--algorithm", default="auto",
        help="algorithm name or 'auto' (message-size policy)",
    )
    p.add_argument(
        "--size", default="1M",
        help="the family's size argument (bytes / elements / block)",
    )
    p.add_argument("--root", type=int, default=0)
    p.add_argument(
        "--seed", type=int, default=1234,
        help="run seed recorded in the manifest (default 1234)",
    )
    p.add_argument(
        "--compare", metavar="BASELINE",
        help="gate the manifest against this baseline JSON; exits 1 on "
             "drift beyond tolerance",
    )
    p.add_argument(
        "--write-baseline", metavar="BASELINE",
        help="record this run's manifest into the baseline JSON",
    )
    p.add_argument(
        "--check-bench", metavar="BENCH_JSON",
        help="instead of running: tolerance-gate two labelled entries of "
             "a BENCH_core.json (see --base/--new)",
    )
    p.add_argument("--base", default=None,
                   help="baseline entry label for --check-bench")
    p.add_argument("--new", dest="new_label", default=None,
                   help="candidate entry label for --check-bench")
    p.add_argument(
        "--tolerance", type=float, default=None,
        help="relative drift tolerance for the gates (default: the "
             "baseline file's, else 0.10)",
    )
    p.add_argument(
        "--allow-cross-solver", action="store_true",
        help="let --check-bench compare entries recorded under different "
             "solver configurations (refused by default so solver-switch "
             "drift is never misattributed to the code under test)",
    )
    _add_machine_args(p)

    p = sub.add_parser(
        "trace",
        help="write a Chrome Trace Format JSON of one collective run",
    )
    p.add_argument(
        "--family", default="bcast", choices=sorted(_MEASURE_COMMANDS),
        help="collective family (default bcast)",
    )
    p.add_argument(
        "--algorithm", default="auto",
        help="algorithm name or 'auto' (message-size policy)",
    )
    p.add_argument(
        "--size", default="1M",
        help="the family's size argument (bytes / elements / block)",
    )
    p.add_argument("--root", type=int, default=0)
    p.add_argument(
        "--out", default="trace.json",
        help="output path (default trace.json)",
    )
    p.add_argument(
        "--no-telemetry", action="store_true",
        help="flow rows only: skip the role timelines and counter tracks",
    )
    p.add_argument(
        "--runtime", default=None, metavar="HOST:PORT",
        help="instead of simulating: export a running prediction "
             "server's runtime spans (serve/parallel/farm) as a Chrome "
             "trace — see docs/observability.md",
    )
    _add_machine_args(p)

    p = sub.add_parser(
        "sweep", help="run a JSON-configured parameter sweep"
    )
    p.add_argument("config", help="path to the sweep JSON config")
    p.add_argument("--out", default=None, help="write results JSON here")
    p.add_argument(
        "--metric", default="bandwidth", choices=["bandwidth", "elapsed"]
    )
    _add_jobs_arg(p)
    _add_farm_arg(p)

    p = sub.add_parser(
        "farm",
        help="distributed sweep farm: leased work-server + pull-workers",
    )
    farm_sub = p.add_subparsers(dest="farm_command", required=True)

    fp = farm_sub.add_parser(
        "serve", help="host the work-server with its progress journal"
    )
    fp.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; to accept workers "
             "from other hosts use 0.0.0.0, which additionally requires "
             "an explicit REPRO_FARM_AUTHKEY — the authkey is the farm's "
             "only trust boundary, see docs/robustness.md)",
    )
    fp.add_argument(
        "--port", type=int, default=8765,
        help="port to bind (default 8765; 0 = ephemeral, printed on start)",
    )
    fp.add_argument(
        "--journal", default="farm_journal.jsonl",
        help="append-only progress journal path "
             "(default farm_journal.jsonl)",
    )
    fp.add_argument(
        "--resume", action="store_true",
        help="reload an interrupted campaign from the journal: journaled "
             "points are never re-run (required when the journal is "
             "non-empty)",
    )
    fp.add_argument(
        "--lease-s", type=float, default=None, metavar="SECONDS",
        help="lease deadline: a chunk not heartbeated for this long is "
             "re-queued (default 30)",
    )
    fp.add_argument(
        "--chunk", type=int, default=None, metavar="POINTS",
        help="points per leased chunk (default: campaign size / 16, "
             "min 1)",
    )
    fp.add_argument(
        "--quiet", action="store_true",
        help="suppress per-lease progress lines on stderr",
    )

    fp = farm_sub.add_parser(
        "work", help="run a pull-worker against a work-server"
    )
    fp.add_argument("server", metavar="HOST:PORT",
                    help="work-server address")
    fp.add_argument(
        "--id", dest="worker_id", default=None,
        help="worker id shown in leases (default: host-pid-random)",
    )
    fp.add_argument(
        "--stay", action="store_true",
        help="keep polling after the campaign completes (a pool worker "
             "awaiting the next campaign) instead of exiting",
    )
    fp.add_argument(
        "--quiet", action="store_true",
        help="suppress per-chunk progress lines on stderr",
    )

    fp = farm_sub.add_parser(
        "status", help="print campaign progress and robustness rollups"
    )
    fp.add_argument("server", metavar="HOST:PORT",
                    help="work-server address")
    fp.add_argument(
        "--bench", default=None, metavar="BENCH_JSON",
        help="also record the farm's robustness rollups as a labelled "
             "entry in this BENCH_robustness.json (see --label)",
    )
    fp.add_argument(
        "--label", default="farm-smoke",
        help="entry label for --bench (default farm-smoke)",
    )
    fp.add_argument(
        "--json", action="store_true",
        help="print the raw status payload as JSON instead of the summary",
    )
    fp.add_argument(
        "--metrics", action="store_true",
        help="also print the server's metrics registry in Prometheus "
             "text exposition format",
    )

    p = sub.add_parser(
        "serve",
        help="prediction service: long-running tiered query server",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; the server is "
             "unauthenticated — same loopback-only posture as the farm)",
    )
    p.add_argument(
        "--port", type=int, default=8766,
        help="port to bind (default 8766; 0 = ephemeral, printed on start)",
    )
    p.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persist memoized answers here (JSONL keyed by git rev + "
             "spec hash) so restarts serve warm; stale caches are "
             "refused, never silently served",
    )
    p.add_argument(
        "--memo", type=int, default=1024,
        help="in-memory memoization entries (default 1024)",
    )
    p.add_argument(
        "--pool", type=int, default=8,
        help="warm machines kept per server (default 8; LRU-evicted)",
    )
    p.add_argument(
        "--analytic", action="store_true",
        help="opt every query into the closed-form fast path by default "
             "(answers then match the DES within probe tolerance, not "
             "bit-identically)",
    )
    p.add_argument(
        "--stats", default=None, metavar="HOST:PORT",
        help="instead of serving: print a running server's stats (tier "
             "hit rates, pool occupancy, coalesced count, latency "
             "percentiles)",
    )
    p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also expose the metrics registry over HTTP in Prometheus "
             "text format on this port (GET / or /metrics)",
    )
    _add_jobs_arg(p)
    _add_farm_arg(p)

    p = sub.add_parser(
        "query",
        help="query a running prediction server (see 'repro serve')",
    )
    p.add_argument("server", metavar="HOST:PORT",
                   help="prediction-server address")
    p.add_argument(
        "--op", default="predict",
        choices=["predict", "select", "sweep", "stats", "metrics",
                 "trace", "ping", "shutdown"],
        help="request type (default predict)",
    )
    p.add_argument(
        "--family", default="bcast", choices=sorted(_MEASURE_COMMANDS),
        help="collective family (default bcast)",
    )
    p.add_argument(
        "--algorithm", default="auto",
        help="algorithm name or 'auto' (message-size policy)",
    )
    p.add_argument(
        "--size", default="1M",
        help="the family's size argument (bytes / elements / block)",
    )
    p.add_argument(
        "--dims", type=_parse_dims, default=(2, 2, 2),
        help="machine geometry, e.g. 4x4x4 (default 2x2x2)",
    )
    p.add_argument(
        "--mode", type=_parse_mode, default=Mode.QUAD,
        help="operating mode: smp, dual or quad (default quad)",
    )
    _add_network_arg(p)
    p.add_argument("--iters", type=int, default=1,
                   help="Fig-5 measurement iterations (default 1)")
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--root", type=int, default=0)
    p.add_argument(
        "--analytic", action="store_true",
        help="opt this query into the closed-form fast path",
    )
    p.add_argument(
        "--candidates", default=None,
        help="select: comma-separated algorithms to measure (default: "
             "every registered candidate for the family/mode/network)",
    )
    p.add_argument(
        "--no-measure", action="store_true",
        help="select: return the selection table's choice without "
             "measuring candidates",
    )
    p.add_argument(
        "--points", default=None, metavar="FILE",
        help="sweep: JSON file holding a list of point queries",
    )
    _add_jobs_arg(p)
    p.add_argument(
        "--json", dest="raw_json", default=None, metavar="REQUEST",
        help="send this raw JSON request object instead of building one "
             "from the flags",
    )
    p.add_argument(
        "--pretty", action="store_true",
        help="indent the response JSON",
    )
    p.add_argument(
        "--timeout", type=float, default=300.0,
        help="socket timeout in seconds (default 300)",
    )

    sub.add_parser("params", help="dump the calibrated model constants")
    return parser


def _machine(args) -> Machine:
    return Machine(
        torus_dims=args.dims, mode=args.mode,
        wrap=not getattr(args, "mesh", False),
        network=getattr(args, "network", "torus"),
    )


def _finish(args, machine: Machine, result) -> None:
    print(result)
    if args.verify:
        print("payload verified bit-exact at every rank")
    if args.profile:
        print(format_report(utilization_report(machine)))


_MODE_NAMES = {1: "smp", 2: "dual", 4: "quad"}


def _cmd_list(args) -> int:
    wires = None
    if getattr(args, "network", None):
        from repro.hardware.network import backend_class

        wires = backend_class(args.network).wires
    for family in families():
        print(f"{family}:")
        for info in iter_algorithms(family):
            if wires is not None and info.network not in wires:
                continue
            modes = ",".join(_MODE_NAMES.get(p, str(p)) for p in info.modes)
            tags = []
            if info.shared_address:
                tags.append("shared-address")
            if not info.data_carrying:
                tags.append("timing-only")
            extra = ("  " + " ".join(tags)) if tags else ""
            print(
                f"  {info.name:24s} net={info.network:5s} "
                f"modes={modes}{extra}"
            )
    return 0


#: measurement subcommand -> (family, size-argument attribute)
_MEASURE_COMMANDS = {
    "bcast": ("bcast", "size"),
    "allreduce": ("allreduce", "count"),
    "allgather": ("allgather", "block"),
    "gather": ("gather", "block"),
    "scatter": ("scatter", "block"),
    "reduce": ("reduce", "count"),
    "alltoall": ("alltoall", "block"),
}


def _cmd_measure(args) -> int:
    family, size_attr = _MEASURE_COMMANDS[args.command]
    x = parse_size(getattr(args, size_attr))  # counts share K/M suffixes
    machine = _machine(args)
    result = run_collective(
        machine, family, args.algorithm, x,
        root=getattr(args, "root", 0), iters=args.iters, verify=args.verify,
        analytic=True if getattr(args, "analytic", False) else None,
    )
    _finish(args, machine, result)
    if getattr(args, "analytic", False):
        served = result.manifest is not None and result.manifest.analytic
        print("analytic fast path: "
              + ("served this point" if served else "no law covers this "
                 "point; full simulation ran"))
    return 0


def _cmd_barrier(args) -> int:
    machine = _machine(args)
    result = run_collective(
        machine, "barrier", args.algorithm, iters=args.iters
    )
    print(f"{result.algorithm}: {result.elapsed_us:.2f} us on "
          f"{result.nprocs} procs")
    if args.profile:
        print(format_report(utilization_report(machine)))
    return 0


def _cmd_pingpong(args) -> int:
    from repro.mpi.p2p import run_pingpong

    machine = _machine(args)
    result = run_pingpong(
        machine,
        parse_size(args.size),
        rank_a=args.rank_a,
        rank_b=args.rank_b,
        protocol=args.protocol,
        iters=max(1, args.iters),
    )
    print(result)
    if args.profile:
        print(format_report(utilization_report(machine)))
    return 0


def _cmd_predict(args) -> int:
    params = BGPParams()
    nbytes = parse_size(args.size)
    if args.algorithm.startswith("torus"):
        prediction = predict_torus_bcast(
            params, args.algorithm, args.dims, nbytes, ppn=args.ppn
        )
    elif args.algorithm.startswith("tree"):
        prediction = predict_tree_bcast(
            params, args.algorithm, nbytes, ppn=args.ppn
        )
    else:
        print(f"no analytic model for {args.algorithm!r}", file=sys.stderr)
        return 2
    print(f"steady-state bounds for {args.algorithm} at {args.size}:")
    print(prediction)
    print(f"prediction: {prediction.value:.1f} MB/s "
          f"({prediction.bottleneck.name})")
    return 0


def _cmd_figure(args) -> int:
    from repro.bench import experiments

    runner = {
        "fig6": experiments.fig6_tree_latency,
        "fig7": experiments.fig7_tree_bandwidth,
        "fig8": experiments.fig8_syscall_caching,
        "fig9": experiments.fig9_scaling,
        "fig10": experiments.fig10_torus_bandwidth,
        "table1": experiments.table1_allreduce,
    }[args.name]
    result = runner(jobs=args.jobs)
    print(result.table())
    for key, value in result.metrics.items():
        print(f"{key}: {value:.3f}")
    if args.plot:
        from repro.bench.plot import render_chart

        y_label = "latency (us)" if args.name == "fig6" else "MB/s"
        print()
        print(
            render_chart(
                result.x_values,
                result.series,
                y_label=y_label,
                x_format=result.x_format,
            )
        )
    return 0


def _cmd_chaos(args) -> int:
    from repro.bench.chaos import chaos_campaign

    report = chaos_campaign(
        seed=args.seed, runs=args.runs, dims=args.dims,
        smoke=args.smoke, out_path=args.out, jobs=args.jobs,
        network=args.network, farm=args.farm,
    )
    summary = report["summary"]
    print(
        f"chaos campaign (seed {args.seed}): {summary['total_runs']} runs, "
        f"{summary['fallback_events']} fallback(s), "
        f"{summary['full_ladder_walks']} full ladder walk(s), "
        f"{summary['payload_mismatches']} payload mismatch(es)"
    )
    return 0 if summary["payload_mismatches"] == 0 else 1


def _cmd_report(args) -> int:
    import json

    from repro.telemetry import (
        compare_bench,
        compare_with_baseline_file,
        save_baseline,
    )
    from repro.telemetry import format_report as format_telemetry_report

    if args.check_bench:
        if not args.base or not args.new_label:
            print("--check-bench requires --base and --new entry labels",
                  file=sys.stderr)
            return 2
        with open(args.check_bench) as handle:
            bench = json.load(handle)
        tolerance = args.tolerance if args.tolerance is not None else 0.10
        drifts = compare_bench(
            bench, args.base, args.new_label, tolerance=tolerance,
            allow_cross_solver=args.allow_cross_solver,
        )
        if drifts:
            print(f"BENCH gate FAILED ({len(drifts)} drift(s)):")
            for line in drifts:
                print(f"  {line}")
            return 1
        print(
            f"BENCH gate OK: {args.base!r} vs {args.new_label!r} within "
            f"±{tolerance:.0%}"
        )
        return 0

    machine = _machine(args)
    recorder = machine.attach_telemetry()
    result = run_collective(
        machine, args.family, args.algorithm, parse_size(args.size),
        root=args.root, iters=args.iters, verify=args.verify,
        seed=args.seed,
    )
    manifest = result.manifest.stamped()
    print(format_telemetry_report(manifest, recorder))
    if args.profile:
        print()
        print(format_report(utilization_report(machine)))
    status = 0
    if args.write_baseline:
        save_baseline(args.write_baseline, [manifest])
        print(f"\nbaseline {manifest.spec_key!r} written to "
              f"{args.write_baseline}")
    if args.compare:
        drifts = compare_with_baseline_file(
            manifest, args.compare, tolerance=args.tolerance
        )
        print()
        if drifts:
            print(f"manifest gate FAILED ({len(drifts)} drift(s)):")
            for line in drifts:
                print(f"  {line}")
            status = 1
        else:
            print(f"manifest gate OK vs {args.compare}")
    return status


def _cmd_trace(args) -> int:
    from repro.sim.engine import Engine
    from repro.sim.tracing import write_chrome_trace

    if args.runtime:
        from repro.serve.client import query_server
        from repro.telemetry.runtime import write_runtime_trace

        response = query_server(args.runtime, {"op": "trace"})
        spans = response.get("spans", [])
        nevents = write_runtime_trace(spans, args.out)
        print(f"{nevents} runtime span(s) written to {args.out}")
        return 0

    engine = Engine(trace=True)
    machine = Machine(
        torus_dims=args.dims, mode=args.mode, engine=engine,
        wrap=not args.mesh, network=args.network,
    )
    recorder = None if args.no_telemetry else machine.attach_telemetry()
    result = run_collective(
        machine, args.family, args.algorithm, parse_size(args.size),
        root=args.root, iters=args.iters, verify=args.verify,
    )
    nevents = write_chrome_trace(
        engine, args.out, telemetry=recorder,
        l3_bytes=machine.params.l3_bytes,
    )
    print(result)
    print(f"{nevents} duration events written to {args.out}")
    if args.profile:
        print(format_report(utilization_report(machine)))
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench.sweep import run_sweep_file

    result = run_sweep_file(args.config, jobs=args.jobs, farm=args.farm)
    metric = "bandwidth" if args.metric == "bandwidth" else "elapsed_us"
    print(f"== {result.name} ({result.kind}) ==")
    print(result.table(metric))
    if args.out:
        result.save(args.out)
        print(f"results written to {args.out}")
    return 0


def _cmd_traffic(args) -> int:
    from repro.bench.traffic import format_traffic_report, run_traffic

    report = run_traffic(
        seed=args.seed, njobs=args.njobs, dims=args.dims,
        mode=args.mode, network=args.network, jobs=args.jobs,
    )
    print(format_traffic_report(report))
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"traffic report written to {args.out}")
    if args.bench:
        from repro.bench.traffic import record_bench_entry

        record_bench_entry(args.bench, args.label, report)
        print(f"BENCH entry {args.label!r} written to {args.bench}")
    return 0


def _cmd_farm(args) -> int:
    from repro.bench import farm as farm_mod

    try:
        return _cmd_farm_inner(args, farm_mod)
    except farm_mod.FarmError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_farm_inner(args, farm_mod) -> int:
    if args.farm_command == "serve":
        from repro.telemetry.runtime import install_excepthook

        install_excepthook()
        server = farm_mod.FarmServer(
            host=args.host, port=args.port,
            journal_path=args.journal,
            lease_s=(args.lease_s if args.lease_s is not None
                     else farm_mod.DEFAULT_LEASE_S),
            chunk_size=args.chunk,
            resume=args.resume,
            verbose=not args.quiet,
        )
        server.start()
        print(f"farm server on {server.address} "
              f"(journal {args.journal})", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return 0
    if args.farm_command == "work":
        worker = farm_mod.FarmWorker(
            args.server, worker_id=args.worker_id,
            exit_when_done=not args.stay, verbose=not args.quiet,
        )
        try:
            chunks = worker.run()
        except KeyboardInterrupt:
            return 0
        print(f"{worker.worker_id}: {chunks} chunk(s), "
              f"{worker.points_computed} point(s) computed")
        return 0
    # status
    status = farm_mod.rpc_retry(args.server, "status")
    if args.json:
        import json

        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(farm_mod.format_status(status))
    if args.metrics:
        metrics = farm_mod.rpc_retry(args.server, "metrics")
        print(metrics["exposition"], end="")
    if args.bench:
        farm_mod.record_farm_bench_entry(args.bench, args.label, status)
        print(f"BENCH entry {args.label!r} written to {args.bench}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import json

    from repro.serve.server import PredictionServer
    from repro.serve.service import PredictionService

    if args.stats:
        from repro.serve.client import query_server

        response = query_server(args.stats, {"op": "stats"})
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0

    from repro.telemetry.runtime import install_excepthook, serve_metrics_http

    install_excepthook()
    service = PredictionService(
        max_memo=args.memo,
        max_machines=args.pool,
        cache_path=args.cache,
        analytic_default=args.analytic,
    )
    server = PredictionServer(
        service, host=args.host, port=args.port,
        jobs=args.jobs, farm=args.farm,
    )
    metrics_addr = None
    if args.metrics_port is not None:
        metrics_server = serve_metrics_http(
            args.host, args.metrics_port, service.metrics_text
        )
        metrics_addr = "{}:{}".format(*metrics_server.server_address[:2])

    class _Announce:
        # run() calls .set() once the socket is accepting — the moment
        # to print the (possibly ephemeral) bound address.
        def set(self):
            host, port = server.address
            extras = []
            if args.cache:
                extras.append(f"cache {args.cache}")
            if args.analytic:
                extras.append("analytic default on")
            if metrics_addr:
                extras.append(f"metrics http://{metrics_addr}/metrics")
            suffix = f" ({', '.join(extras)})" if extras else ""
            print(f"prediction server on {host}:{port}{suffix}", flush=True)

    try:
        asyncio.run(server.run(_Announce()))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.serve.client import ServeRequestError, query_server

    if args.raw_json:
        payload = json.loads(args.raw_json)
    elif args.op in ("stats", "metrics", "trace", "ping", "shutdown"):
        payload = {"op": args.op}
    elif args.op == "sweep":
        if not args.points:
            print("sweep requires --points FILE (a JSON list of point "
                  "queries) or --json", file=sys.stderr)
            return 2
        with open(args.points) as handle:
            payload = {"op": "sweep", "points": json.load(handle)}
        if args.jobs is not None:
            payload["jobs"] = args.jobs
    else:
        payload = {
            "op": args.op,
            "family": args.family,
            "x": parse_size(args.size),
            "dims": list(args.dims),
            "mode": args.mode.name,
            "network": args.network,
            "iters": args.iters,
            "seed": args.seed,
            "root": args.root,
        }
        if args.analytic:
            payload["analytic"] = True
        if args.op == "predict":
            payload["algorithm"] = args.algorithm
        else:  # select
            if args.candidates:
                payload["candidates"] = [
                    name.strip() for name in args.candidates.split(",")
                    if name.strip()
                ]
            if args.no_measure:
                payload["measure"] = False
    try:
        response = query_server(args.server, payload, timeout=args.timeout)
    except ServeRequestError as exc:
        print(f"refused: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach prediction server at {args.server}: "
              f"{exc}", file=sys.stderr)
        return 2
    print(json.dumps(response, indent=2 if args.pretty else None,
                     sort_keys=True))
    return 0


def _cmd_params(_args) -> int:
    params = BGPParams()
    for field in dataclasses.fields(params):
        print(f"{field.name:28s} {getattr(params, field.name)}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    **{name: _cmd_measure for name in _MEASURE_COMMANDS},
    "barrier": _cmd_barrier,
    "pingpong": _cmd_pingpong,
    "predict": _cmd_predict,
    "figure": _cmd_figure,
    "chaos": _cmd_chaos,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "sweep": _cmd_sweep,
    "traffic": _cmd_traffic,
    "farm": _cmd_farm,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "params": _cmd_params,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyError, ValueError, UnsupportedTopologyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
