"""Equivalence and bookkeeping tests for the simulator fast paths.

Covers the tentpole invariants of the perf work:

* the incremental (component-cache) solver is bit-identical to the
  from-scratch reference solver on randomized flow/resource graphs with
  staggered arrivals, departures, and capacity changes;
* the engine is deterministic (identical runs produce identical traces)
  and its process table stays flat under continuous spawning;
* the O(1) load/weight accumulators agree with recomputation, and the
  debug mode actually detects corruption;
* clock rebasing preserves pending-event order and makes repeated
  workloads bit-identical.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FlowNetwork, SimulationError


# ---------------------------------------------------------------------------
# incremental vs reference solver on randomized graphs
# ---------------------------------------------------------------------------

@st.composite
def flow_schedules(draw):
    """A random resource set plus a staggered schedule of transfers.

    Weights, capacities, sizes, and start offsets are drawn from small
    integer pools so progressive filling stays in exact float arithmetic
    territory — the regime the simulator itself operates in.
    """
    n_resources = draw(st.integers(min_value=1, max_value=6))
    capacities = [
        float(draw(st.integers(min_value=1, max_value=64)))
        for _ in range(n_resources)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for _ in range(n_flows):
        subset = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_resources - 1),
                min_size=1,
                max_size=min(3, n_resources),
                unique=True,
            )
        )
        usage = {
            index: float(draw(st.integers(min_value=1, max_value=3)))
            for index in subset
        }
        nbytes = float(draw(st.integers(min_value=1, max_value=4096)))
        cap = draw(
            st.one_of(
                st.none(), st.integers(min_value=1, max_value=32).map(float)
            )
        )
        start = float(draw(st.integers(min_value=0, max_value=50)))
        flows.append((start, nbytes, cap, usage))
    # Optional mid-run capacity change (exercises set_capacity re-solves).
    change = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=1, max_value=40),  # when
                st.integers(min_value=0, max_value=n_resources - 1),
                st.integers(min_value=1, max_value=64),  # new capacity
            ),
        )
    )
    return capacities, flows, change


def _simulate(capacities, flows, change, incremental):
    engine = Engine()
    net = FlowNetwork(engine, incremental=incremental, debug=True)
    resources = [
        net.add_resource(f"r{i}", capacity)
        for i, capacity in enumerate(capacities)
    ]
    completions = {}

    def proc(index, start, nbytes, cap, usage):
        if start > 0:
            yield engine.timeout(start)
        yield net.transfer(
            {resources[r]: w for r, w in usage.items()},
            nbytes,
            cap=cap,
            name=f"f{index}",
        )
        completions[index] = engine.now

    for index, (start, nbytes, cap, usage) in enumerate(flows):
        engine.spawn(proc(index, start, nbytes, cap, usage))
    if change is not None:
        when, r_index, new_capacity = change

        def reconfigure():
            yield engine.timeout(float(when))
            resources[r_index].set_capacity(float(new_capacity))

        engine.spawn(reconfigure())
    engine.run()
    return completions


@settings(max_examples=60, deadline=None)
@given(flow_schedules())
def test_incremental_solver_matches_reference(schedule):
    capacities, flows, change = schedule
    fast = _simulate(capacities, flows, change, incremental=True)
    slow = _simulate(capacities, flows, change, incremental=False)
    assert fast == slow  # exact float equality, per-flow completion times


def test_incremental_solver_handles_component_splits():
    """A finishing multi-resource flow can split its component; the cache
    must re-carve and keep matching the reference solver."""
    # bridge uses r0+r1; left lives on r0, right on r1.  When the bridge
    # finishes the component splits in two.
    capacities = [8.0, 8.0]
    flows = [
        (0.0, 64.0, None, {0: 1.0, 1: 1.0}),   # the bridge
        (1.0, 512.0, None, {0: 1.0}),
        (1.0, 1024.0, None, {1: 1.0}),
        (30.0, 256.0, None, {0: 2.0}),          # arrives after the split
    ]
    fast = _simulate(capacities, flows, None, incremental=True)
    slow = _simulate(capacities, flows, None, incremental=False)
    assert fast == slow


# ---------------------------------------------------------------------------
# engine determinism and bookkeeping
# ---------------------------------------------------------------------------

def _traced_run():
    from repro.bench.harness import run_bcast
    from repro.hardware.machine import Machine, Mode

    machine = Machine(
        torus_dims=(2, 2, 2), mode=Mode.QUAD, engine=Engine(trace=True)
    )
    run_bcast(machine, "torus-shaddr", 16384, iters=2)
    return machine.engine.trace_log


def test_engine_determinism_identical_trace_logs():
    assert _traced_run() == _traced_run()


def test_engine_prunes_finished_processes():
    engine = Engine()

    def one_shot():
        yield engine.timeout(1.0)

    def spawner():
        for _ in range(5000):
            yield engine.spawn(one_shot())

    engine.spawn(spawner())
    engine.run()
    # 5001 processes went through; the table must have stayed amortized.
    assert len(engine._processes) < 600
    assert engine.active_processes() == []


def test_trace_disabled_is_default_and_cheap():
    engine = Engine()
    engine.trace("dropped")
    assert engine.trace_log == []
    engine.trace_enabled = True
    engine.trace("kept")
    assert engine.trace_log == [(0.0, "kept")]


# ---------------------------------------------------------------------------
# accumulators and debug mode
# ---------------------------------------------------------------------------

def test_load_accumulator_matches_recompute():
    engine = Engine()
    net = FlowNetwork(engine)
    port = net.add_resource("mem", 16.0)
    net.transfer({port: 2.0}, 1024.0, name="a")
    net.transfer({port: 1.0}, 2048.0, name="b")
    fresh = sum(f.rate * f.usage[port] for f in port.flows)
    assert port.load == fresh
    engine.run()
    assert port.load == 0.0
    assert port._wsum == 0.0


def test_debug_mode_detects_corrupted_accumulator():
    engine = Engine()
    net = FlowNetwork(engine, debug=True)
    port = net.add_resource("mem", 16.0)
    net.transfer({port: 1.0}, 1024.0, name="a")
    port._load += 1.0  # simulate accumulator drift
    with pytest.raises(SimulationError, match="drifted"):
        port.load


def test_debug_mode_detects_corrupted_weight_sum():
    engine = Engine()
    net = FlowNetwork(engine, debug=True)
    port = net.add_resource("mem", 16.0)
    net.transfer({port: 1.0}, 1024.0, name="a")
    port._wsum += 1.0
    with pytest.raises(SimulationError, match="drifted"):
        net.transfer({port: 1.0}, 1024.0, name="b")


# ---------------------------------------------------------------------------
# clock rebasing
# ---------------------------------------------------------------------------

def test_rebase_shifts_pending_events_and_preserves_order():
    engine = Engine()
    fired = []
    engine.call_at(100.0, fired.append, "a")
    engine.call_at(100.0, fired.append, "b")
    engine.call_at(250.0, fired.append, "c")
    engine.now = 100.0
    engine.rebase()
    assert engine.now == 0.0
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 150.0


def test_rebase_makes_repeated_workloads_bit_identical():
    """The same transfer started at t=0 and after a rebased epoch must
    take exactly the same simulated time."""
    engine = Engine()
    net = FlowNetwork(engine)
    port = net.add_resource("mem", 7.0)
    durations = []

    def epoch():
        start = engine.now
        # An irrational-ish rate split: 3 flows share capacity 7.
        flows = [
            net.transfer({port: 1.0}, 1000.0, name=f"e{i}") for i in range(3)
        ]
        for flow in flows:
            yield flow
        durations.append(engine.now - start)

    def driver():
        yield from epoch()
        yield engine.timeout(0.123456789)
        engine.rebase()
        yield from epoch()

    engine.spawn(driver())
    engine.run()
    assert durations[0] == durations[1]
