"""Failure-injection tests: degraded hardware must slow, never corrupt."""

import pytest

from repro.bench import run_bcast
from repro.hardware import Machine, Mode
from repro.hardware.faults import (
    JitterInjector,
    degrade_node_dma,
    degrade_node_memory,
    degrade_torus_channels,
    degrade_tree_port,
    jittered_proc,
)


class TestDegradedDma:
    def test_correct_and_slower(self):
        healthy = run_bcast(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
            "torus-direct-put", 256 * 1024,
        )
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        degrade_node_dma(m, node=2, factor=0.25)
        degraded = run_bcast(m, "torus-direct-put", 256 * 1024, verify=True)
        assert degraded.elapsed_us > healthy.elapsed_us

    def test_shaddr_less_sensitive_to_dma_loss(self):
        """The shared-address scheme barely uses the DMA intra-node, so a
        degraded engine hurts it less than the baseline."""
        def slowdown(algorithm):
            healthy = run_bcast(
                Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
                algorithm, 512 * 1024,
            ).elapsed_us
            m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
            for node in range(m.nnodes):
                degrade_node_dma(m, node, factor=0.5)
            degraded = run_bcast(m, algorithm, 512 * 1024).elapsed_us
            return degraded / healthy

        assert slowdown("torus-shaddr") < slowdown("torus-direct-put")


class TestStragglerBackpressure:
    def test_one_slow_drain_port_slows_the_whole_tree(self):
        healthy = run_bcast(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
            "tree-shaddr", 512 * 1024,
        )
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        degrade_tree_port(m, node=3, factor=0.3, direction="down")
        degraded = run_bcast(m, "tree-shaddr", 512 * 1024, verify=True)
        # Not just node 3: the window backpressures everyone.
        assert degraded.elapsed_us > 1.5 * healthy.elapsed_us

    def test_degraded_up_port_slows_injection(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        degrade_tree_port(m, node=1, factor=0.3, direction="up")
        degraded = run_bcast(m, "tree-shaddr", 512 * 1024, verify=True)
        healthy = run_bcast(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
            "tree-shaddr", 512 * 1024,
        )
        assert degraded.elapsed_us > healthy.elapsed_us


class TestDegradedLinks:
    def test_degrading_channels_after_first_run_slows_second(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        first = run_bcast(m, "torus-shaddr", 512 * 1024)
        degrade_torus_channels(m, node=0, factor=0.4)
        second = run_bcast(m, "torus-shaddr", 512 * 1024, verify=True)
        assert second.elapsed_us > first.elapsed_us


class TestJitter:
    def test_jittered_run_is_correct_and_reproducible(self):
        from repro.collectives.bcast import TorusShaddrBcast
        import numpy as np

        def run_with_jitter(seed):
            m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
            m.set_working_set(40_000 * m.ppn)
            rng = np.random.default_rng(1)
            payload = rng.integers(0, 256, size=40_000, dtype=np.uint8)
            inv = TorusShaddrBcast(m, 0, 40_000, payload=payload)
            jitter = JitterInjector(m, mean_us=5.0, seed=seed)
            barrier = m.make_barrier()

            def rank_loop(rank):
                yield barrier.wait()
                yield from jittered_proc(inv, rank, jitter)

            procs = [
                m.spawn(rank_loop(r), name=f"r{r}")
                for r in range(m.nprocs)
            ]
            m.engine.run_until_processes_finish(procs)
            inv.verify()
            return m.engine.now

        t1 = run_with_jitter(seed=7)
        t2 = run_with_jitter(seed=7)
        t3 = run_with_jitter(seed=8)
        assert t1 == t2  # seeded -> reproducible
        assert t3 != t1  # different noise, different schedule

    def test_zero_mean_jitter_is_noop_delay(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        jitter = JitterInjector(m, mean_us=0.0)

        def p():
            yield from jitter.delay()

        proc = m.spawn(p())
        m.engine.run_until_processes_finish([proc])
        assert m.engine.now == 0.0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            JitterInjector(Machine(torus_dims=(1, 1, 1)), mean_us=-1.0)


class TestValidation:
    def test_bad_factor_rejected(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                degrade_node_dma(m, 0, bad)
            with pytest.raises(ValueError):
                degrade_node_memory(m, 0, bad)
